#!/usr/bin/env python3
"""Regenerate every paper exhibit and archive the rendered tables.

Standalone equivalent of ``pytest benchmarks/ --benchmark-only`` for
the exhibit text only: runs each generator in
:mod:`repro.bench.experiments`, writes ``benchmarks/results/<name>.txt``
and prints a one-line summary per exhibit.

Usage: python scripts/regenerate_results.py [--max-edges N]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.experiments import ALL_EXHIBITS  # noqa: E402

RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")

#: Archive names matching the benchmark suites' record_exhibit calls.
ARCHIVE_NAMES = {
    "fig1": "fig01_characteristics",
    "table1": "table01_survey",
    "table5": "table05_cell",
    "table6": "table06_block",
    "table7": "table07_unit_scaling",
    "table8": "table08_unit_perf",
    "table9": "table09_triangle_counting",
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-edges", type=int, default=120_000,
                        help="stand-in graph cap for table9")
    parser.add_argument("--only", default=None,
                        help="comma-separated exhibit names")
    args = parser.parse_args()

    names = sorted(ALL_EXHIBITS)
    if args.only:
        names = [name for name in args.only.split(",") if name in ALL_EXHIBITS]
        if not names:
            parser.error(f"no valid exhibits in {args.only!r}")

    os.makedirs(RESULTS_DIR, exist_ok=True)
    for name in names:
        builder = ALL_EXHIBITS[name]
        started = time.time()
        if name == "table9":
            table = builder(max_edges=args.max_edges)
        else:
            table = builder()
        elapsed = time.time() - started
        path = os.path.join(RESULTS_DIR, f"{ARCHIVE_NAMES[name]}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(table.render() + "\n")
        print(f"{name:8s} -> {os.path.relpath(path, REPO_ROOT)} "
              f"({len(table.rows)} rows, {elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
