"""Anchored empirical curves for tool-dependent quantities.

LUT counts and achievable clock frequency are outputs of Vivado
synthesis/place/route, which this reproduction cannot run. Instead we
model each such quantity as a :class:`CalibratedCurve`: a piecewise
curve anchored at the paper's published implementation results,
interpolated (linearly in log2 of the independent variable, the natural
scale for fanout/tree-depth effects) between anchors and extrapolated
with the boundary slope beyond them. Every curve carries a provenance
string naming the paper table its anchors come from; the benches print
it so a reader can tell measured-from-model numbers apart from
simulated-cycle numbers.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigError


class CalibratedCurve:
    """Piecewise-linear curve through (x, y) anchor points.

    Parameters
    ----------
    anchors:
        Mapping of independent variable to observed value. At least one
        anchor is required; a single anchor yields a constant curve.
    provenance:
        Human-readable origin of the anchors (e.g. ``"Table VII"``).
    transform:
        Monotone transform applied to x before interpolation;
        defaults to log2, appropriate for sizes that grow geometrically.
    clamp:
        Optional (lo, hi) bounds applied to the output.
    """

    def __init__(
        self,
        anchors: Dict[float, float],
        provenance: str,
        transform: Callable[[float], float] = math.log2,
        clamp: Optional[Tuple[Optional[float], Optional[float]]] = None,
    ) -> None:
        if not anchors:
            raise ConfigError("CalibratedCurve needs at least one anchor")
        points = sorted(anchors.items())
        self._xs = [transform(x) for x, _ in points]
        self._ys = [y for _, y in points]
        self._raw_xs = [x for x, _ in points]
        self.provenance = provenance
        self._transform = transform
        self._clamp = clamp
        for left, right in zip(self._xs, self._xs[1:]):
            if right <= left:
                raise ConfigError(
                    "CalibratedCurve anchors must be strictly increasing "
                    "after the transform"
                )

    # ------------------------------------------------------------------
    @property
    def domain(self) -> Tuple[float, float]:
        """The (min, max) anchor positions in raw x."""
        return self._raw_xs[0], self._raw_xs[-1]

    def is_anchor(self, x: float) -> bool:
        """True when x is exactly one of the calibration anchors."""
        return x in self._raw_xs

    def __call__(self, x: float) -> float:
        if x <= 0:
            raise ConfigError(f"curve input must be positive, got {x}")
        t = self._transform(x)
        value = self._evaluate(t)
        if self._clamp is not None:
            lo, hi = self._clamp
            if lo is not None:
                value = max(lo, value)
            if hi is not None:
                value = min(hi, value)
        return value

    # ------------------------------------------------------------------
    def _evaluate(self, t: float) -> float:
        xs, ys = self._xs, self._ys
        if len(xs) == 1:
            return ys[0]
        if t <= xs[0]:
            return self._segment(t, 0)
        if t >= xs[-1]:
            return self._segment(t, len(xs) - 2)
        for index in range(len(xs) - 1):
            if xs[index] <= t <= xs[index + 1]:
                return self._segment(t, index)
        raise AssertionError("unreachable")  # pragma: no cover

    def _segment(self, t: float, index: int) -> float:
        x0, x1 = self._xs[index], self._xs[index + 1]
        y0, y1 = self._ys[index], self._ys[index + 1]
        slope = (y1 - y0) / (x1 - x0)
        return y0 + slope * (t - x0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo, hi = self.domain
        return (
            f"<CalibratedCurve {self.provenance!r} anchors "
            f"[{lo}..{hi}] n={len(self._ys)}>"
        )
