"""LUT/FF area model for the CAM block and unit control logic.

The DSP cells themselves cost exactly one DSP each (Table V); all LUT
cost comes from the surrounding control logic -- the block's DeMUX,
cell-address controller, search broadcast and result encoder, and the
unit's routing compute, routing table, post-router crossbar and
interfaces. Those are synthesised-LUT quantities, so per the DESIGN.md
substitution rule they are produced by a structural formula whose shape
comes from the architecture (linear in cells for match collection,
log-linear for encode trees, linear in blocks for the crossbar) and
whose absolute scale is calibrated against the paper's Vivado results
(Table VI for blocks, Table VII for units).
"""

from __future__ import annotations

from typing import Optional

from repro.dsp.primitives import clog2
from repro.errors import ConfigError
from repro.fabric.calibration import CalibratedCurve
from repro.fabric.resources import ResourceVector

#: Paper Table VI -- block LUTs at bus width 512, priority encoding.
BLOCK_LUT_ANCHORS = {32: 694, 64: 745, 128: 808, 256: 1225, 512: 1371}

#: Paper Table VII -- unit LUTs at block size 256, bus width 512, 48-bit.
UNIT_LUT_ANCHORS = {
    512: 2491,
    1024: 5072,
    2048: 10167,
    4096: 20330,
    6144: 29385,
    8192: 38191,
    9728: 45244,
}

#: Reference parameters the anchors were measured at.
REFERENCE_BUS_WIDTH = 512
REFERENCE_BLOCK_SIZE = 256

_block_curve = CalibratedCurve(
    {float(k): float(v) for k, v in BLOCK_LUT_ANCHORS.items()},
    provenance="Table VI (Vivado 2021.2, U250)",
)
_unit_curve = CalibratedCurve(
    {float(k): float(v) for k, v in UNIT_LUT_ANCHORS.items()},
    provenance="Table VII (Vivado 2021.2, U250)",
)


def _structural_block_lut(block_size: int, bus_width: int, buffered: bool) -> float:
    """Uncalibrated structural estimate of block control LUTs.

    Components: bus DeMUX and word steering (~ linear in bus width),
    per-cell match collection and write selects (~ linear in cells),
    priority-encode tree (~ cells * address bits / 6-input LUT packing)
    and the optional output buffer stage.
    """
    demux = 0.9 * bus_width
    per_cell = 1.1 * block_size
    encode = block_size * clog2(max(block_size, 2)) / 6.0
    buffer_cost = 220.0 if buffered else 0.0
    return demux + per_cell + encode + buffer_cost


def block_lut_cost(
    block_size: int,
    bus_width: int = REFERENCE_BUS_WIDTH,
    buffered: Optional[bool] = None,
) -> int:
    """Estimated LUTs of one CAM block's control logic.

    At the reference bus width the calibrated Table VI curve is used
    directly; other bus widths scale the curve by the ratio of
    structural estimates, preserving the calibrated absolute level.
    """
    if block_size < 1:
        raise ConfigError(f"block_size must be >= 1, got {block_size}")
    if bus_width < 1:
        raise ConfigError(f"bus_width must be >= 1, got {bus_width}")
    if buffered is None:
        buffered = block_size >= 256
    calibrated = _block_curve(block_size)
    if bus_width != REFERENCE_BUS_WIDTH:
        ref = _structural_block_lut(block_size, REFERENCE_BUS_WIDTH, buffered)
        actual = _structural_block_lut(block_size, bus_width, buffered)
        calibrated *= actual / ref
    return int(round(calibrated))


def block_ff_cost(block_size: int, bus_width: int = REFERENCE_BUS_WIDTH) -> int:
    """Estimated flip-flops of one block (pipeline + match registers).

    Not reported in the paper; purely structural: one input bus stage,
    one match bit per cell, and the encoded result register.
    """
    return bus_width + block_size + 2 * clog2(max(block_size, 2)) + 16


def block_resources(
    block_size: int,
    bus_width: int = REFERENCE_BUS_WIDTH,
    buffered: Optional[bool] = None,
) -> ResourceVector:
    """Full resource vector of one block: cells (DSP) + control (LUT/FF)."""
    return ResourceVector(
        lut=block_lut_cost(block_size, bus_width, buffered),
        ff=block_ff_cost(block_size, bus_width),
        dsp=block_size,
    )


def _structural_unit_lut(
    total_entries: int, block_size: int, bus_width: int
) -> float:
    """Uncalibrated structural estimate of a whole unit's LUTs."""
    num_blocks = max(1, total_entries // block_size)
    blocks = num_blocks * _structural_block_lut(
        block_size, bus_width, buffered=block_size >= 256
    )
    crossbar = 0.6 * bus_width * clog2(max(num_blocks, 2))
    routing = 48.0 * num_blocks + 0.5 * bus_width
    return blocks + crossbar + routing


def unit_lut_cost(
    total_entries: int,
    block_size: int = REFERENCE_BLOCK_SIZE,
    bus_width: int = REFERENCE_BUS_WIDTH,
) -> int:
    """Estimated LUTs of a full CAM unit (blocks + routing + crossbar)."""
    if total_entries < block_size:
        raise ConfigError(
            f"total_entries ({total_entries}) must be >= block_size "
            f"({block_size})"
        )
    calibrated = _unit_curve(total_entries)
    if block_size != REFERENCE_BLOCK_SIZE or bus_width != REFERENCE_BUS_WIDTH:
        ref = _structural_unit_lut(
            total_entries, REFERENCE_BLOCK_SIZE, REFERENCE_BUS_WIDTH
        )
        actual = _structural_unit_lut(total_entries, block_size, bus_width)
        calibrated *= actual / ref
    # Far below the calibration domain (anchors start at 512 entries)
    # the log-linear extrapolation undershoots; never report less than
    # half the structural estimate.
    floor = _structural_unit_lut(total_entries, block_size, bus_width) / 2
    return int(round(max(calibrated, floor)))


def unit_resources(
    total_entries: int,
    block_size: int = REFERENCE_BLOCK_SIZE,
    bus_width: int = REFERENCE_BUS_WIDTH,
    interface_brams: int = 4,
) -> ResourceVector:
    """Full resource vector of a CAM unit.

    ``interface_brams`` models the bus-interface FIFOs the paper adds
    for a complete implementation (4 BRAMs in the Table I row).
    """
    num_blocks = max(1, total_entries // block_size)
    ff = num_blocks * block_ff_cost(block_size, bus_width) + 4 * bus_width
    return ResourceVector(
        lut=unit_lut_cost(total_entries, block_size, bus_width),
        ff=ff,
        bram=interface_brams,
        dsp=total_entries,
    )


def provenance() -> str:
    """One-line provenance note for bench output."""
    return (
        "LUT counts: structural model calibrated to "
        f"{_block_curve.provenance} / {_unit_curve.provenance}"
    )
