"""FPGA resource accounting: typed resource vectors and utilisation."""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterable

from repro.errors import DeviceError


@dataclass(frozen=True)
class ResourceVector:
    """A count of FPGA primitives of each kind.

    Used both for device capacities (Table IV) and for design costs
    (Tables I, VI, VII). Supports addition and integer scaling so block
    costs compose into unit costs.
    """

    lut: int = 0
    ff: int = 0
    bram: int = 0
    uram: int = 0
    dsp: int = 0
    carry: int = 0

    def __post_init__(self) -> None:
        for field_ in fields(self):
            value = getattr(self, field_.name)
            if value < 0:
                raise DeviceError(
                    f"resource {field_.name} must be non-negative, got {value}"
                )

    # ------------------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __mul__(self, count: int) -> "ResourceVector":
        if count < 0:
            raise DeviceError(f"cannot scale resources by negative {count}")
        return ResourceVector(
            **{f.name: getattr(self, f.name) * count for f in fields(self)}
        )

    __rmul__ = __mul__

    def __iter__(self):
        for f in fields(self):
            yield f.name, getattr(self, f.name)

    def as_dict(self) -> Dict[str, int]:
        """Plain dict form, for table rendering and JSON output."""
        return dict(self)

    def nonzero(self) -> Dict[str, int]:
        """Only the resource kinds actually used."""
        return {name: value for name, value in self if value}

    # ------------------------------------------------------------------
    def fits_in(self, capacity: "ResourceVector") -> bool:
        """True when every kind is within the capacity."""
        return all(value <= getattr(capacity, name) for name, value in self)

    def utilisation(self, capacity: "ResourceVector") -> Dict[str, float]:
        """Fractional utilisation per kind (skips kinds absent on device)."""
        out: Dict[str, float] = {}
        for name, value in self:
            limit = getattr(capacity, name)
            if limit:
                out[name] = value / limit
            elif value:
                raise DeviceError(
                    f"design uses {value} {name} but device has none"
                )
        return out


def total(vectors: Iterable[ResourceVector]) -> ResourceVector:
    """Sum an iterable of resource vectors."""
    acc = ResourceVector()
    for vector in vectors:
        acc = acc + vector
    return acc
