"""Clock-frequency model for CAM blocks and units.

The design targets a 300 MHz system clock. A single block closes timing
at 300 MHz for every evaluated size (Table VI). A full unit keeps
300 MHz up to 2K entries and then droops as the post-router crossbar
fanout and cross-SLR routing grow (Table VII for 48-bit data,
Table VIII for 32-bit data). As with area, the droop is a Vivado
implementation effect we cannot re-run, so the curves are anchored at
the paper's published points and interpolated in log2(size).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.fabric.calibration import CalibratedCurve

#: Target system clock of the design (MHz).
TARGET_FREQUENCY_MHZ = 300.0

#: Table VII anchors -- unit frequency for 48-bit data.
UNIT_FREQ_ANCHORS_48 = {
    512: 300.0,
    1024: 300.0,
    2048: 300.0,
    4096: 265.0,
    6144: 252.0,
    8192: 240.0,
    9728: 235.0,
}

#: Table VIII anchors -- unit frequency for 32-bit data (derived from the
#: reported throughputs: update ops/s = 16 x f, search ops/s = f).
UNIT_FREQ_ANCHORS_32 = {
    128: 300.0,
    512: 300.0,
    2048: 300.0,
    4096: 254.0,
    8192: 240.0,
}

_curve_48 = CalibratedCurve(
    {float(k): v for k, v in UNIT_FREQ_ANCHORS_48.items()},
    provenance="Table VII (Vivado 2021.2, U250)",
    clamp=(100.0, TARGET_FREQUENCY_MHZ),
)
_curve_32 = CalibratedCurve(
    {float(k): v for k, v in UNIT_FREQ_ANCHORS_32.items()},
    provenance="Table VIII (Vivado 2021.2, U250)",
    clamp=(100.0, TARGET_FREQUENCY_MHZ),
)


def block_frequency_mhz(block_size: int) -> float:
    """Achievable frequency of a standalone block.

    All Table VI block sizes (32..512) close at the 300 MHz target; the
    output buffer added at size >= 256 exists precisely to keep this
    true, which the model reflects by returning the target for any size
    up to 512 and applying the unit droop curve beyond.
    """
    if block_size < 1:
        raise ConfigError(f"block_size must be >= 1, got {block_size}")
    if block_size <= 512:
        return TARGET_FREQUENCY_MHZ
    return unit_frequency_mhz(block_size, data_width=48)


def unit_frequency_mhz(total_entries: int, data_width: int = 48) -> float:
    """Achievable frequency of a full CAM unit.

    Interpolates between the 32-bit and 48-bit calibrated curves for
    intermediate data widths (a wider compare broadcast loads routing
    more, so frequency decreases with width between the two anchors).
    """
    if total_entries < 1:
        raise ConfigError(f"total_entries must be >= 1, got {total_entries}")
    if not 1 <= data_width <= 48:
        raise ConfigError(f"data_width must be in 1..48, got {data_width}")
    f32 = _curve_32(total_entries)
    f48 = _curve_48(total_entries)
    if data_width <= 32:
        return round(f32, 1)
    fraction = (data_width - 32) / 16.0
    return round(f32 + (f48 - f32) * fraction, 1)


def update_throughput_mops(
    total_entries: int, data_width: int, bus_width: int = 512
) -> float:
    """Update throughput in Mop/s: words-per-beat times frequency.

    An update beat carries ``bus_width // data_width`` stored words, all
    written in parallel (initiation interval 1), so the figure the paper
    reports (e.g. 4800 for 16 words at 300 MHz) is ``words x f``.
    """
    words = max(1, bus_width // data_width)
    return round(words * unit_frequency_mhz(total_entries, data_width), 0)


def search_throughput_mops(total_entries: int, data_width: int) -> float:
    """Search throughput in Mop/s: one key per cycle per query port."""
    return round(unit_frequency_mhz(total_entries, data_width), 0)


def provenance() -> str:
    """One-line provenance note for bench output."""
    return (
        "Frequencies: droop curves calibrated to "
        f"{_curve_48.provenance} / {_curve_32.provenance}"
    )
