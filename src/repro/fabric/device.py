"""Catalogue of FPGA devices referenced by the paper.

The primary target is the AMD Alveo U250 (Table IV). The platforms used
by the surveyed designs of Table I are included with their public
datasheet capacities so resource-utilisation percentages in the benches
can be computed for every row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import DeviceError
from repro.fabric.resources import ResourceVector


@dataclass(frozen=True)
class Device:
    """An FPGA part/board with its usable resource capacity."""

    name: str
    family: str
    capacity: ResourceVector
    #: Number of super logic regions (SLRs); cross-SLR paths cost timing.
    slr_count: int = 1
    #: Datasheet maximum DSP clock in MHz (UG579 for UltraScale+).
    dsp_fmax_mhz: float = 650.0

    def utilisation(self, usage: ResourceVector) -> Dict[str, float]:
        """Fractional utilisation of this device by ``usage``."""
        return usage.utilisation(self.capacity)

    def fits(self, usage: ResourceVector) -> bool:
        """Whether ``usage`` fits on this device."""
        return usage.fits_in(self.capacity)


#: AMD Alveo U250 -- the paper's evaluation platform (Table IV).
ALVEO_U250 = Device(
    name="Alveo U250",
    family="UltraScale+",
    capacity=ResourceVector(
        lut=1_728_000, ff=3_456_000, bram=2_688, uram=1_280, dsp=12_288
    ),
    slr_count=4,
    dsp_fmax_mhz=891.0,
)

#: Effective per-SLR slice of the U250, used by the Table IX case study
#: (the paper constrains both designs to a single SLR / DDR channel).
ALVEO_U250_SLR = Device(
    name="Alveo U250 (1 SLR)",
    family="UltraScale+",
    capacity=ResourceVector(
        lut=432_000, ff=864_000, bram=672, uram=320, dsp=3_072
    ),
    slr_count=1,
    dsp_fmax_mhz=891.0,
)

#: Platforms used by the surveyed designs in Table I.
_SURVEY_DEVICES = [
    Device(
        name="XC7V2000T",
        family="Virtex-7",
        capacity=ResourceVector(lut=1_221_600, ff=2_443_200, bram=1_292, dsp=2_160),
        slr_count=4,
        dsp_fmax_mhz=741.0,
    ),
    Device(
        name="Virtex-6",
        family="Virtex-6",
        capacity=ResourceVector(lut=474_240, ff=948_480, bram=1_064, dsp=2_016),
        dsp_fmax_mhz=600.0,
    ),
    Device(
        name="XC6VLX760",
        family="Virtex-6",
        capacity=ResourceVector(lut=474_240, ff=948_480, bram=1_440, dsp=864),
        dsp_fmax_mhz=600.0,
    ),
    Device(
        name="Intel Arria V 5ASTD5",
        family="Arria V",
        # ALMs play the LUT role; M10K blocks play the BRAM role.
        capacity=ResourceVector(lut=190_240, ff=380_480, bram=2_414, dsp=1_090),
        dsp_fmax_mhz=500.0,
    ),
    Device(
        name="Kintex-7",
        family="Kintex-7",
        capacity=ResourceVector(lut=254_200, ff=508_400, bram=890, dsp=1_540),
        dsp_fmax_mhz=741.0,
    ),
    Device(
        name="XCVU9P",
        family="UltraScale+",
        capacity=ResourceVector(lut=1_182_240, ff=2_364_480, bram=2_160, uram=960, dsp=6_840),
        slr_count=3,
        dsp_fmax_mhz=891.0,
    ),
]

DEVICES: Dict[str, Device] = {
    device.name: device
    for device in [ALVEO_U250, ALVEO_U250_SLR] + _SURVEY_DEVICES
}


def get_device(name: str) -> Device:
    """Look up a device by its catalogue name."""
    try:
        return DEVICES[name]
    except KeyError:
        known = ", ".join(sorted(DEVICES))
        raise DeviceError(f"unknown device {name!r}; known: {known}")
