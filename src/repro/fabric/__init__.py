"""FPGA fabric model: devices, resources, calibrated area and timing."""

from repro.fabric.area import (
    BLOCK_LUT_ANCHORS,
    UNIT_LUT_ANCHORS,
    block_ff_cost,
    block_lut_cost,
    block_resources,
    unit_lut_cost,
    unit_resources,
)
from repro.fabric.calibration import CalibratedCurve
from repro.fabric.floorplan import (
    FloorplanReport,
    fits_single_slr,
    floorplan_unit,
    max_single_slr_entries,
)
from repro.fabric.device import (
    ALVEO_U250,
    ALVEO_U250_SLR,
    DEVICES,
    Device,
    get_device,
)
from repro.fabric.resources import ResourceVector, total
from repro.fabric.timing import (
    TARGET_FREQUENCY_MHZ,
    block_frequency_mhz,
    search_throughput_mops,
    unit_frequency_mhz,
    update_throughput_mops,
)

__all__ = [
    "ALVEO_U250",
    "ALVEO_U250_SLR",
    "BLOCK_LUT_ANCHORS",
    "CalibratedCurve",
    "DEVICES",
    "Device",
    "FloorplanReport",
    "ResourceVector",
    "fits_single_slr",
    "floorplan_unit",
    "max_single_slr_entries",
    "TARGET_FREQUENCY_MHZ",
    "UNIT_LUT_ANCHORS",
    "block_ff_cost",
    "block_frequency_mhz",
    "block_lut_cost",
    "block_resources",
    "get_device",
    "search_throughput_mops",
    "total",
    "unit_frequency_mhz",
    "unit_lut_cost",
    "unit_resources",
    "update_throughput_mops",
]
