"""SLR floorplanning for CAM units on multi-die FPGAs.

The U250 is four super logic regions (SLRs) stitched by limited
inter-die routing. Two facts in the paper hang off this structure:

- the Table IX case study caps its CAM at 2K entries "to remain within
  a single super logic region (SLR) since the baseline design is also
  implemented inside a single SLR";
- the unit frequency droop past 2K entries (Table VII) tracks the
  design spilling into more SLRs, where the key-broadcast and
  result-merge nets pay inter-die crossings.

This module assigns blocks to SLRs (contiguous fill, each block's DSP
column stays within one SLR) and reports the broadcast crossing count
and per-SLR utilisation. Frequency itself stays with the calibrated
curve in :mod:`repro.fabric.timing`; the floorplan supplies the
structural explanation and the feasibility checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import CapacityError, DeviceError
from repro.fabric.device import ALVEO_U250, Device


@dataclass(frozen=True)
class FloorplanReport:
    """Where a unit's blocks land and what the stitching costs."""

    device: str
    #: SLR index per block, in block order.
    assignments: List[int]
    #: DSPs consumed per SLR.
    per_slr_dsp: List[int]
    #: Inter-die hops the key-broadcast / result-merge nets traverse.
    crossings: int

    @property
    def slrs_used(self) -> int:
        return len({slr for slr in self.assignments}) if self.assignments else 0

    @property
    def single_slr(self) -> bool:
        return self.slrs_used <= 1


def floorplan_unit(
    total_entries: int,
    block_size: int,
    device: Device = ALVEO_U250,
    slr_dsp_budget: float = 1.0,
) -> FloorplanReport:
    """Assign a unit's blocks to SLRs by contiguous fill.

    ``slr_dsp_budget`` reserves headroom per SLR (e.g. 0.9 leaves 10%
    of each die's DSPs for the surrounding system). Raises
    :class:`CapacityError` when the device cannot host the unit.
    """
    if device.slr_count < 1:
        raise DeviceError(f"{device.name}: invalid SLR count")
    if not 0 < slr_dsp_budget <= 1:
        raise DeviceError(f"slr_dsp_budget must be in (0, 1], got {slr_dsp_budget}")
    if total_entries < 1 or block_size < 1 or total_entries % block_size:
        raise DeviceError(
            f"total_entries ({total_entries}) must be a positive multiple "
            f"of block_size ({block_size})"
        )
    dsp_per_slr = int(device.capacity.dsp / device.slr_count * slr_dsp_budget)
    if block_size > dsp_per_slr:
        raise CapacityError(
            f"a {block_size}-cell block does not fit one SLR "
            f"({dsp_per_slr} DSPs available)"
        )
    num_blocks = total_entries // block_size

    assignments: List[int] = []
    per_slr = [0] * device.slr_count
    slr = 0
    for _block in range(num_blocks):
        while slr < device.slr_count and per_slr[slr] + block_size > dsp_per_slr:
            slr += 1
        if slr >= device.slr_count:
            raise CapacityError(
                f"{total_entries} entries exceed the device: "
                f"{sum(per_slr)} DSPs placed, block needs {block_size} more"
            )
        assignments.append(slr)
        per_slr[slr] += block_size
    crossings = max(0, len({s for s in assignments}) - 1)
    return FloorplanReport(
        device=device.name,
        assignments=assignments,
        per_slr_dsp=per_slr,
        crossings=crossings,
    )


def fits_single_slr(
    total_entries: int,
    block_size: int,
    device: Device = ALVEO_U250,
    slr_dsp_budget: float = 1.0,
) -> bool:
    """Whether the unit stays within one SLR (the Table IX constraint)."""
    try:
        report = floorplan_unit(total_entries, block_size, device, slr_dsp_budget)
    except CapacityError:
        return False
    return report.single_slr


def max_single_slr_entries(
    block_size: int,
    device: Device = ALVEO_U250,
    slr_dsp_budget: float = 1.0,
) -> int:
    """Largest unit capacity that still floorplans into one SLR."""
    dsp_per_slr = int(device.capacity.dsp / device.slr_count * slr_dsp_budget)
    blocks = dsp_per_slr // block_size
    if blocks < 1:
        raise CapacityError(
            f"a {block_size}-cell block does not fit one SLR of {device.name}"
        )
    return blocks * block_size
