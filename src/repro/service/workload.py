"""Synthetic traffic driver for the sharded CAM service.

Powers ``python -m repro serve-demo``, the CI service-smoke job and the
shard-scaling benchmark: a reproducible mixed lookup/insert/delete
workload executed by concurrent client tasks against a
:class:`~repro.service.scheduler.CamService`, summarised into a
:class:`WorkloadReport` (outcome counts, latency percentiles,
throughput, per-shard health).

Also home to :class:`FaultyBackend`, the fault-injection session proxy
the failure-isolation demo and tests use to poison one shard mid-run.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import UnitConfig, unit_for_entries
from repro.core.types import CamType
from repro.errors import ConfigError, SimulationError
from repro.service.scheduler import CamService, ServiceResponse
from repro.service.sharded import ShardedCam


class FaultyBackend:
    """Session proxy that injects a fault after ``fail_after`` ops.

    Wraps a real session and forwards everything; once the programmed
    operation count is reached the selected failure ``mode`` kicks in:

    - ``"wedge"`` (default, the original behaviour) -- every further
      transaction raises :class:`SimulationError` forever; the sharded
      layer poisons the shard, a replica set fences the replica.
    - ``"crash"`` -- transactions raise for a window of ``fail_ops``
      operations, then the backend recovers (a rebooted process: its
      *content is stale*, so it must be rebuilt from a peer before it
      can serve again -- exactly what the repair path does).
    - ``"diverge"`` -- updates silently drop their words while
      reporting success; nothing raises. Only the replica set's
      content-hash divergence beats catch this one.

    Snapshot/restore/reset pass through untouched (they ride
    ``__getattr__``), so a wedged or crashed replica can still be
    rebuilt from a donor snapshot.
    """

    MODES = ("wedge", "crash", "diverge")

    def __init__(self, session, fail_after: int, *, mode: str = "wedge",
                 fail_ops: int = 25) -> None:
        if mode not in self.MODES:
            raise ConfigError(
                f"fault mode must be one of {self.MODES}, got {mode!r}"
            )
        if fail_ops < 1:
            raise ConfigError(f"fail_ops must be >= 1, got {fail_ops}")
        self._session = session
        self._fail_after = fail_after
        self._mode = mode
        self._fail_ops = fail_ops
        self._ops = 0

    def heal(self) -> None:
        """Clear the injected fault (models swapping in a healthy node).

        The backend's *content* stays whatever the fault left behind, so
        a wedged/crashed replica still needs a rebuild before serving.
        """
        self._fail_after = float("inf")

    def _faulting(self) -> bool:
        if self._ops <= self._fail_after:
            return False
        if self._mode == "crash":
            return self._ops <= self._fail_after + self._fail_ops
        return True

    def _tick(self) -> None:
        self._ops += 1
        if self._mode != "diverge" and self._faulting():
            raise SimulationError(
                f"injected {self._mode} fault after {self._fail_after} ops"
            )

    def update(self, words, group=None):
        self._tick()
        if self._mode == "diverge" and self._faulting():
            # Silently lose the write but report plausible stats: the
            # replica now disagrees without ever raising.
            words = list(words)
            per_beat = self._session.words_per_beat
            beats = -(-len(words) // per_beat)
            from repro.core.session import UpdateStats

            return UpdateStats(
                words=len(words), beats=beats,
                cycles=beats + self._session.update_latency - 1,
            )
        return self._session.update(words, group=group)

    def search(self, keys, groups=None):
        self._tick()
        return self._session.search(keys, groups=groups)

    def delete(self, key):
        self._tick()
        return self._session.delete(key)

    def __getattr__(self, name):
        return getattr(self._session, name)


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of one synthetic run (all knobs CLI-settable)."""

    requests: int = 2000
    clients: int = 8
    lookup_fraction: float = 0.75
    delete_fraction: float = 0.05
    insert_batch_max: int = 8
    hot_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigError(f"requests must be >= 1, got {self.requests}")
        if self.clients < 1:
            raise ConfigError(f"clients must be >= 1, got {self.clients}")
        if not 0 <= self.lookup_fraction + self.delete_fraction <= 1:
            raise ConfigError("lookup+delete fractions must be within [0, 1]")


@dataclass
class WorkloadReport:
    """Outcome summary of one synthetic service run."""

    requests: int = 0
    lookups: int = 0
    inserts: int = 0
    deletes: int = 0
    hits: int = 0
    ok: int = 0
    timeouts: int = 0
    shard_failures: int = 0
    client_errors: int = 0
    rejected: int = 0
    words_stored: int = 0
    wall_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)
    shards: int = 0
    poisoned_shards: List[int] = field(default_factory=list)
    max_queue_depth: int = 0
    mean_batch_occupancy: float = 0.0
    simulated_cycles: int = 0
    replicas: int = 1
    repairs_completed: int = 0
    repairs_failed: int = 0
    failed_replicas: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def render(self) -> str:
        lines = [
            f"requests          : {self.requests} "
            f"({self.lookups} lookups, {self.inserts} inserts, "
            f"{self.deletes} deletes)",
            f"outcomes          : {self.ok} ok, {self.timeouts} timeout, "
            f"{self.shard_failures} shard_failed, "
            f"{self.client_errors} error, {self.rejected} rejected",
            f"hit rate          : "
            f"{self.hits / self.lookups:.3f}" if self.lookups else
            "hit rate          : n/a",
            f"stored words      : {self.words_stored}",
            f"wall time         : {self.wall_s:.3f} s "
            f"({self.throughput_rps:,.0f} req/s)",
            f"latency p50/p95/p99: {self.latency_percentile(0.50) * 1e3:.2f} / "
            f"{self.latency_percentile(0.95) * 1e3:.2f} / "
            f"{self.latency_percentile(0.99) * 1e3:.2f} ms",
            f"batching          : mean occupancy "
            f"{self.mean_batch_occupancy:.1f} req/flush, "
            f"max queue depth {self.max_queue_depth}",
            f"shards            : {self.shards} total, "
            f"poisoned {self.poisoned_shards or 'none'}",
            f"simulated cycles  : {self.simulated_cycles}",
        ]
        if self.replicas > 1:
            lines.append(
                f"replication       : {self.replicas} replicas/shard, "
                f"{self.repairs_completed} repairs completed, "
                f"{self.repairs_failed} failed, degraded replicas "
                f"{self.failed_replicas or 'none'}"
            )
        return "\n".join(lines)


def table09_probe_stream(
    capacity: int,
    *,
    seed: int = 3,
    num_vertices: int = 2000,
    num_edges: int = 12_000,
    triangle_fraction: float = 0.4,
    fill: float = 0.6,
    max_probes: int = 16_000,
):
    """The Table IX adjacency-intersection workload as a CAM stream.

    Hub adjacency sets of a power-law graph are stored in the CAM
    (up to ``fill`` of ``capacity`` distinct neighbor ids), then the
    probe sides of sampled edges stream through as membership lookups
    -- each hit is one intersection contribution, exactly what the
    triangle-counting pipeline asks the CAM per edge. Shared by the
    shard-scaling benchmark, the network-throughput benchmark and the
    ``loadgen`` CLI, so every layer is measured on the same stream.

    Returns ``(stored, probes)`` lists of ints.
    """
    from repro.graph import power_law

    graph = power_law(num_vertices, num_edges,
                      triangle_fraction=triangle_fraction, seed=seed)
    order = sorted(range(graph.num_vertices), key=graph.degree,
                   reverse=True)
    budget = max(1, int(capacity * fill))
    stored, seen = [], set()
    for hub in order:
        for neighbor in graph.neighbors(hub):
            value = int(neighbor)
            if value not in seen:
                seen.add(value)
                stored.append(value)
                if len(stored) >= budget:
                    break
        if len(stored) >= budget:
            break
    probes = []
    for u, v in graph.edges():
        side = u if graph.degree(u) <= graph.degree(v) else v
        probes.extend(int(w) for w in graph.neighbors(side))
        if len(probes) >= max_probes:
            break
    return stored, probes


def demo_cam(
    *,
    entries_per_shard: int = 512,
    shards: int = 4,
    block_size: int = 64,
    data_width: int = 32,
    engine: str = "batch",
    policy: str = "hash",
    replicas: int = 1,
    poison_shard: Optional[int] = None,
    poison_after: int = 50,
    fault_mode: Optional[str] = None,
    fail_ops: int = 25,
    **session_kwargs,
) -> ShardedCam:
    """Build the demo service's backing :class:`ShardedCam`.

    ``poison_shard`` wraps that shard in a :class:`FaultyBackend` that
    blows up after ``poison_after`` operations -- the failure-isolation
    demonstration. With ``replicas > 1`` only that shard's *preferred*
    replica is wrapped, so the shard keeps serving through its healthy
    peer and the repair path has a donor to rebuild from; the default
    fault mode then becomes ``"crash"`` (the replica recovers and can
    be reinstated) instead of ``"wedge"``.
    """
    config = unit_for_entries(
        entries_per_shard,
        block_size=min(block_size, entries_per_shard),
        data_width=data_width,
        bus_width=512,
        cam_type=CamType.BINARY,
        default_groups=1,
    )
    if fault_mode is None:
        fault_mode = "wedge" if replicas == 1 else "crash"
    factory = None
    replica_factory = None
    if poison_shard is not None:
        from repro.core.batch import open_session

        if replicas > 1:
            def replica_factory(shard: int, replica: int, cfg: UnitConfig):
                session = open_session(
                    cfg, engine=engine,
                    name=f"svc.shard{shard}.r{replica}",
                    **session_kwargs,
                )
                if shard == poison_shard and replica == 0:
                    return FaultyBackend(session, poison_after,
                                         mode=fault_mode,
                                         fail_ops=fail_ops)
                return session
        else:
            def factory(index: int, cfg: UnitConfig):
                session = open_session(cfg, engine=engine,
                                       name=f"svc.shard{index}",
                                       **session_kwargs)
                if index == poison_shard:
                    return FaultyBackend(session, poison_after,
                                         mode=fault_mode,
                                         fail_ops=fail_ops)
                return session

    return ShardedCam(config, shards=shards, policy=policy, engine=engine,
                      name="svc", replicas=replicas,
                      session_factory=factory,
                      replica_factory=replica_factory, **session_kwargs)


async def drive_service(service: CamService,
                        spec: WorkloadSpec) -> WorkloadReport:
    """Run the synthetic workload against a started service."""
    cam = service.cam
    width = cam.config.data_width
    key_space = min(1 << width, 1 << 20)
    hot_keys = max(1, int(key_space * 0.001))
    capacity_budget = int(cam.capacity * 0.6)
    report = WorkloadReport(shards=cam.num_shards)
    stored_words = 0
    lock = asyncio.Lock()

    def account(response: ServiceResponse) -> None:
        report.latencies_s.append(response.latency_s)
        if response.status == "ok":
            report.ok += 1
        elif response.status == "timeout":
            report.timeouts += 1
        elif response.status == "shard_failed":
            report.shard_failures += 1
        else:
            report.client_errors += 1

    async def client(client_id: int, operations: int) -> None:
        nonlocal stored_words
        rng = np.random.default_rng(spec.seed * 7919 + client_id)

        def draw_key() -> int:
            if rng.random() < spec.hot_fraction:
                return int(rng.integers(0, hot_keys))
            return int(rng.integers(0, key_space))

        for _ in range(operations):
            roll = rng.random()
            if roll < spec.lookup_fraction or stored_words >= capacity_budget:
                response = await service.lookup(draw_key())
                report.lookups += 1
                if response.ok and response.result.hit:
                    report.hits += 1
            elif roll < spec.lookup_fraction + spec.delete_fraction:
                response = await service.delete(draw_key())
                report.deletes += 1
            else:
                count = int(rng.integers(1, spec.insert_batch_max + 1))
                words = [draw_key() for _ in range(count)]
                async with lock:
                    stored_words += count
                response = await service.insert(words)
                report.inserts += 1
                if response.ok:
                    report.words_stored += response.stats.words
            account(response)
            report.requests += 1

    per_client = max(1, spec.requests // spec.clients)
    started = time.perf_counter()
    await asyncio.gather(*[
        client(index, per_client) for index in range(spec.clients)
    ])
    report.wall_s = time.perf_counter() - started
    report.poisoned_shards = list(cam.poisoned_shards)
    report.max_queue_depth = service.stats.max_queue_depth
    report.mean_batch_occupancy = service.stats.mean_batch_occupancy
    report.simulated_cycles = cam.cycle
    report.replicas = getattr(cam, "num_replicas", 1)
    report.repairs_completed = service.stats.repairs_completed
    report.repairs_failed = service.stats.repairs_failed
    report.failed_replicas = {
        shard: list(failed)
        for shard, session in enumerate(cam.sessions)
        if (failed := getattr(session, "failed_replicas", ()))
    }
    return report


def run_demo_workload(
    cam: ShardedCam,
    spec: Optional[WorkloadSpec] = None,
    *,
    max_batch: int = 64,
    max_delay_s: float = 0.002,
    queue_depth: int = 1024,
    request_timeout_s: float = 5.0,
    auto_repair: bool = False,
) -> WorkloadReport:
    """Blocking entry point: start a service, drive it, report."""
    spec = spec or WorkloadSpec()

    async def _run() -> WorkloadReport:
        async with CamService(
            cam,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            queue_depth=queue_depth,
            request_timeout_s=request_timeout_s,
            auto_repair=auto_repair,
        ) as service:
            return await drive_service(service, spec)

    return asyncio.run(_run())
