"""Sharded CAM façade: one logical CAM over N per-shard sessions.

:class:`ShardedCam` scales the single-unit session horizontally, the
way the banked CAM architectures in the related work scale past one
unit's frequency droop: the key space is partitioned across ``shards``
independent backend sessions (each a :func:`repro.core.open_session`
engine -- batch by default, ``audit`` for per-shard shadow
verification), and per-shard answers are merged back into one result.

The merge preserves the paper's priority-encoding semantics across
shard boundaries by translating every shard-local match bit onto a
**global address space**: global address = global insertion index,
exactly the numbering :class:`repro.core.ReferenceCam` uses. The
merged ``match_vector`` is the OR of the translated per-shard vectors,
so ``address`` (the lowest set bit) is the *globally* first-inserted
match even when candidates live on different shards -- a sharded
service is therefore result-identical to one big reference CAM.

Failure isolation: a shard whose backend raises unexpectedly is
*poisoned* -- recorded, counted, and fenced off. Subsequent operations
touching it raise :class:`~repro.errors.ShardFailedError` immediately
instead of corrupting state; the async service layer
(:mod:`repro.service.scheduler`) catches that error per request and
degrades to miss-with-error while healthy shards keep serving.

Cycle accounting treats shards as parallel hardware banks: one
logical operation costs the *maximum* of the per-shard cycle deltas,
and :attr:`cycle` is the slowest shard's counter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.core.config import UnitConfig
from repro.core.mask import CamEntry
from repro.core.session import (
    CamSession,
    RawWord,
    SearchStats,
    UpdateStats,
    publish_search_metrics,
    publish_update_metrics,
)
from repro.core.types import CamType, SearchResult
from repro.errors import (
    CapacityError,
    ConfigError,
    MaskError,
    RoutingError,
    ShardFailedError,
)
from repro.fabric.resources import total as total_resources
from repro.service.sharding import ShardPolicy, policy_for

#: Exceptions that indicate a caller mistake, not a shard fault: they
#: propagate unchanged and do not poison the shard.
_CLIENT_ERRORS = (ConfigError, CapacityError, RoutingError, MaskError)


def merge_results(
    key: int,
    partials: Sequence[SearchResult],
    encoding=None,
) -> SearchResult:
    """Merge globally-mapped per-shard results for one key.

    ORs the (already global) match vectors; the rebuilt result's
    address is the lowest global address, i.e. the globally
    first-inserted match -- priority encoding across shard boundaries.
    """
    vector = 0
    for partial in partials:
        vector |= partial.match_vector
    if encoding is None:
        encoding = partials[0].encoding if partials else None
    if encoding is None:
        return SearchResult.from_vector(key, vector)
    return SearchResult.from_vector(key, vector, encoding)


class ShardedCam:
    """One logical CAM served by ``shards`` independent sessions.

    Conforms to the :class:`repro.core.CamBackend` protocol (``update``
    / ``search`` / ``search_one`` / ``contains`` / ``delete`` /
    ``reset`` / ``idle`` / ``snapshot`` / ``restore`` plus the
    capacity/occupancy/cycle properties), so callers written against
    :class:`~repro.core.CamSession` work unchanged; construct it
    through :func:`repro.open_session` with ``shards > 1`` (and
    ``replicas > 1`` for replicated shards).

    ``config`` describes **one shard's** unit; total capacity is
    ``shards`` times the per-shard capacity. Pinned policies (hash,
    range) require a binary CAM -- the routing function must agree for
    stored words and search keys -- while the broadcast round-robin
    policy accepts any CAM type.
    """

    def __init__(
        self,
        config: UnitConfig,
        *,
        shards: int,
        policy: Union[str, ShardPolicy] = "hash",
        engine: str = "batch",
        name: str = "sharded_cam",
        replicas: int = 1,
        session_factory=None,
        replica_factory=None,
        **session_kwargs,
    ) -> None:
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {replicas}")
        self.config = config
        self.name = name
        self.policy = policy_for(policy, shards, config.data_width)
        if (not self.policy.broadcast_lookups
                and config.block.cell.cam_type is not CamType.BINARY):
            raise ConfigError(
                f"shard policy {self.policy.name!r} pins lookups by exact "
                "key and needs a binary CAM; use the broadcast "
                "'round_robin' policy for ternary/range configurations"
            )
        self.engine = engine
        self.num_replicas = replicas
        if replicas > 1:
            if session_factory is not None:
                raise ConfigError(
                    f"{name}: session_factory and replicas are exclusive; "
                    "wrap individual replicas with replica_factory instead"
                )
            from repro.service.replica import ReplicaSet

            if replica_factory is None:
                from repro.core.batch import open_session

                def replica_factory(shard: int, replica: int,
                                    cfg: UnitConfig) -> CamSession:
                    return open_session(
                        cfg, engine=engine,
                        name=f"{name}.shard{shard}.r{replica}",
                        **session_kwargs,
                    )

            def session_factory(index: int, cfg: UnitConfig):
                return ReplicaSet(
                    [replica_factory(index, r, cfg)
                     for r in range(replicas)],
                    name=f"{name}.shard{index}",
                )

        elif session_factory is None:
            from repro.core.batch import open_session

            def session_factory(index: int, cfg: UnitConfig) -> CamSession:
                return open_session(cfg, engine=engine,
                                    name=f"{name}.shard{index}",
                                    **session_kwargs)

        self.sessions: Tuple[CamSession, ...] = tuple(
            session_factory(index, config) for index in range(shards)
        )
        #: shard -> (local address -> global address), in local fill order.
        self._global_addrs: List[List[int]] = [[] for _ in range(shards)]
        self._global_count = 0
        self._poisoned: Dict[int, str] = {}
        self.last_update_stats: Optional[UpdateStats] = None
        self.last_search_stats: Optional[SearchStats] = None

    # ------------------------------------------------------------------
    # structure / session-protocol properties
    # ------------------------------------------------------------------
    @property
    def engine_name(self) -> str:
        if self.num_replicas > 1:
            return (f"sharded[{self.num_shards}x{self.num_replicas}x"
                    f"{self.engine}]")
        return f"sharded[{self.num_shards}x{self.engine}]"

    @property
    def num_shards(self) -> int:
        return len(self.sessions)

    @property
    def capacity(self) -> int:
        """Aggregate entries across every shard."""
        return sum(session.capacity for session in self.sessions)

    @property
    def occupancy(self) -> int:
        """Stored words (including delete holes) across every shard."""
        return sum(session.occupancy for session in self.sessions)

    @property
    def cycle(self) -> int:
        """Slowest shard's cycle counter (shards run in parallel)."""
        return max(session.cycle for session in self.sessions)

    @property
    def num_groups(self) -> int:
        return self.sessions[0].num_groups

    @property
    def search_latency(self) -> int:
        return self.sessions[0].search_latency

    @property
    def update_latency(self) -> int:
        return self.sessions[0].update_latency

    @property
    def words_per_beat(self) -> int:
        return self.sessions[0].words_per_beat

    @property
    def trace(self):
        return None

    @property
    def poisoned_shards(self) -> Tuple[int, ...]:
        """Shards fenced off after an unexpected backend failure."""
        return tuple(sorted(self._poisoned))

    @property
    def degraded_shards(self) -> Tuple[int, ...]:
        """Shards that need attention: poisoned, or (with replication)
        serving with at least one failed replica."""
        degraded = set(self._poisoned)
        for shard, session in enumerate(self.sessions):
            if getattr(session, "failed_replicas", ()):
                degraded.add(shard)
        return tuple(sorted(degraded))

    def shard_healthy(self, shard: int) -> bool:
        return shard not in self._poisoned

    def revive_shard(self, shard: int) -> None:
        """Lift the poison fence from a shard whose backend has been
        repaired (all replicas healthy again). The shard resumes
        serving with the content it held -- replicated backends keep it
        consistent through the repair."""
        if not 0 <= shard < self.num_shards:
            raise RoutingError(
                f"{self.name}: shard {shard} out of range "
                f"(0..{self.num_shards - 1})"
            )
        if shard not in self._poisoned:
            return
        if getattr(self.sessions[shard], "failed_replicas", ()):
            raise ShardFailedError(
                shard, "cannot revive: backend still has failed replicas"
            )
        del self._poisoned[shard]
        obs.inc("svc_shard_revivals_total",
                help="poisoned shards reinstated after repair", shard=shard)
        obs.set_gauge("svc_shards_healthy",
                      self.num_shards - len(self._poisoned),
                      help="shards currently serving")

    def resources(self):
        """Aggregate resource vector (N times one shard's unit)."""
        return total_resources(s.resources() for s in self.sessions)

    # ------------------------------------------------------------------
    # fault fencing
    # ------------------------------------------------------------------
    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise RoutingError(
                f"{self.name}: shard {shard} out of range "
                f"(0..{self.num_shards - 1})"
            )
        if shard in self._poisoned:
            raise ShardFailedError(shard, self._poisoned[shard])

    def _poison(self, shard: int, exc: BaseException) -> "ShardFailedError":
        detail = f"{type(exc).__name__}: {exc}"
        self._poisoned[shard] = detail
        obs.inc("svc_shard_failures_total",
                help="shard backends poisoned after unexpected errors",
                shard=shard)
        obs.set_gauge("svc_shards_healthy",
                      self.num_shards - len(self._poisoned),
                      help="shards currently serving")
        error = ShardFailedError(shard, detail)
        error.__cause__ = exc
        return error

    # ------------------------------------------------------------------
    # routing helpers
    # ------------------------------------------------------------------
    def _route_value(self, word: RawWord) -> int:
        if isinstance(word, CamEntry):
            return self.policy.mask_key(word.value)
        return self.policy.mask_key(int(word))

    def _assign_addresses(self, shard: int, addresses: Sequence[int]) -> None:
        self._global_addrs[shard].extend(addresses)

    def _map_vector(self, shard: int, local_vector: int) -> int:
        """Translate a shard-local match vector onto global addresses."""
        table = self._global_addrs[shard]
        mapped = 0
        vector = local_vector
        while vector:
            low = vector & -vector
            mapped |= 1 << table[low.bit_length() - 1]
            vector ^= low
        return mapped

    def _globalize(self, shard: int, result: SearchResult) -> SearchResult:
        return SearchResult.from_vector(
            result.key, self._map_vector(shard, result.match_vector),
            result.encoding,
        )

    # ------------------------------------------------------------------
    # shard-level primitives (the async scheduler dispatches these)
    # ------------------------------------------------------------------
    def update_shard(
        self,
        shard: int,
        words: Sequence[RawWord],
        addresses: Optional[Sequence[int]] = None,
    ) -> UpdateStats:
        """Store ``words`` on one shard, binding them to global
        addresses (freshly allocated unless ``addresses`` preassigns
        them, which the batched front door uses to keep interleaved
        input order)."""
        words = list(words)
        self._check_shard(shard)
        if addresses is None:
            addresses = range(self._global_count, self._global_count + len(words))
            self._global_count += len(words)
        session = self.sessions[shard]
        before = session.occupancy
        with obs.span("svc.shard.update", shard=shard, words=len(words)):
            try:
                stats = session.update(words)
            except _CLIENT_ERRORS:
                # The batch engine lands the beats that fit before the
                # overflowing beat raises; keep the address map in sync
                # with what actually landed.
                landed = session.occupancy - before
                self._assign_addresses(shard, list(addresses)[:landed])
                raise
            except Exception as exc:
                raise self._poison(shard, exc) from exc
        self._assign_addresses(shard, addresses)
        obs.inc("svc_shard_ops_total", help="operations executed per shard",
                shard=shard, op="update")
        return stats

    def search_shard(
        self, shard: int, keys: Sequence[int]
    ) -> List[SearchResult]:
        """Search ``keys`` on one shard; vectors come back globally
        mapped (for pinned policies this is already the final answer)."""
        self._check_shard(shard)
        session = self.sessions[shard]
        with obs.span("svc.shard.search", shard=shard, keys=len(keys)):
            try:
                results = session.search(keys)
            except _CLIENT_ERRORS:
                raise
            except Exception as exc:
                raise self._poison(shard, exc) from exc
        obs.inc("svc_shard_ops_total", shard=shard, op="search")
        return [self._globalize(shard, result) for result in results]

    def delete_shard(self, shard: int, key: int) -> SearchResult:
        """Delete-by-content on one shard; returns the globally-mapped
        view of what was invalidated."""
        self._check_shard(shard)
        session = self.sessions[shard]
        with obs.span("svc.shard.delete", shard=shard):
            try:
                result = session.delete(key)
            except _CLIENT_ERRORS:
                raise
            except Exception as exc:
                raise self._poison(shard, exc) from exc
        obs.inc("svc_shard_ops_total", shard=shard, op="delete")
        return self._globalize(shard, result)

    def partition_update(
        self, words: Sequence[RawWord]
    ) -> Dict[int, Tuple[List[RawWord], List[int]]]:
        """Route an update across shards, binding each word to a global
        address in **input order** (the reference model's insertion
        numbering). Returns ``{shard: (words, addresses)}``; pass each
        entry to :meth:`update_shard`. Every word consumes its global
        index at partition time, so addressing stays deterministic even
        if a later per-shard dispatch fails or never runs."""
        words = list(words)
        if not words:
            raise ConfigError("update needs at least one word")
        if self.occupancy + len(words) > self.capacity:
            raise CapacityError(
                f"{self.name}: {len(words)} words exceed aggregate capacity "
                f"({self.occupancy}/{self.capacity} used)"
            )
        base = self._global_count
        parts: Dict[int, Tuple[List[RawWord], List[int]]] = {}
        for offset, word in enumerate(words):
            shard = self.policy.shard_for_insert(
                self._route_value(word), base + offset
            )
            entry = parts.setdefault(shard, ([], []))
            entry[0].append(word)
            entry[1].append(base + offset)
        self._global_count = base + len(words)
        return parts

    def shards_for_key(self, key: int) -> List[int]:
        """Shards that must answer a lookup for ``key``."""
        pinned = self.policy.shard_for_key(key)
        if pinned is None:
            return list(range(self.num_shards))
        return [pinned]

    # ------------------------------------------------------------------
    # session protocol (blocking front door)
    # ------------------------------------------------------------------
    def update(
        self, words: Sequence[RawWord], group: Optional[int] = None
    ) -> UpdateStats:
        """Partition ``words`` across shards and store them.

        Global addresses follow the input order (exactly the reference
        model's insertion numbering) even when consecutive words land
        on different shards.
        """
        if group is not None:
            raise RoutingError(
                f"{self.name}: the sharded service routes storage itself; "
                "per-call group targeting is not supported"
            )
        words = list(words)
        parts = self.partition_update(words)
        with obs.span("svc.update", engine=self.engine_name,
                      words=len(words)):
            before = [s.cycle for s in self.sessions]
            beats = 0
            for shard in sorted(parts):
                shard_words, shard_addresses = parts[shard]
                stats = self.update_shard(shard, shard_words,
                                          addresses=shard_addresses)
                beats = max(beats, stats.beats)
            cycles = max(
                s.cycle - b for s, b in zip(self.sessions, before)
            )
            stats = UpdateStats(words=len(words), beats=beats, cycles=cycles)
        self.last_update_stats = stats
        if obs.enabled():
            publish_update_metrics(self, stats)
        return stats

    def search(
        self,
        keys: Sequence[int],
        groups: Optional[Sequence[int]] = None,
    ) -> List[SearchResult]:
        """Search ``keys``; answers merged across shards by global
        priority. Pinned policies touch one shard per key; broadcast
        policies fan every key to every shard."""
        if groups is not None:
            raise RoutingError(
                f"{self.name}: the sharded service routes queries itself; "
                "per-call group pinning is not supported"
            )
        keys = [int(key) for key in keys]
        if not keys:
            raise ConfigError("search needs at least one key")
        with obs.span("svc.search", engine=self.engine_name, keys=len(keys)):
            before = [s.cycle for s in self.sessions]
            results: List[Optional[SearchResult]] = [None] * len(keys)
            beats = 0
            if self.policy.broadcast_lookups:
                partials: List[List[SearchResult]] = []
                for shard in range(self.num_shards):
                    partials.append(self.search_shard(shard, keys))
                    beats = max(
                        beats, self.sessions[shard].last_search_stats.beats
                    )
                for index, key in enumerate(keys):
                    results[index] = merge_results(
                        key, [per_shard[index] for per_shard in partials]
                    )
            else:
                routed: Dict[int, List[int]] = {}
                for index, key in enumerate(keys):
                    shard = self.policy.shard_for_key(key)
                    routed.setdefault(shard, []).append(index)
                for shard in sorted(routed):
                    picks = routed[shard]
                    answers = self.search_shard(
                        shard, [keys[index] for index in picks]
                    )
                    beats = max(
                        beats, self.sessions[shard].last_search_stats.beats
                    )
                    for index, answer in zip(picks, answers):
                        results[index] = answer
            cycles = max(
                s.cycle - b for s, b in zip(self.sessions, before)
            )
            stats = SearchStats(keys=len(keys), beats=beats, cycles=cycles)
        self.last_search_stats = stats
        if obs.enabled():
            publish_search_metrics(
                self, stats,
                hits=sum(1 for r in results if r is not None and r.hit),
            )
        return results  # type: ignore[return-value]

    def search_one(self, key: int, group: Optional[int] = None) -> SearchResult:
        if group is not None:
            raise RoutingError(
                f"{self.name}: per-call group pinning is not supported"
            )
        return self.search([key])[0]

    def contains(self, key: int) -> bool:
        return self.search_one(key).hit

    def delete(self, key: int) -> SearchResult:
        """Delete-by-content everywhere ``key`` may live."""
        with obs.span("svc.delete", engine=self.engine_name):
            partials = [
                self.delete_shard(shard, key)
                for shard in self.shards_for_key(key)
            ]
        return merge_results(int(key), partials)

    # ------------------------------------------------------------------
    def set_groups(self, num_groups: int) -> None:
        """Regroup every shard (flushes all content, like the unit)."""
        with obs.span("svc.set_groups", engine=self.engine_name,
                      groups=num_groups):
            for session in self.sessions:
                session.set_groups(num_groups)
        self._flush_addressing()

    def reset(self) -> None:
        """Clear every shard and restart the global address space.

        Reset is also the recovery hammer: a *poisoned* shard gets its
        backend reset too, and if that succeeds the fence is lifted --
        an empty shard is trivially consistent with an empty address
        map, so a reset sharded CAM is result-identical to a freshly
        constructed one (regression-tested against a fresh instance).
        A backend that still faults during its reset stays poisoned.
        """
        with obs.span("svc.reset", engine=self.engine_name):
            for shard, session in enumerate(self.sessions):
                try:
                    session.reset()
                except _CLIENT_ERRORS:
                    raise
                except Exception as exc:
                    if shard not in self._poisoned:
                        self._poison(shard, exc)
                    continue
                self._poisoned.pop(shard, None)
        self._flush_addressing()
        obs.set_gauge("svc_shards_healthy",
                      self.num_shards - len(self._poisoned),
                      help="shards currently serving")

    def _flush_addressing(self) -> None:
        self._global_addrs = [[] for _ in range(self.num_shards)]
        self._global_count = 0

    def idle(self, cycles: int = 1) -> None:
        for session in self.sessions:
            session.idle(cycles)

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self):
        """Capture every shard plus the global address maps.

        The children are the per-shard snapshots (taken through
        whatever backend serves the shard -- a replica set contributes
        its healthy preferred replica); the metadata carries the
        local-to-global address tables, so a restore reproduces
        cross-shard priority order exactly.
        """
        from repro.service.snapshot import CamSnapshot

        children = []
        for shard, session in enumerate(self.sessions):
            self._check_shard(shard)
            try:
                children.append(session.snapshot())
            except _CLIENT_ERRORS:
                raise
            except Exception as exc:
                raise self._poison(shard, exc) from exc
        return CamSnapshot(
            kind="sharded",
            meta={
                "shards": self.num_shards,
                "replicas": self.num_replicas,
                "policy": self.policy.name,
                "engine": self.engine,
                "global_count": self._global_count,
                "global_addrs": [list(t) for t in self._global_addrs],
            },
            children=children,
        )

    def restore(self, snapshot) -> None:
        """Restore every shard and the address maps from a snapshot.

        A successful restore also clears poison fences: each backend
        now verifiably holds the snapshotted content, which is exactly
        the consistency the fence protects.
        """
        from repro.errors import SnapshotError

        if snapshot.kind != "sharded":
            raise SnapshotError(
                f"{self.name}: cannot restore a {snapshot.kind!r} snapshot "
                "into a sharded CAM"
            )
        if snapshot.meta.get("shards") != self.num_shards:
            raise SnapshotError(
                f"{self.name}: snapshot has {snapshot.meta.get('shards')} "
                f"shards, this CAM has {self.num_shards}"
            )
        if snapshot.meta.get("policy") != self.policy.name:
            raise SnapshotError(
                f"{self.name}: snapshot used policy "
                f"{snapshot.meta.get('policy')!r}, this CAM routes with "
                f"{self.policy.name!r}"
            )
        if len(snapshot.children) != self.num_shards:
            raise SnapshotError(
                f"{self.name}: snapshot carries {len(snapshot.children)} "
                f"shard children, this CAM has {self.num_shards}"
            )
        tables = snapshot.meta.get("global_addrs")
        if not isinstance(tables, list) or len(tables) != self.num_shards:
            raise SnapshotError(
                f"{self.name}: snapshot is missing per-shard address tables"
            )
        for shard, (session, child) in enumerate(
            zip(self.sessions, snapshot.children)
        ):
            try:
                session.restore(child)
            except _CLIENT_ERRORS:
                raise
            except SnapshotError:
                raise
            except Exception as exc:
                raise self._poison(shard, exc) from exc
            self._poisoned.pop(shard, None)
        self._global_addrs = [[int(a) for a in table] for table in tables]
        self._global_count = int(snapshot.meta.get("global_count", 0))
        obs.set_gauge("svc_shards_healthy",
                      self.num_shards - len(self._poisoned),
                      help="shards currently serving")
