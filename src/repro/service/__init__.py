"""repro.service: sharded CAM service layer with async micro-batching.

Two layers over the single-unit sessions of :mod:`repro.core`:

- :class:`ShardedCam` -- one logical CAM partitioned across N backend
  sessions by a pluggable :class:`ShardPolicy`, merging per-shard
  answers through a global address space so priority encoding is
  preserved across shard boundaries (result-identical to one big
  :class:`~repro.core.ReferenceCam`);
- :class:`CamService` -- an asyncio front door that admits
  lookup/insert/delete requests through a bounded queue, micro-batches
  them per shard, and isolates backend failures to the shard that
  raised them.

Construct the sharded façade through :func:`repro.open_session` with
``shards > 1``; see ``docs/service.md`` for the full tour::

    import asyncio
    import repro
    from repro.core import unit_for_entries
    from repro.service import CamService

    cam = repro.open_session(unit_for_entries(512, block_size=64,
                                              data_width=32),
                             engine="batch", shards=4)

    async def main():
        async with CamService(cam, max_batch=32) as svc:
            await svc.insert([7, 42, 99])
            print((await svc.lookup(42)).result)

    asyncio.run(main())
"""

from __future__ import annotations

from repro.service.replica import ReplicaSet, ReplicaStats
from repro.service.scheduler import CamService, ServiceResponse, ServiceStats
from repro.service.sharded import ShardedCam, merge_results
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    CamSnapshot,
    SnapshotEntry,
)
from repro.service.sharding import (
    POLICIES,
    HashShardPolicy,
    RangeShardPolicy,
    RoundRobinShardPolicy,
    ShardPolicy,
    policy_for,
)
from repro.service.workload import (
    FaultyBackend,
    WorkloadReport,
    WorkloadSpec,
    demo_cam,
    drive_service,
    run_demo_workload,
)

__all__ = [
    "POLICIES",
    "SNAPSHOT_VERSION",
    "CamService",
    "CamSnapshot",
    "FaultyBackend",
    "ReplicaSet",
    "ReplicaStats",
    "SnapshotEntry",
    "HashShardPolicy",
    "RangeShardPolicy",
    "RoundRobinShardPolicy",
    "ServiceResponse",
    "ServiceStats",
    "ShardPolicy",
    "ShardedCam",
    "WorkloadReport",
    "WorkloadSpec",
    "demo_cam",
    "drive_service",
    "merge_results",
    "policy_for",
    "run_demo_workload",
]
