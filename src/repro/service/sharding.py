"""Key-space partitioning policies for the sharded CAM service.

The hardware papers this service mirrors (Preusser et al.'s DSP update
queues, Nguyen et al.'s RAM-based I-CAM) scale past a single unit by
splitting the key space across parallel CAM banks behind an arbiter.
A :class:`ShardPolicy` is that arbiter's routing function in software:
it decides which backend stores a word and which backend (if any one
in particular) can answer a lookup.

Three built-in policies:

- :class:`HashShardPolicy` -- mix the key with a 64-bit finaliser and
  take it modulo the shard count. Balanced under skew, and lookups are
  *pinned*: a key can only ever live on one shard, so a search touches
  exactly one backend.
- :class:`RangeShardPolicy` -- contiguous slices of the key space.
  Pinned like hashing, preserves locality (range scans touch few
  shards), but inherits the workload's key skew.
- :class:`RoundRobinShardPolicy` -- perfect insert balance, but a key
  may land anywhere, so lookups and deletes *broadcast* to every shard
  and the service merges the per-shard answers.

Pinned policies require exact-match (binary) CAM configurations: the
routing function must agree for the stored word and the search key,
which wildcard/range entries cannot guarantee. Broadcast policies
carry no such restriction.
"""

from __future__ import annotations

import abc
from typing import Optional, Union

from repro.dsp.primitives import mask_for
from repro.errors import ConfigError


class ShardPolicy(abc.ABC):
    """Routing function of the sharded service's front-end arbiter."""

    #: Short name used in configuration, metrics labels and manifests.
    name: str = "abstract"

    def __init__(self, num_shards: int, data_width: int) -> None:
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        if data_width < 1:
            raise ConfigError(f"data_width must be >= 1, got {data_width}")
        self.num_shards = num_shards
        self.data_width = data_width
        self._mask = mask_for(data_width)

    # ------------------------------------------------------------------
    @property
    def broadcast_lookups(self) -> bool:
        """True when lookups must fan out to every shard."""
        return False

    def mask_key(self, key: int) -> int:
        """The canonical routed form of a key (width-masked)."""
        return int(key) & self._mask

    @abc.abstractmethod
    def shard_for_insert(self, value: int, index: int) -> int:
        """Owning shard for stored word ``value`` (``index`` is the
        global insertion index, used by order-based policies)."""

    def shard_for_key(self, key: int) -> Optional[int]:
        """Shard that can answer a lookup for ``key``; ``None`` means
        every shard must be asked (broadcast)."""
        return self.shard_for_insert(self.mask_key(key), 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"{type(self).__name__}(num_shards={self.num_shards}, "
                f"data_width={self.data_width})")


def _splitmix64(value: int) -> int:
    """The splitmix64 finaliser: cheap, well-mixed 64-bit hash."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


class HashShardPolicy(ShardPolicy):
    """Mix-then-modulo hash partitioning (pinned lookups)."""

    name = "hash"

    def __init__(self, num_shards: int, data_width: int, seed: int = 0) -> None:
        super().__init__(num_shards, data_width)
        self.seed = seed

    def shard_for_insert(self, value: int, index: int) -> int:
        return _splitmix64(self.mask_key(value) ^ self.seed) % self.num_shards


class RangeShardPolicy(ShardPolicy):
    """Contiguous key-space slices (pinned lookups, preserves order)."""

    name = "range"

    def shard_for_insert(self, value: int, index: int) -> int:
        # floor(key * N / 2^width): equal-width slices without division
        # bias at the top of the key space.
        return (self.mask_key(value) * self.num_shards) >> self.data_width


class RoundRobinShardPolicy(ShardPolicy):
    """Insertion-order striping (broadcast lookups).

    Perfectly balanced storage; the price is that a key may live on any
    shard, so the service fans lookups and deletes out to every backend
    and merges the answers by global priority.
    """

    name = "round_robin"

    @property
    def broadcast_lookups(self) -> bool:
        return True

    def shard_for_insert(self, value: int, index: int) -> int:
        return index % self.num_shards

    def shard_for_key(self, key: int) -> Optional[int]:
        return None


#: Registry of the built-in policies by name.
POLICIES = {
    HashShardPolicy.name: HashShardPolicy,
    RangeShardPolicy.name: RangeShardPolicy,
    RoundRobinShardPolicy.name: RoundRobinShardPolicy,
}


def policy_for(
    policy: Union[str, ShardPolicy], num_shards: int, data_width: int
) -> ShardPolicy:
    """Resolve a policy spec (name or instance) for a service."""
    if isinstance(policy, ShardPolicy):
        if policy.num_shards != num_shards:
            raise ConfigError(
                f"policy routes {policy.num_shards} shards but the service "
                f"has {num_shards}"
            )
        return policy
    try:
        cls = POLICIES[policy]
    except KeyError:
        raise ConfigError(
            f"unknown shard policy {policy!r}; pick one of {sorted(POLICIES)}"
        ) from None
    return cls(num_shards, data_width)
