"""Async front door for the sharded CAM: admission + micro-batching.

:class:`CamService` turns a :class:`~repro.service.sharded.ShardedCam`
into a concurrent service with the shape of the hardware arbiter it
mirrors:

- **bounded admission queue** -- requests enter one bounded
  :class:`asyncio.Queue`; when it is full the service either applies
  backpressure (``overflow="block"``, the default: ``await`` until a
  slot frees) or fails fast (``overflow="reject"`` raises
  :class:`~repro.errors.ServiceOverloadError`);
- **per-shard micro-batching** -- a router fans each admitted request
  out to per-shard dispatch queues; one dispatcher per shard coalesces
  up to ``max_batch`` requests (waiting at most ``max_delay_s`` after
  the first) and executes them as a few vectorized calls on the shard
  backend, preserving per-shard FIFO order;
- **per-request timeout** -- a request that has not dispatched by its
  deadline resolves with ``status="timeout"`` instead of occupying the
  pipeline (sub-operations already executed on other shards are not
  rolled back; the response says which shards ran);
- **per-shard failure isolation** -- a backend that raises
  unexpectedly is poisoned by the :class:`ShardedCam`; requests
  touching it resolve as miss-with-error (``status="shard_failed"``)
  while the healthy shards keep serving.

Every stage is threaded through :mod:`repro.obs`: admission queue
depth, queue wait, batch occupancy, per-shard dispatch latency,
request latency and outcome counters (see ``docs/service.md``).

The dispatchers execute shard calls inline on the event loop -- the
backends are NumPy-vectorized and release the loop between batches,
which is the same trade a single-threaded arbiter makes in hardware.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.session import RawWord, UpdateStats
from repro.core.types import SearchResult
from repro.errors import (
    CapacityError,
    ConfigError,
    MaskError,
    RoutingError,
    ServiceDrainingError,
    ServiceError,
    ServiceOverloadError,
    ShardFailedError,
)
from repro.service.sharded import ShardedCam, merge_results

_CLIENT_ERRORS = (ConfigError, CapacityError, RoutingError, MaskError)

#: Sentinel that flows through the queues to shut the pipeline down.
_STOP = object()


def _miss(key: int) -> SearchResult:
    """The degraded answer for a key a poisoned shard owned."""
    return SearchResult.from_vector(int(key), 0)


@dataclass(frozen=True)
class ServiceResponse:
    """Outcome of one admitted request.

    ``status`` is one of ``"ok"``, ``"timeout"``, ``"shard_failed"``
    (a poisoned backend; lookups degrade to a miss) or ``"error"`` (a
    client mistake such as overflowing a shard's capacity). ``result``
    carries the merged :class:`SearchResult` for lookups/deletes,
    ``stats`` the aggregated :class:`UpdateStats` for inserts.
    """

    kind: str
    status: str
    result: Optional[SearchResult] = None
    stats: Optional[UpdateStats] = None
    shards: Tuple[int, ...] = ()
    latency_s: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class ServiceStats:
    """Plain counters mirrored outside the obs registry (always on)."""

    admitted: int = 0
    completed: int = 0
    ok: int = 0
    timeouts: int = 0
    shard_failures: int = 0
    client_errors: int = 0
    rejected: int = 0
    dispatches: int = 0
    dispatched_requests: int = 0
    max_queue_depth: int = 0
    repairs_completed: int = 0
    repairs_failed: int = 0

    @property
    def mean_batch_occupancy(self) -> float:
        if not self.dispatches:
            return 0.0
        return self.dispatched_requests / self.dispatches


class _Request:
    """One admitted operation and its fan-out bookkeeping."""

    __slots__ = ("kind", "key", "words", "parts", "future", "deadline",
                 "admitted_t", "pending", "partials", "stats", "shards",
                 "degraded", "finished")

    def __init__(self, kind: str, *, key: int = 0,
                 words: Optional[List[RawWord]] = None,
                 parts: Optional[Dict[int, Tuple[List[RawWord],
                                            List[int]]]] = None) -> None:
        self.kind = kind
        self.key = key
        self.words = words
        self.parts = parts
        self.future: "asyncio.Future[ServiceResponse]" = (
            asyncio.get_running_loop().create_future()
        )
        self.deadline = 0.0
        self.admitted_t = 0.0
        #: shards still expected to answer.
        self.pending: set = set()
        #: shard -> partial SearchResult (broadcast lookups/deletes).
        self.partials: Dict[int, SearchResult] = {}
        #: per-shard UpdateStats (inserts).
        self.stats: Dict[int, UpdateStats] = {}
        #: shards that actually executed work for this request.
        self.shards: List[int] = []
        #: detail of the first poisoned-shard degradation, if any.
        self.degraded: Optional[str] = None
        #: set by the first _finish; the future's own done() cannot be
        #: used (a caller cancelling its await marks the future done
        #: while the request is still in flight here).
        self.finished = False


class CamService:
    """Micro-batching async scheduler over a :class:`ShardedCam`.

    Use as an async context manager::

        cam = repro.open_session(config, engine="batch", shards=4)
        async with CamService(cam, max_batch=64, max_delay_s=0.002) as svc:
            response = await svc.lookup(42)

    ``max_batch`` and ``max_delay_s`` trade latency for batch-engine
    occupancy exactly like the hardware bus packs words per beat;
    ``queue_depth`` bounds admission; ``request_timeout_s`` is the
    per-request deadline measured from admission.
    """

    def __init__(
        self,
        cam: ShardedCam,
        *,
        max_batch: int = 64,
        max_delay_s: float = 0.002,
        queue_depth: int = 1024,
        request_timeout_s: float = 1.0,
        overflow: str = "block",
        auto_repair: bool = False,
        repair_backoff_s: float = 0.05,
        repair_backoff_max_s: float = 2.0,
    ) -> None:
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ConfigError(f"max_delay_s must be >= 0, got {max_delay_s}")
        if queue_depth < 1:
            raise ConfigError(f"queue_depth must be >= 1, got {queue_depth}")
        if request_timeout_s <= 0:
            raise ConfigError(
                f"request_timeout_s must be > 0, got {request_timeout_s}"
            )
        if overflow not in ("block", "reject"):
            raise ConfigError(
                f"overflow must be 'block' or 'reject', got {overflow!r}"
            )
        if repair_backoff_s <= 0 or repair_backoff_max_s < repair_backoff_s:
            raise ConfigError(
                "repair backoff must satisfy 0 < repair_backoff_s <= "
                f"repair_backoff_max_s, got {repair_backoff_s} / "
                f"{repair_backoff_max_s}"
            )
        self.cam = cam
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.queue_depth = queue_depth
        self.request_timeout_s = request_timeout_s
        self.overflow = overflow
        self.auto_repair = auto_repair
        self.repair_backoff_s = repair_backoff_s
        self.repair_backoff_max_s = repair_backoff_max_s
        self.stats = ServiceStats()
        self._queue: Optional[asyncio.Queue] = None
        self._shard_queues: List[asyncio.Queue] = []
        self._tasks: List[asyncio.Task] = []
        self._running = False
        self._draining = False
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        #: shard -> (next attempt time, current backoff delay).
        self._repair_schedule: Dict[int, Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._running:
            raise ServiceError("service already started")
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._shard_queues = [asyncio.Queue()
                              for _ in range(self.cam.num_shards)]
        self._tasks = [asyncio.ensure_future(self._router())]
        self._tasks += [
            asyncio.ensure_future(self._dispatcher(shard))
            for shard in range(self.cam.num_shards)
        ]
        self._running = True
        self._draining = False
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        if self.auto_repair:
            self._tasks.append(asyncio.ensure_future(self._repair_monitor()))

    async def stop(self) -> None:
        """Drain in-flight work, then shut the pipeline down."""
        if not self._running:
            return
        self._running = False
        await self._queue.put(_STOP)
        await asyncio.gather(*self._tasks)
        self._tasks = []

    async def drain(self) -> None:
        """Stop admitting new requests and wait for in-flight ones.

        After this returns every previously admitted request has
        resolved (ok, timeout, degraded or error) while the pipeline is
        still running -- the graceful-shutdown hook the network server
        uses: new work is refused with
        :class:`~repro.errors.ServiceDrainingError` (mapped onto a
        ``RETRY_LATER`` error frame by :mod:`repro.net.server`) the
        moment drain begins, and :meth:`stop` can then tear the
        pipeline down with nothing left in flight.
        """
        if not self._running:
            return
        self._draining = True
        await self._idle.wait()

    @property
    def draining(self) -> bool:
        """True between :meth:`drain` and the next :meth:`start`."""
        return self._draining

    def _track_admit(self) -> None:
        self._inflight += 1
        self._idle.clear()

    def _track_done(self) -> None:
        self._inflight -= 1
        if self._inflight <= 0:
            self._idle.set()

    async def __aenter__(self) -> "CamService":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        return self._running

    def depth(self) -> int:
        """Current admission queue depth."""
        return self._queue.qsize() if self._queue is not None else 0

    # ------------------------------------------------------------------
    # repair
    # ------------------------------------------------------------------
    async def repair_shard(self, shard: int) -> bool:
        """Rebuild a degraded shard's failed replicas and reinstate it.

        For each failed replica of the shard's
        :class:`~repro.service.replica.ReplicaSet` backend: snapshot a
        healthy donor, yield the loop once so writes admitted meanwhile
        land in the bounded catch-up log, then restore + replay +
        reinstate. If the whole backend comes back healthy, a poison
        fence on the shard is lifted (:meth:`ShardedCam.revive_shard`).
        Returns ``True`` when the shard ends the call fully healthy.
        Requires a replicated backend -- an unreplicated poisoned shard
        has no surviving copy to rebuild from.
        """
        if not 0 <= shard < self.cam.num_shards:
            raise ConfigError(
                f"shard {shard} out of range (0..{self.cam.num_shards - 1})"
            )
        backend = self.cam.sessions[shard]
        failed = getattr(backend, "failed_replicas", None)
        if failed is None:
            return False  # no replica machinery behind this shard
        with obs.span("svc.repair_shard", shard=shard,
                      failed=len(failed)):
            for index in failed:
                try:
                    backend.begin_rebuild(index)
                    # Let concurrently-admitted writes interleave; they
                    # are recorded in the catch-up log and replayed.
                    await asyncio.sleep(0)
                    backend.finish_rebuild(index)
                except ServiceError:
                    self.stats.repairs_failed += 1
                    obs.inc("svc_repairs_failed_total",
                            help="shard repair attempts that failed",
                            shard=shard)
                    continue
                self.stats.repairs_completed += 1
                obs.inc("svc_repairs_total",
                        help="replica rebuilds completed by the service",
                        shard=shard)
        if getattr(backend, "failed_replicas", ()):
            return False
        self.cam.revive_shard(shard)
        return True

    async def _repair_monitor(self) -> None:
        """Background auto-repair loop with per-shard exponential backoff."""
        loop = asyncio.get_running_loop()
        while self._running:
            await asyncio.sleep(self.max_delay_s or 0.001)
            now = loop.time()
            for shard in self.cam.degraded_shards:
                next_at, delay = self._repair_schedule.get(
                    shard, (0.0, self.repair_backoff_s)
                )
                if now < next_at:
                    continue
                if await self.repair_shard(shard):
                    self._repair_schedule.pop(shard, None)
                else:
                    # Wait the current delay, double it for next time.
                    self._repair_schedule[shard] = (
                        loop.time() + delay,
                        min(delay * 2, self.repair_backoff_max_s),
                    )

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    async def lookup(self, key: int) -> ServiceResponse:
        """Search one key; the merged result respects global priority."""
        return await self._admit(_Request("lookup", key=int(key)))

    async def insert(self, words: Sequence[RawWord]) -> ServiceResponse:
        """Store a batch of words (routed per shard at admission)."""
        words = list(words)
        if not words:
            raise ConfigError("insert needs at least one word")
        return await self._admit(_Request("insert", words=words))

    async def delete(self, key: int) -> ServiceResponse:
        """Delete-by-content wherever the key may live."""
        return await self._admit(_Request("delete", key=int(key)))

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    async def _admit(self, request: _Request) -> ServiceResponse:
        if not self._running:
            raise ServiceError("service is not running (use 'async with')")
        if self._draining:
            raise ServiceDrainingError(
                "service is draining for shutdown; retry later"
            )
        loop = asyncio.get_running_loop()
        request.admitted_t = loop.time()
        request.deadline = request.admitted_t + self.request_timeout_s
        if self.overflow == "reject":
            try:
                self._queue.put_nowait(request)
            except asyncio.QueueFull:
                self.stats.rejected += 1
                obs.inc("svc_rejections_total",
                        help="requests refused by the full admission queue")
                raise ServiceOverloadError(
                    f"admission queue full ({self.queue_depth} requests)"
                ) from None
        else:
            await self._queue.put(request)
        self._track_admit()
        self.stats.admitted += 1
        depth = self._queue.qsize()
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, depth)
        obs.set_gauge("svc_queue_depth", depth,
                      help="admission queue occupancy")
        return await request.future

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(self, request: _Request) -> None:
        """Fan a request out to the shard queues it must touch."""
        if request.kind == "insert":
            # Global addresses bind at routing time, in admission order
            # -- the same numbering the reference model uses -- so the
            # merged priority order never depends on which shard
            # dispatcher happens to flush first.
            try:
                request.parts = self.cam.partition_update(request.words)
            except _CLIENT_ERRORS as exc:
                self._finish(request, "error", error=str(exc))
                return
            request.pending = set(request.parts)
        else:
            request.pending = set(self.cam.shards_for_key(request.key))
        for shard in sorted(request.pending):
            self._shard_queues[shard].put_nowait(request)

    async def _router(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _STOP:
                for queue in self._shard_queues:
                    queue.put_nowait(_STOP)
                return
            obs.set_gauge("svc_queue_depth", self._queue.qsize())
            loop = asyncio.get_running_loop()
            obs.observe("svc_queue_wait_seconds",
                        loop.time() - item.admitted_t,
                        help="admission-to-routing wait",
                        buckets=obs.SECONDS_BUCKETS)
            if loop.time() >= item.deadline:
                self._finish(item, "timeout")
                continue
            self._route(item)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatcher(self, shard: int) -> None:
        queue = self._shard_queues[shard]
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            first = await queue.get()
            if first is _STOP:
                return
            batch = [first]
            flush_at = loop.time() + self.max_delay_s
            while len(batch) < self.max_batch and not stopping:
                remaining = flush_at - loop.time()
                if remaining <= 0:
                    try:
                        item = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                else:
                    try:
                        item = await asyncio.wait_for(queue.get(), remaining)
                    except asyncio.TimeoutError:
                        break
                if item is _STOP:
                    stopping = True
                else:
                    batch.append(item)
            self._flush(shard, batch)
        # Drain anything routed after the flush that raced with STOP.
        leftovers = []
        while True:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _STOP:
                leftovers.append(item)
        if leftovers:
            self._flush(shard, leftovers)

    def _flush(self, shard: int, batch: List[_Request]) -> None:
        """Execute one micro-batch on a shard backend, in FIFO order,
        coalescing runs of lookups into single vectorized searches."""
        live: List[_Request] = []
        loop = asyncio.get_running_loop()
        now = loop.time()
        for request in batch:
            if request.future.done():
                self._shard_done(request, shard)
                continue
            if now >= request.deadline:
                obs.inc("svc_timeouts_total",
                        help="requests expired before dispatch",
                        kind=request.kind)
                self._finish(request, "timeout")
                continue
            live.append(request)
        if not live:
            return
        self.stats.dispatches += 1
        self.stats.dispatched_requests += len(live)
        obs.observe("svc_batch_occupancy", len(live),
                    help="requests coalesced per shard micro-batch",
                    buckets=obs.BATCH_BUCKETS, shard=shard)
        started = time.perf_counter()
        with obs.span("svc.flush", shard=shard, occupancy=len(live)):
            index = 0
            while index < len(live):
                request = live[index]
                if request.kind == "lookup":
                    run = [request]
                    while (index + len(run) < len(live)
                           and live[index + len(run)].kind == "lookup"):
                        run.append(live[index + len(run)])
                    self._execute_lookups(shard, run)
                    index += len(run)
                else:
                    self._execute_one(shard, request)
                    index += 1
        obs.observe("svc_shard_latency_seconds",
                    time.perf_counter() - started,
                    help="wall time per shard micro-batch flush",
                    buckets=obs.SECONDS_BUCKETS, shard=shard)

    def _execute_lookups(self, shard: int, run: List[_Request]) -> None:
        keys = [request.key for request in run]
        try:
            answers = self.cam.search_shard(shard, keys)
        except ShardFailedError as exc:
            for request in run:
                self._shard_answer(request, shard, _miss(request.key),
                                   failed=str(exc))
            return
        except _CLIENT_ERRORS as exc:
            for request in run:
                self._finish(request, "error", error=str(exc))
            return
        for request, answer in zip(run, answers):
            self._shard_answer(request, shard, answer)

    def _execute_one(self, shard: int, request: _Request) -> None:
        try:
            if request.kind == "insert":
                shard_words, shard_addresses = request.parts[shard]
                stats = self.cam.update_shard(shard, shard_words,
                                              addresses=shard_addresses)
                request.stats[shard] = stats
                request.shards.append(shard)
                self._shard_done(request, shard)
            else:  # delete
                answer = self.cam.delete_shard(shard, request.key)
                self._shard_answer(request, shard, answer)
        except ShardFailedError as exc:
            request.degraded = str(exc)
            request.pending.discard(shard)
            self._maybe_finish(request)
        except _CLIENT_ERRORS as exc:
            self._finish(request, "error", error=str(exc))

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _shard_answer(self, request: _Request, shard: int,
                      answer: SearchResult,
                      failed: Optional[str] = None) -> None:
        if failed is None:
            request.partials[shard] = answer
            request.shards.append(shard)
        else:
            request.degraded = failed
        request.pending.discard(shard)
        self._maybe_finish(request)

    def _shard_done(self, request: _Request, shard: int) -> None:
        request.pending.discard(shard)
        self._maybe_finish(request)

    def _maybe_finish(self, request: _Request) -> None:
        if request.finished or request.pending:
            return
        status = "shard_failed" if request.degraded else "ok"
        if request.kind == "insert":
            per_shard = list(request.stats.values())
            stats = UpdateStats(
                words=sum(s.words for s in per_shard),
                beats=max((s.beats for s in per_shard), default=0),
                cycles=max((s.cycles for s in per_shard), default=0),
            )
            self._finish(request, status, stats=stats,
                         error=request.degraded)
        else:
            partials = list(request.partials.values())
            merged = (merge_results(request.key, partials)
                      if partials else _miss(request.key))
            self._finish(request, status, result=merged,
                         error=request.degraded)

    def _finish(self, request: _Request, status: str,
                result: Optional[SearchResult] = None,
                stats: Optional[UpdateStats] = None,
                error: Optional[str] = None) -> None:
        if request.finished:
            return
        request.finished = True
        loop = asyncio.get_running_loop()
        latency = loop.time() - request.admitted_t
        self.stats.completed += 1
        if status == "ok":
            self.stats.ok += 1
        elif status == "timeout":
            self.stats.timeouts += 1
        elif status == "shard_failed":
            self.stats.shard_failures += 1
        else:
            self.stats.client_errors += 1
        obs.inc("svc_requests_total", help="service requests by outcome",
                kind=request.kind, status=status)
        obs.observe("svc_request_latency_seconds", latency,
                    help="admission-to-completion latency",
                    buckets=obs.SECONDS_BUCKETS, kind=request.kind)
        if (result is None and request.kind != "insert"
                and status in ("timeout", "shard_failed")):
            result = _miss(request.key)
        if not request.future.done():  # caller may have been cancelled
            request.future.set_result(ServiceResponse(
                kind=request.kind,
                status=status,
                result=result,
                stats=stats,
                shards=tuple(sorted(request.shards)),
                latency_s=latency,
                error=error,
            ))
        self._track_done()
