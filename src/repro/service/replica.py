"""Replicated shard backends: fan-out writes, failover reads, repair.

A :class:`ReplicaSet` puts ``R`` identically-configured sessions behind
the single-session protocol, so it slots into
:class:`~repro.service.sharded.ShardedCam` (and anything else written
against :class:`~repro.core.types.CamBackend`) unchanged:

- **writes** (``update`` / ``delete`` / ``set_groups``) fan out to
  every healthy replica, keeping their content bit-identical;
- **reads** (``search`` / ``search_one`` / ``contains``) go to the
  *preferred* replica; if it faults, the set marks it failed, fails
  over to the next healthy peer and retries -- the caller never sees
  the fault while at least one peer is healthy;
- **divergence beats**: every ``beat_every`` write operations the set
  compares the replicas' snapshot content hashes
  (:meth:`~repro.service.snapshot.CamSnapshot.content_hash`); a
  replica disagreeing with the majority (ties break toward the
  preferred replica) is marked failed and reported through
  :mod:`repro.obs` -- this is what catches a *silently* corrupt
  backend that still answers without raising;
- **live recovery**: a failed replica is rebuilt from a healthy peer's
  snapshot plus a bounded *catch-up log* of the writes admitted while
  the rebuild was in flight (:meth:`begin_rebuild` /
  :meth:`finish_rebuild`), then reinstated. The async service layer
  drives this through :meth:`CamService.repair_shard
  <repro.service.scheduler.CamService.repair_shard>`.

Only :class:`~repro.errors.ReplicaExhaustedError` escapes to the
sharded layer (when *no* replica can serve); client errors
(capacity/config/routing/mask) propagate unchanged -- they leave every
replica in the same deterministic state, so they are not faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import (
    CapacityError,
    ConfigError,
    MaskError,
    ReplicaExhaustedError,
    RoutingError,
    ServiceError,
)
from repro.fabric.resources import total as total_resources

#: Caller mistakes: deterministic, identical on every replica, never a
#: replica fault. (Mirrors ``repro.service.sharded._CLIENT_ERRORS``.)
_CLIENT_ERRORS = (ConfigError, CapacityError, RoutingError, MaskError)


@dataclass
class ReplicaStats:
    """Counters for one replica set's failure handling."""

    failures: int = 0
    failovers: int = 0
    divergences: int = 0
    repairs: int = 0
    repairs_failed: int = 0


class ReplicaSet:
    """``R`` replica sessions behind the single-session surface.

    Conforms to :class:`repro.core.CamBackend`, so a replica set can
    stand wherever a single engine session does (notably as one shard
    of a :class:`~repro.service.ShardedCam`).
    """

    def __init__(
        self,
        replicas: Sequence,
        *,
        name: str = "replica_set",
        beat_every: int = 256,
        catchup_limit: int = 1024,
    ) -> None:
        replicas = list(replicas)
        if not replicas:
            raise ConfigError("a replica set needs at least one replica")
        if beat_every < 0:
            raise ConfigError(
                f"beat_every must be >= 0 (0 disables beats), got {beat_every}"
            )
        if catchup_limit < 0:
            raise ConfigError(
                f"catchup_limit must be >= 0, got {catchup_limit}"
            )
        capacity = getattr(replicas[0], "capacity", None)
        for index, replica in enumerate(replicas[1:], start=1):
            if getattr(replica, "capacity", None) != capacity:
                raise ConfigError(
                    f"{name}: replica {index} capacity "
                    f"{getattr(replica, 'capacity', None)} != replica 0 "
                    f"capacity {capacity}; replicas must be identically "
                    "configured"
                )
        self.replicas: Tuple = tuple(replicas)
        self.name = name
        self.beat_every = beat_every
        self.catchup_limit = catchup_limit
        self.stats = ReplicaStats()
        self._preferred = 0
        self._failed: Dict[int, str] = {}
        #: replica -> catch-up log of writes admitted during its
        #: rebuild; ``None`` marks an overflowed (aborted) log.
        self._rebuilding: Dict[int, Optional[List[tuple]]] = {}
        self._rebuild_src: Dict[int, object] = {}
        self._ops_since_beat = 0
        self.last_update_stats = None
        self.last_search_stats = None

    # ------------------------------------------------------------------
    # health bookkeeping
    # ------------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def failed_replicas(self) -> Tuple[int, ...]:
        """Replicas currently fenced off (failed or mid-rebuild)."""
        return tuple(sorted(set(self._failed) | set(self._rebuilding)))

    @property
    def preferred(self) -> int:
        return self._preferred

    def set_preferred(self, index: int) -> None:
        if not 0 <= index < self.num_replicas:
            raise ConfigError(
                f"{self.name}: replica {index} out of range "
                f"(0..{self.num_replicas - 1})"
            )
        self._preferred = index

    def replica_healthy(self, index: int) -> bool:
        return index not in self._failed and index not in self._rebuilding

    def _healthy_indexes(self) -> List[int]:
        return [i for i in range(self.num_replicas) if self.replica_healthy(i)]

    def _serving_index(self) -> int:
        if self.replica_healthy(self._preferred):
            return self._preferred
        for index in range(self.num_replicas):
            if self.replica_healthy(index):
                return index
        raise ReplicaExhaustedError(
            f"{self.name}: no healthy replica "
            f"(failed: {dict(self._failed)})"
        )

    def _mark_failed(self, index: int, reason: str) -> None:
        if index in self._failed:
            return
        self._failed[index] = reason
        self.stats.failures += 1
        obs.inc("svc_replica_failures_total",
                help="replica sessions fenced off after faults",
                set=self.name)
        obs.set_gauge("svc_replicas_healthy", len(self._healthy_indexes()),
                      help="healthy replicas per set", set=self.name)

    # ------------------------------------------------------------------
    # reads: preferred replica, failover on fault
    # ------------------------------------------------------------------
    def _read(self, op, fn):
        while True:
            index = self._serving_index()
            session = self.replicas[index]
            try:
                result = fn(session)
            except _CLIENT_ERRORS:
                raise
            except Exception as exc:  # replica fault: fail over
                self._mark_failed(index, f"{type(exc).__name__}: {exc}")
                self.stats.failovers += 1
                obs.inc("svc_replica_failovers_total",
                        help="reads re-served by a peer after a fault",
                        set=self.name, op=op)
                continue
            if op == "search":
                self.last_search_stats = getattr(
                    session, "last_search_stats", None
                )
            return result

    def search(self, keys, groups=None):
        return self._read("search", lambda s: s.search(keys, groups=groups))

    def search_one(self, key, group=None):
        groups = None if group is None else [group]
        return self.search([key], groups=groups)[0]

    def contains(self, key) -> bool:
        return self.search_one(key).hit

    def stored_entries(self, group: int = 0):
        return self._read("stored_entries",
                          lambda s: s.stored_entries(group))

    def snapshot(self):
        """A healthy replica's snapshot (writes keep them identical)."""
        return self._read("snapshot", lambda s: s.snapshot())

    # ------------------------------------------------------------------
    # writes: fan out to every healthy replica
    # ------------------------------------------------------------------
    def _write(self, op, fn, log_entry):
        healthy = self._healthy_indexes()
        if not healthy:
            raise ReplicaExhaustedError(
                f"{self.name}: no healthy replica for {op} "
                f"(failed: {dict(self._failed)})"
            )
        first_result = None
        have_result = False
        client_error: Optional[BaseException] = None
        landed = 0
        for index in healthy:
            session = self.replicas[index]
            try:
                result = fn(session)
            except _CLIENT_ERRORS as exc:
                # Deterministic partial landing: every replica takes the
                # same beats before raising, so content stays identical.
                client_error = exc
                landed += 1
                continue
            except Exception as exc:
                self._mark_failed(index, f"{type(exc).__name__}: {exc}")
                continue
            landed += 1
            if not have_result:
                first_result = result
                have_result = True
        if landed == 0:
            raise ReplicaExhaustedError(
                f"{self.name}: every replica faulted during {op} "
                f"(failed: {dict(self._failed)})"
            )
        self._log_write(log_entry)
        self._maybe_beat()
        if client_error is not None:
            raise client_error
        return first_result

    def update(self, words, group=None):
        words = list(words)
        stats = self._write(
            "update",
            lambda s: s.update(words, group=group),
            ("update", words, group),
        )
        self.last_update_stats = stats
        return stats

    def delete(self, key):
        return self._write("delete", lambda s: s.delete(key),
                           ("delete", key))

    def set_groups(self, num_groups: int) -> None:
        self._write("set_groups", lambda s: s.set_groups(num_groups),
                    ("set_groups", num_groups))

    def idle(self, cycles: int = 1) -> None:
        for index in self._healthy_indexes():
            self.replicas[index].idle(cycles)

    def reset(self) -> None:
        """Clear content everywhere -- including failed replicas.

        An empty CAM is trivially consistent, so a failed replica whose
        ``reset`` succeeds is healed on the spot; in-flight rebuilds
        are abandoned (there is nothing left to catch up to).
        """
        errors: Dict[int, BaseException] = {}
        for index, session in enumerate(self.replicas):
            try:
                session.reset()
            except Exception as exc:
                errors[index] = exc
                continue
            self._failed.pop(index, None)
        self._rebuilding.clear()
        self._rebuild_src.clear()
        self._ops_since_beat = 0
        for index, exc in errors.items():
            self._mark_failed(index, f"{type(exc).__name__}: {exc}")
        if not self._healthy_indexes():
            raise ReplicaExhaustedError(
                f"{self.name}: every replica faulted during reset"
            )
        obs.set_gauge("svc_replicas_healthy", len(self._healthy_indexes()),
                      help="healthy replicas per set", set=self.name)

    def restore(self, snapshot) -> None:
        """Restore every replica from one snapshot (heals on success)."""
        errors: Dict[int, BaseException] = {}
        restored = 0
        for index, session in enumerate(self.replicas):
            try:
                session.restore(snapshot)
            except Exception as exc:
                errors[index] = exc
                continue
            self._failed.pop(index, None)
            restored += 1
        self._rebuilding.clear()
        self._rebuild_src.clear()
        self._ops_since_beat = 0
        for index, exc in errors.items():
            self._mark_failed(index, f"{type(exc).__name__}: {exc}")
        if restored == 0:
            raise ReplicaExhaustedError(
                f"{self.name}: every replica faulted during restore"
            )

    # ------------------------------------------------------------------
    # divergence beats
    # ------------------------------------------------------------------
    def _maybe_beat(self) -> None:
        if self.beat_every <= 0:
            return
        self._ops_since_beat += 1
        if self._ops_since_beat < self.beat_every:
            return
        self._ops_since_beat = 0
        self.check_divergence()

    def check_divergence(self) -> List[int]:
        """Hash-compare healthy replicas; fence the disagreeing minority.

        Returns the replica indexes fenced this beat. The majority
        content hash wins; a tie breaks toward the group containing the
        preferred replica, then toward the lowest replica index.
        """
        healthy = self._healthy_indexes()
        if len(healthy) < 2:
            return []
        by_hash: Dict[str, List[int]] = {}
        for index in healthy:
            try:
                digest = self.replicas[index].snapshot().content_hash()
            except Exception as exc:
                self._mark_failed(index, f"{type(exc).__name__}: {exc}")
                continue
            by_hash.setdefault(digest, []).append(index)
        if len(by_hash) <= 1:
            return []
        winner = max(
            by_hash.values(),
            key=lambda members: (len(members),
                                 self._preferred in members,
                                 -members[0]),
        )
        fenced = []
        for members in by_hash.values():
            if members is winner:
                continue
            for index in members:
                self._mark_failed(index, "content divergence (hash beat)")
                self.stats.divergences += 1
                obs.inc("svc_replica_divergence_total",
                        help="replicas fenced by content-hash beats",
                        set=self.name)
                fenced.append(index)
        return sorted(fenced)

    # ------------------------------------------------------------------
    # live recovery
    # ------------------------------------------------------------------
    def _log_write(self, entry: tuple) -> None:
        for index, log in self._rebuilding.items():
            if log is None:
                continue
            if len(log) >= self.catchup_limit:
                self._rebuilding[index] = None  # overflow: abort
                continue
            log.append(entry)

    def begin_rebuild(self, index: int) -> None:
        """Start rebuilding a failed replica from a healthy donor.

        Captures the donor snapshot now and opens the catch-up log;
        writes admitted between ``begin`` and ``finish`` are recorded
        and replayed on top of the restored snapshot.
        """
        if not 0 <= index < self.num_replicas:
            raise ConfigError(
                f"{self.name}: replica {index} out of range "
                f"(0..{self.num_replicas - 1})"
            )
        if self.replica_healthy(index):
            raise ServiceError(
                f"{self.name}: replica {index} is healthy; nothing to rebuild"
            )
        if index in self._rebuilding:
            raise ServiceError(
                f"{self.name}: replica {index} rebuild already in progress"
            )
        self._rebuild_src[index] = self.snapshot()  # raises if no donor
        self._rebuilding[index] = []

    def finish_rebuild(self, index: int) -> int:
        """Restore the donor snapshot, replay the catch-up log, reinstate.

        Returns the number of replayed writes. Raises
        :class:`~repro.errors.ServiceError` if the log overflowed
        (``catchup_limit``) -- the rebuild must be restarted -- and
        re-fences the replica if the restore/replay itself faults.
        """
        if index not in self._rebuild_src:
            raise ServiceError(
                f"{self.name}: no rebuild in progress for replica {index}"
            )
        log = self._rebuilding.pop(index)
        src = self._rebuild_src.pop(index)
        if log is None:
            self.stats.repairs_failed += 1
            raise ServiceError(
                f"{self.name}: replica {index} catch-up log overflowed "
                f"({self.catchup_limit} writes); restart the rebuild"
            )
        session = self.replicas[index]
        try:
            session.restore(src)
            for entry in log:
                op, args = entry[0], entry[1:]
                try:
                    if op == "update":
                        session.update(args[0], group=args[1])
                    elif op == "delete":
                        session.delete(args[0])
                    elif op == "set_groups":
                        session.set_groups(args[0])
                except _CLIENT_ERRORS:
                    # The live replicas landed the same deterministic
                    # partial result when this write was admitted.
                    pass
        except Exception as exc:
            self.stats.repairs_failed += 1
            self._failed[index] = (
                f"rebuild failed: {type(exc).__name__}: {exc}"
            )
            raise ServiceError(
                f"{self.name}: replica {index} rebuild failed: {exc}"
            ) from exc
        self._failed.pop(index, None)
        self.stats.repairs += 1
        obs.inc("svc_replica_repairs_total",
                help="replicas rebuilt and reinstated", set=self.name)
        obs.set_gauge("svc_replicas_healthy", len(self._healthy_indexes()),
                      help="healthy replicas per set", set=self.name)
        return len(log)

    def rebuild(self, index: int) -> int:
        """Synchronous begin + finish (no writes can interleave)."""
        self.begin_rebuild(index)
        return self.finish_rebuild(index)

    def repair(self) -> List[int]:
        """Rebuild every failed replica; returns the indexes reinstated.

        A replica whose rebuild is already in progress (``begin_rebuild``
        was called earlier) has its catch-up log drained and is
        reinstated rather than restarted.
        """
        healed = []
        for index in list(self.failed_replicas):
            try:
                if index in self._rebuilding:
                    self.finish_rebuild(index)
                else:
                    self.rebuild(index)
            except ServiceError:
                continue
            healed.append(index)
        return healed

    # ------------------------------------------------------------------
    # session-protocol properties (reported from a healthy replica)
    # ------------------------------------------------------------------
    def _reporter(self):
        try:
            return self.replicas[self._serving_index()]
        except ReplicaExhaustedError:
            return self.replicas[self._preferred]

    @property
    def engine_name(self) -> str:
        base = getattr(self.replicas[0], "engine_name", "?")
        return f"replicated[{self.num_replicas}x{base}]"

    @property
    def cycle(self) -> int:
        """Slowest replica's counter (replicas run in parallel)."""
        return max(replica.cycle for replica in self.replicas)

    @property
    def capacity(self) -> int:
        """One replica's capacity: copies add fault tolerance, not room."""
        return self._reporter().capacity

    @property
    def occupancy(self) -> int:
        return self._reporter().occupancy

    @property
    def num_groups(self) -> int:
        return self._reporter().num_groups

    @property
    def search_latency(self) -> int:
        return self._reporter().search_latency

    @property
    def update_latency(self) -> int:
        return self._reporter().update_latency

    @property
    def words_per_beat(self) -> int:
        return self._reporter().words_per_beat

    @property
    def trace(self):
        return None

    def resources(self):
        """True hardware cost: R copies of the unit."""
        return total_resources(r.resources() for r in self.replicas)


__all__ = ["ReplicaSet", "ReplicaStats"]
