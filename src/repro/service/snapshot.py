"""Versioned, deterministic snapshots of CAM content.

A snapshot captures *exactly* the state that determines match
behaviour: the stored entries of every logical group **in insertion
order, holes included**. The hardware's content address equals the
insertion index (sequential fill within a block, round-robin across a
group's blocks), and delete-by-content leaves dead slots that are only
reclaimed by reset -- so a faithful snapshot must preserve hole
positions, not just the live entries. Restoring a snapshot therefore
reproduces bit-identical match vectors, priority encoding *and* the
address-reuse behaviour of the original backend.

One recursive container, :class:`CamSnapshot`, covers every backend:

- ``kind="unit"``     -- one :class:`~repro.core.CamSession` /
  :class:`~repro.core.batch.BatchSession` (one entry list per
  independent group; a single shared list in replicated mode);
- ``kind="reference"``-- a :class:`~repro.core.ReferenceCam`;
- ``kind="wide"``     -- a :class:`~repro.core.wide.WideCamSession`
  (children are the per-lane unit snapshots);
- ``kind="sharded"``  -- a :class:`~repro.service.sharded.ShardedCam`
  (children are the per-shard snapshots, plus the global address
  tables that preserve cross-shard priority order).

Entries are canonicalised to ``(value & care, care, live)`` triples at
the DSP comparison width: bits outside the care mask never influence
matching, and dead slots are stored as ``(0, 0, False)`` -- so two
backends holding equivalent content always serialise to the *same*
bytes, which is what makes :meth:`CamSnapshot.content_hash` usable for
replica divergence detection (:mod:`repro.service.replica`).

Two interchangeable wire formats:

- **JSON** (:meth:`to_json` / :meth:`from_json`) -- canonical (sorted
  keys, fixed separators), human-diffable, pinned by the golden
  fixture under ``tests/service/goldens/``;
- **binary** (:meth:`to_binary` / :meth:`from_binary`) -- a compact
  little-endian framing (17 bytes per entry) for large CAMs.

:meth:`save` / :meth:`load` pick the format from the file extension
(``.json`` vs anything else).
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.dsp.primitives import DSP_WIDTH, mask_for
from repro.errors import SnapshotError

#: Format version written into every snapshot; bumped on layout changes.
SNAPSHOT_VERSION = 1

#: Magic prefix of the binary framing.
SNAPSHOT_MAGIC = b"DSPCAMSNAP"

#: Full comparison width of one DSP cell.
_FULL = mask_for(DSP_WIDTH)

#: Recognised node kinds.
KINDS = ("unit", "reference", "wide", "sharded")

_ENTRY = struct.Struct("<QQB")


@dataclass(frozen=True)
class SnapshotEntry:
    """One CAM slot: canonical ``(value, care, live)`` triple.

    ``care`` holds the compared bit positions at the 48-bit DSP width
    (the complement of the entry's ignore mask); ``value`` is masked to
    ``care``. Dead slots (delete-by-content holes) are all-zero with
    ``live=False`` -- their original content can never influence a
    match, so canonicalising it keeps snapshots deterministic.
    """

    value: int
    care: int
    live: bool

    @classmethod
    def dead(cls) -> "SnapshotEntry":
        return cls(value=0, care=0, live=False)

    @classmethod
    def from_value_care(cls, value: int, care: int) -> "SnapshotEntry":
        care &= _FULL
        return cls(value=value & care, care=care, live=True)

    @classmethod
    def from_entry(cls, entry) -> "SnapshotEntry":
        """Canonicalise a :class:`~repro.core.mask.CamEntry` (or None)."""
        if entry is None:
            return cls.dead()
        return cls.from_value_care(entry.value, ~entry.mask & _FULL)

    def to_entry(self, data_width: int):
        """Rebuild a :class:`~repro.core.mask.CamEntry` (None if dead)."""
        if not self.live:
            return None
        from repro.core.mask import CamEntry

        return CamEntry(value=self.value, mask=_FULL ^ self.care,
                        width=data_width)


@dataclass
class CamSnapshot:
    """Recursive snapshot node (see the module docstring for kinds)."""

    kind: str
    meta: Dict[str, Any] = field(default_factory=dict)
    groups: List[List[SnapshotEntry]] = field(default_factory=list)
    children: List["CamSnapshot"] = field(default_factory=list)
    version: int = SNAPSHOT_VERSION

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise SnapshotError(
                f"unknown snapshot kind {self.kind!r}; expected one of {KINDS}"
            )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def total_entries(self) -> int:
        """Slots captured in this node and all children (holes included)."""
        own = sum(len(group) for group in self.groups)
        return own + sum(child.total_entries for child in self.children)

    @property
    def live_entries(self) -> int:
        own = sum(1 for group in self.groups for e in group if e.live)
        return own + sum(child.live_entries for child in self.children)

    def describe(self) -> str:
        """One-line human summary (used by the CLI)."""
        parts = [f"kind={self.kind}", f"v{self.version}"]
        if self.kind == "sharded":
            parts.append(f"shards={self.meta.get('shards')}")
            parts.append(f"policy={self.meta.get('policy')}")
        if self.kind == "wide":
            parts.append(f"lanes={len(self.children)}")
            parts.append(f"key_width={self.meta.get('key_width')}")
        if "engine" in self.meta:
            parts.append(f"engine={self.meta['engine']}")
        parts.append(f"entries={self.live_entries}/{self.total_entries}")
        return " ".join(parts)

    # ------------------------------------------------------------------
    # content hashing (replica divergence beats)
    # ------------------------------------------------------------------
    def content_hash(self) -> str:
        """SHA-256 over the match-relevant content, canonically framed.

        Covers kind, group structure and every slot triple of the node
        and its children -- but *not* engine names, session names or
        other provenance metadata, so two replicas holding identical
        content always agree regardless of how they were built.
        """
        digest = hashlib.sha256()
        self._hash_into(digest)
        return digest.hexdigest()

    def _hash_into(self, digest) -> None:
        digest.update(self.kind.encode("ascii"))
        digest.update(struct.pack("<II", len(self.groups),
                                  len(self.children)))
        for group in self.groups:
            digest.update(struct.pack("<I", len(group)))
            for entry in group:
                digest.update(_ENTRY.pack(entry.value, entry.care,
                                          1 if entry.live else 0))
        for child in self.children:
            child._hash_into(digest)

    # ------------------------------------------------------------------
    # JSON codec (canonical)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.cam_snapshot",
            "version": self.version,
            "kind": self.kind,
            "meta": self.meta,
            "groups": [
                [[e.value, e.care, 1 if e.live else 0] for e in group]
                for group in self.groups
            ],
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CamSnapshot":
        if not isinstance(data, dict):
            raise SnapshotError(f"snapshot must be an object, got "
                                f"{type(data).__name__}")
        if data.get("schema") != "repro.cam_snapshot":
            raise SnapshotError(
                f"not a CAM snapshot (schema={data.get('schema')!r})"
            )
        version = data.get("version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {version!r} not supported "
                f"(this build reads version {SNAPSHOT_VERSION})"
            )
        try:
            groups = [
                [SnapshotEntry(value=int(v), care=int(c), live=bool(l))
                 for v, c, l in group]
                for group in data["groups"]
            ]
            children = [cls.from_dict(child) for child in data["children"]]
            return cls(kind=data["kind"], meta=dict(data["meta"]),
                       groups=groups, children=children, version=version)
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed snapshot: {exc}") from exc

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, fixed separators, one newline."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CamSnapshot":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"snapshot is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # binary codec (compact)
    # ------------------------------------------------------------------
    def to_binary(self) -> bytes:
        out = [SNAPSHOT_MAGIC, struct.pack("<H", self.version)]
        self._encode_node(out)
        return b"".join(out)

    def _encode_node(self, out: List[bytes]) -> None:
        header = json.dumps({"kind": self.kind, "meta": self.meta},
                            sort_keys=True,
                            separators=(",", ":")).encode("utf-8")
        out.append(struct.pack("<I", len(header)))
        out.append(header)
        out.append(struct.pack("<I", len(self.groups)))
        for group in self.groups:
            out.append(struct.pack("<I", len(group)))
            for entry in group:
                out.append(_ENTRY.pack(entry.value, entry.care,
                                       1 if entry.live else 0))
        out.append(struct.pack("<I", len(self.children)))
        for child in self.children:
            child._encode_node(out)

    @classmethod
    def from_binary(cls, blob: bytes) -> "CamSnapshot":
        if not blob.startswith(SNAPSHOT_MAGIC):
            raise SnapshotError("not a binary CAM snapshot (bad magic)")
        offset = len(SNAPSHOT_MAGIC)
        try:
            (version,) = struct.unpack_from("<H", blob, offset)
            offset += 2
            if version != SNAPSHOT_VERSION:
                raise SnapshotError(
                    f"snapshot version {version} not supported "
                    f"(this build reads version {SNAPSHOT_VERSION})"
                )
            snapshot, offset = cls._decode_node(blob, offset, version)
        except struct.error as exc:
            raise SnapshotError(f"truncated binary snapshot: {exc}") from exc
        if offset != len(blob):
            raise SnapshotError(
                f"trailing bytes after snapshot ({len(blob) - offset})"
            )
        return snapshot

    @staticmethod
    def _need(blob: bytes, offset: int, count: int, what: str) -> None:
        """Bounds guard: a hostile or truncated length prefix must fail
        fast with the typed error, not loop for billions of iterations
        or surface a bare ``struct.error``."""
        if count < 0 or len(blob) - offset < count:
            raise SnapshotError(
                f"truncated binary snapshot: {what} needs {count} bytes, "
                f"{len(blob) - offset} remain"
            )

    @classmethod
    def _decode_node(cls, blob: bytes, offset: int, version: int):
        cls._need(blob, offset, 4, "node header length")
        (header_len,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        cls._need(blob, offset, header_len, "node header")
        try:
            header = json.loads(blob[offset:offset + header_len])
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SnapshotError(f"malformed snapshot header: {exc}") from exc
        offset += header_len
        cls._need(blob, offset, 4, "group count")
        (num_groups,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        groups: List[List[SnapshotEntry]] = []
        for _ in range(num_groups):
            cls._need(blob, offset, 4, "entry count")
            (count,) = struct.unpack_from("<I", blob, offset)
            offset += 4
            cls._need(blob, offset, count * _ENTRY.size, "entries")
            group = []
            for _ in range(count):
                value, care, live = _ENTRY.unpack_from(blob, offset)
                offset += _ENTRY.size
                group.append(SnapshotEntry(value=value, care=care,
                                           live=bool(live)))
            groups.append(group)
        cls._need(blob, offset, 4, "child count")
        (num_children,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        children = []
        for _ in range(num_children):
            child, offset = cls._decode_node(blob, offset, version)
            children.append(child)
        return cls(kind=header["kind"], meta=dict(header["meta"]),
                   groups=groups, children=children, version=version), offset

    # ------------------------------------------------------------------
    # files
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write to ``path``; ``.json`` selects JSON, else binary."""
        if str(path).endswith(".json"):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(self.to_json())
        else:
            with open(path, "wb") as handle:
                handle.write(self.to_binary())

    @classmethod
    def load(cls, path: str) -> "CamSnapshot":
        """Read a snapshot; the format is sniffed from the content."""
        with open(path, "rb") as handle:
            blob = handle.read()
        if blob.startswith(SNAPSHOT_MAGIC):
            return cls.from_binary(blob)
        try:
            text = blob.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SnapshotError(
                f"{path}: neither binary nor JSON snapshot"
            ) from exc
        return cls.from_json(text)


# ----------------------------------------------------------------------
# construction / validation helpers shared by the backends
# ----------------------------------------------------------------------
def unit_meta(config, engine: str, num_groups: int) -> Dict[str, Any]:
    """The metadata a unit-level snapshot carries (enough to rebuild a
    compatible :class:`~repro.core.config.UnitConfig` via the CLI)."""
    return {
        "engine": engine,
        "data_width": config.data_width,
        "cam_type": config.block.cell.cam_type.value,
        "encoding": config.block.encoding.value,
        "num_groups": num_groups,
        "replicated": bool(config.replicate_updates),
        "capacity": config.group_capacity(num_groups),
        "total_entries": config.total_entries,
        "block_size": config.block.block_size,
        "bus_width": config.unit_bus_width,
    }


def check_unit_compatible(snapshot: CamSnapshot, config,
                          name: str) -> None:
    """Validate that ``snapshot`` can be restored into ``config``."""
    if snapshot.kind != "unit":
        raise SnapshotError(
            f"{name}: cannot restore a {snapshot.kind!r} snapshot into a "
            "single CAM unit"
        )
    meta = snapshot.meta
    if meta.get("data_width") != config.data_width:
        raise SnapshotError(
            f"{name}: snapshot data width {meta.get('data_width')} != "
            f"unit data width {config.data_width}"
        )
    if meta.get("cam_type") != config.block.cell.cam_type.value:
        raise SnapshotError(
            f"{name}: snapshot CAM type {meta.get('cam_type')!r} != unit "
            f"type {config.block.cell.cam_type.value!r}"
        )
    num_groups = int(meta.get("num_groups", 1))
    if num_groups < 1 or config.num_blocks % num_groups:
        raise SnapshotError(
            f"{name}: snapshot group count {num_groups} does not divide "
            f"{config.num_blocks} blocks"
        )
    if bool(meta.get("replicated", True)) != bool(config.replicate_updates):
        raise SnapshotError(
            f"{name}: snapshot replication mode "
            f"{meta.get('replicated')} != unit mode "
            f"{config.replicate_updates}"
        )
    capacity = config.group_capacity(num_groups)
    for index, group in enumerate(snapshot.groups):
        if len(group) > capacity:
            raise SnapshotError(
                f"{name}: snapshot group {index} holds {len(group)} slots, "
                f"unit group capacity is {capacity}"
            )
    expected_lists = 1 if config.replicate_updates else num_groups
    if len(snapshot.groups) != expected_lists:
        raise SnapshotError(
            f"{name}: snapshot carries {len(snapshot.groups)} entry lists, "
            f"expected {expected_lists}"
        )


def restore_payload(group: List[SnapshotEntry], data_width: int):
    """Split one group's slots into ``(entries, dead_addresses)``.

    ``entries`` is the full slot list with dead slots materialised as
    zero-valued binary placeholders (so the replayed update reproduces
    the original fill-pointer positions); ``dead_addresses`` are the
    slot indexes to invalidate afterwards.
    """
    from repro.core.mask import binary_entry

    entries = []
    dead: List[int] = []
    for address, slot in enumerate(group):
        if slot.live:
            entries.append(slot.to_entry(data_width))
        else:
            entries.append(binary_entry(0, data_width))
            dead.append(address)
    return entries, dead


def content_hash_of(backend) -> str:
    """Convenience: the canonical content hash of any snapshotting
    backend."""
    return backend.snapshot().content_hash()


__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "CamSnapshot",
    "SnapshotEntry",
    "check_unit_compatible",
    "content_hash_of",
    "restore_payload",
    "unit_meta",
]
