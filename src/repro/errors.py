"""Exception hierarchy for the DSP-CAM reproduction library.

All exceptions raised on purpose by :mod:`repro` derive from
:class:`ReproError`, so downstream users can catch a single type at an
integration boundary while tests can assert the precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An architectural parameter is invalid or inconsistent.

    Raised while validating :mod:`repro.core.config` dataclasses, e.g. a
    storage width above 48 bits or a non power-of-two block size.
    """


class CapacityError(ReproError):
    """An operation would exceed a hardware capacity.

    Raised when updating a full CAM block/unit or when a requested
    configuration does not fit the target device.
    """


class SimulationError(ReproError):
    """The cycle simulator was driven in an unsupported way.

    Examples: conflicting writes to the same scheduled attribute in one
    cycle, or a ``run_until`` that exceeds its cycle budget.
    """


class MaskError(ReproError):
    """A CAM mask is malformed for the selected CAM type.

    For example a range-matching CAM range whose bounds are not aligned
    to a power-of-two block, which the DSP MASK register cannot express.
    """


class RoutingError(ReproError):
    """Group/block routing is inconsistent.

    Raised when the requested group count does not divide the number of
    blocks, or when more concurrent queries than groups are issued.
    """


class AuditError(ReproError):
    """The differential audit engine observed a batch/cycle divergence.

    Raised (in strict mode) when the vectorized batch engine and the
    cycle-accurate simulator disagree on a result or a cycle count for
    the same operation sequence.
    """


class ServiceError(ReproError):
    """Base class for sharded CAM service failures (:mod:`repro.service`)."""


class ShardFailedError(ServiceError):
    """A shard backend raised unexpectedly and has been poisoned.

    The service isolates the failure: the poisoned shard keeps
    answering miss-with-error while the remaining shards serve
    normally. ``shard`` identifies the poisoned backend and
    ``__cause__`` carries the original exception when available.
    """

    def __init__(self, shard: int, message: str) -> None:
        super().__init__(f"shard {shard}: {message}")
        self.shard = shard


class RequestTimeoutError(ServiceError):
    """A service request missed its deadline before dispatch completed."""


class ServiceOverloadError(ServiceError):
    """The bounded admission queue is full and the service is in
    reject-on-overflow mode (backpressure surfaced to the caller)."""


class ServiceDrainingError(ServiceError):
    """The service is draining for shutdown and admits no new requests.

    In-flight requests complete normally; callers that see this error
    should retry against another instance (the network layer maps it
    onto a ``RETRY_LATER`` error frame).
    """


class ReplicaExhaustedError(ServiceError):
    """Every replica of a replica set has failed.

    Raised by :class:`repro.service.replica.ReplicaSet` when an
    operation finds no healthy replica to serve it. Reaching the
    sharded layer this poisons the owning shard, exactly like a
    single-session backend fault.
    """


class SnapshotError(ReproError):
    """A CAM snapshot is malformed or incompatible with its target.

    Raised when decoding a corrupt/unsupported snapshot payload or when
    restoring a snapshot into a backend whose configuration (width, CAM
    type, group structure, capacity) cannot reproduce the captured
    state bit-identically.
    """


class NetError(ReproError):
    """Base class for network-layer failures (:mod:`repro.net`)."""


class ProtocolError(NetError):
    """A wire frame violates the ``repro.net`` binary protocol.

    Covers bad magic, unsupported protocol versions, CRC mismatches,
    unknown opcodes and malformed payloads. A server that hits this on
    a connection answers with a structured error frame and closes the
    connection -- the stream offset can no longer be trusted.
    """


class FrameTooLargeError(ProtocolError):
    """A frame declares a payload above the configured size limit."""


class ConnectionLostError(NetError):
    """The peer vanished mid-conversation.

    Raised into every response future still pending on the connection;
    the pipelined client treats it as retryable (idempotency tokens
    make mutating retries exactly-once on the server).
    """


class HdlGenError(ReproError):
    """Verilog generation failed (bad identifier, impossible template)."""


class DatasetError(ReproError):
    """A graph dataset is unknown or its stand-in cannot be generated."""


class DeviceError(ReproError):
    """An FPGA device is unknown or lacks a required resource column."""


class ObsError(ReproError):
    """Telemetry misuse or a malformed observability artefact.

    Raised when a metric is re-registered with a conflicting type,
    when a benchmark manifest fails schema validation, or when a trace
    export is asked for an impossible encoding.
    """
