"""repro.net: binary wire protocol, asyncio CAM server and client.

The network front end for the sharded/replicated CAM service -- the
reproduction's analogue of the I/O architecture that bounds a hardware
CAM's deliverable throughput (an efficient match array is worthless
behind a slow front end; see PAPERS.md, Nguyen et al.). Three layers:

- :mod:`repro.net.protocol` -- a versioned, length-prefixed,
  CRC-checked binary framing covering LOOKUP / INSERT / DELETE /
  SNAPSHOT / STATS / PING, with batch-request encoding (one frame, many
  keys) and structured error frames mapped onto :mod:`repro.errors`;
- :mod:`repro.net.server` -- :class:`CamServer`, an asyncio TCP server
  wrapping :class:`~repro.service.scheduler.CamService` with
  per-connection read/write tasks, connection/frame-size limits, idle
  and per-request timeouts, graceful drain (in-flight requests
  complete, new ones get ``RETRY_LATER``) and ``net_*`` telemetry;
- :mod:`repro.net.client` -- :class:`CamClient`, a pipelined client
  that multiplexes concurrent requests over a connection pool by
  request id and retries with backoff on connection loss (idempotency
  tokens make mutating retries exactly-once on the server), plus
  :mod:`repro.net.loadgen`, the open/closed-loop load generator behind
  ``python -m repro loadgen``.

The network path is proven result-identical to the in-process service
by the hypothesis suite in ``tests/net/`` -- same workload through
both, bit-identical match vectors, including under injected connection
kills. See ``docs/networking.md`` for the frame layout and failure
semantics.
"""

from __future__ import annotations

from repro.net.client import CamClient
from repro.net.loadgen import (
    LoadgenSpec,
    LoadReport,
    run_loadgen,
    run_loadgen_blocking,
    table09_probe_stream,
)
from repro.net.protocol import (
    ERROR_CODES,
    MAX_FRAME_SIZE,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    ErrorCode,
    Frame,
    FrameDecoder,
    Opcode,
    Status,
)
from repro.net.server import CamServer, ServerStats

__all__ = [
    "ERROR_CODES",
    "MAX_FRAME_SIZE",
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "CamClient",
    "CamServer",
    "ErrorCode",
    "Frame",
    "FrameDecoder",
    "LoadReport",
    "LoadgenSpec",
    "Opcode",
    "ServerStats",
    "Status",
    "run_loadgen",
    "run_loadgen_blocking",
    "table09_probe_stream",
]
