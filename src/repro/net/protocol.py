"""Binary wire protocol for the CAM service.

Every message is one **frame**::

    offset  size  field
    0       4     magic  b"RCAM"
    4       1     protocol version (1)
    5       1     opcode
    6       4     request id (LE u32, chosen by the sender of a request,
                  echoed by the matching response)
    10      4     payload length N (LE u32)
    14      N     payload (opcode-specific, see below)
    14+N    4     CRC32 (LE u32) over bytes [0, 14+N)

The trailing CRC covers header *and* payload, so a flipped bit anywhere
is caught before the payload is interpreted. Integers are little-endian
throughout (the same convention as the binary snapshot codec).

Request opcodes and payloads:

=========  ====================================================
LOOKUP     ``u32 count`` then ``count`` x ``u64 key`` -- one
           frame carries a whole probe batch
INSERT     16-byte idempotency token, ``u32 count``, then
           ``count`` x ``u64 word``
DELETE     16-byte idempotency token, ``u32 count``, then
           ``count`` x ``u64 key``
SNAPSHOT   empty -- asks for the server CAM's binary snapshot
STATS      empty -- asks for a JSON stats document
PING       arbitrary payload, echoed back verbatim
=========  ====================================================

Response opcodes: ``RESULT`` (lookup/delete answers: per key a status
byte, the key, an encoding byte and the raw match vector -- the client
rebuilds :class:`~repro.core.types.SearchResult` bit-identically via
``from_vector``), ``UPDATED`` (insert ack with
:class:`~repro.core.session.UpdateStats`), ``SNAPSHOT_DATA`` (the
binary snapshot blob), ``STATS_DATA`` (UTF-8 JSON), ``PONG`` (echo)
and ``ERROR`` (``u16`` :class:`ErrorCode` + UTF-8 message).

Mutating requests (INSERT/DELETE) carry a 16-byte **idempotency
token**: the server remembers recent token -> response mappings and
answers a retried token from that cache without re-applying the
mutation, which is what makes client retry-after-connection-loss
exactly-once (zero lost, zero duplicated updates).

:class:`FrameDecoder` is the incremental stream decoder used by both
ends; it enforces magic, version, a frame-size cap and the CRC, and
raises typed :mod:`repro.errors` exceptions on violation.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.session import UpdateStats
from repro.core.types import Encoding, SearchResult
from repro.errors import (
    CapacityError,
    ConfigError,
    ConnectionLostError,
    FrameTooLargeError,
    MaskError,
    NetError,
    ProtocolError,
    RequestTimeoutError,
    RoutingError,
    ServiceDrainingError,
    ServiceError,
    ServiceOverloadError,
    ShardFailedError,
    SnapshotError,
)

#: First four bytes of every frame.
PROTOCOL_MAGIC = b"RCAM"

#: Wire format version; bumped on any layout change.
PROTOCOL_VERSION = 1

#: Default cap on one frame's payload (4 MiB) -- a snapshot of a very
#: large CAM is the only payload that approaches it.
MAX_FRAME_SIZE = 4 * 1024 * 1024

#: Size of the idempotency token carried by mutating requests.
TOKEN_SIZE = 16

_HEADER = struct.Struct("<4sBBII")
_CRC = struct.Struct("<I")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_UPDATE = struct.Struct("<BIIQ")

#: Bytes of framing around the payload (header + trailing CRC).
FRAME_OVERHEAD = _HEADER.size + _CRC.size


class Opcode(IntEnum):
    """Frame opcodes; requests below 0x80, responses above."""

    LOOKUP = 0x01
    INSERT = 0x02
    DELETE = 0x03
    SNAPSHOT = 0x04
    STATS = 0x05
    PING = 0x06

    RESULT = 0x81
    UPDATED = 0x82
    SNAPSHOT_DATA = 0x84
    STATS_DATA = 0x85
    PONG = 0x86
    ERROR = 0xFF

    @property
    def is_request(self) -> bool:
        return self < 0x80


class Status(IntEnum):
    """Per-request outcome carried inside RESULT/UPDATED payloads.

    Mirrors :class:`~repro.service.scheduler.ServiceResponse.status`
    so a network response reconstructs the in-process response
    exactly.
    """

    OK = 0
    TIMEOUT = 1
    SHARD_FAILED = 2
    ERROR = 3


_STATUS_STRINGS = {
    Status.OK: "ok",
    Status.TIMEOUT: "timeout",
    Status.SHARD_FAILED: "shard_failed",
    Status.ERROR: "error",
}
_STATUS_CODES = {text: code for code, text in _STATUS_STRINGS.items()}


def status_to_wire(status: str) -> int:
    return int(_STATUS_CODES.get(status, Status.ERROR))


def status_from_wire(code: int) -> str:
    try:
        return _STATUS_STRINGS[Status(code)]
    except ValueError:
        raise ProtocolError(f"unknown status code {code}") from None


class ErrorCode(IntEnum):
    """Structured error frame codes, mapped onto :mod:`repro.errors`."""

    BAD_FRAME = 1
    UNSUPPORTED_VERSION = 2
    UNKNOWN_OPCODE = 3
    FRAME_TOO_LARGE = 4
    RETRY_LATER = 5
    OVERLOADED = 6
    TIMEOUT = 7
    SHARD_FAILED = 8
    CLIENT_ERROR = 9
    SNAPSHOT_FAILED = 10
    INTERNAL = 11


#: ErrorCode -> exception class raised client-side when a request
#: resolves to an error frame.
ERROR_CODES: Dict[int, type] = {
    ErrorCode.BAD_FRAME: ProtocolError,
    ErrorCode.UNSUPPORTED_VERSION: ProtocolError,
    ErrorCode.UNKNOWN_OPCODE: ProtocolError,
    ErrorCode.FRAME_TOO_LARGE: FrameTooLargeError,
    ErrorCode.RETRY_LATER: ServiceDrainingError,
    ErrorCode.OVERLOADED: ServiceOverloadError,
    ErrorCode.TIMEOUT: RequestTimeoutError,
    ErrorCode.SHARD_FAILED: ShardFailedError,
    ErrorCode.CLIENT_ERROR: ConfigError,
    ErrorCode.SNAPSHOT_FAILED: SnapshotError,
    ErrorCode.INTERNAL: ServiceError,
}


def error_code_for(exc: BaseException) -> ErrorCode:
    """The wire code a server-side exception maps to."""
    if isinstance(exc, ServiceDrainingError):
        return ErrorCode.RETRY_LATER
    if isinstance(exc, ServiceOverloadError):
        return ErrorCode.OVERLOADED
    if isinstance(exc, RequestTimeoutError):
        return ErrorCode.TIMEOUT
    if isinstance(exc, ShardFailedError):
        return ErrorCode.SHARD_FAILED
    if isinstance(exc, (ConfigError, CapacityError, RoutingError,
                        MaskError)):
        return ErrorCode.CLIENT_ERROR
    if isinstance(exc, SnapshotError):
        return ErrorCode.SNAPSHOT_FAILED
    if isinstance(exc, FrameTooLargeError):
        return ErrorCode.FRAME_TOO_LARGE
    if isinstance(exc, ProtocolError):
        return ErrorCode.BAD_FRAME
    return ErrorCode.INTERNAL


def exception_for(code: int, message: str) -> NetError:
    """Rebuild the client-side exception for an error frame."""
    cls = ERROR_CODES.get(code, ServiceError)
    if cls is ShardFailedError:
        return ShardFailedError(-1, message)
    return cls(message)


@dataclass(frozen=True)
class Frame:
    """One decoded frame: opcode, request id, raw payload."""

    opcode: Opcode
    request_id: int
    payload: bytes = b""


# ----------------------------------------------------------------------
# frame encode / decode
# ----------------------------------------------------------------------
def encode_frame(opcode: int, request_id: int, payload: bytes = b"") -> bytes:
    """Serialise one frame, CRC included."""
    head = _HEADER.pack(PROTOCOL_MAGIC, PROTOCOL_VERSION, int(opcode),
                        request_id & 0xFFFFFFFF, len(payload))
    body = head + payload
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def decode_frame(blob: bytes) -> Frame:
    """Decode exactly one complete frame (tests and tools; the stream
    path uses :class:`FrameDecoder`)."""
    decoder = FrameDecoder()
    frames = decoder.feed(blob)
    if not frames:
        raise ProtocolError(
            f"incomplete frame ({len(blob)} bytes)"
        )
    if len(frames) != 1 or decoder.buffered:
        raise ProtocolError("expected exactly one frame")
    return frames[0]


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte stream.

    ``feed(data)`` returns every frame completed by ``data``. Magic and
    version are checked as soon as the header is buffered; the payload
    length is checked against ``max_frame_size`` *before* the payload
    is awaited, so an absurd length cannot make the peer buffer
    gigabytes; the CRC is checked once the full frame is in.
    """

    def __init__(self, max_frame_size: int = MAX_FRAME_SIZE) -> None:
        if max_frame_size < 1:
            raise ConfigError(
                f"max_frame_size must be >= 1, got {max_frame_size}"
            )
        self.max_frame_size = max_frame_size
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes waiting for the rest of their frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            frame = self._try_decode_one()
            if frame is None:
                return frames
            frames.append(frame)

    def _try_decode_one(self) -> Optional[Frame]:
        buffer = self._buffer
        if len(buffer) < _HEADER.size:
            return None
        magic, version, opcode, request_id, length = _HEADER.unpack_from(
            buffer, 0
        )
        if magic != PROTOCOL_MAGIC:
            raise ProtocolError(
                f"bad magic {bytes(magic)!r} (expected {PROTOCOL_MAGIC!r})"
            )
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version} "
                f"(this build speaks version {PROTOCOL_VERSION})"
            )
        if length > self.max_frame_size:
            raise FrameTooLargeError(
                f"frame payload of {length} bytes exceeds the "
                f"{self.max_frame_size}-byte limit"
            )
        total = _HEADER.size + length + _CRC.size
        if len(buffer) < total:
            return None
        body_end = _HEADER.size + length
        (crc,) = _CRC.unpack_from(buffer, body_end)
        actual = zlib.crc32(bytes(buffer[:body_end])) & 0xFFFFFFFF
        if crc != actual:
            raise ProtocolError(
                f"CRC mismatch (frame says {crc:#010x}, "
                f"computed {actual:#010x})"
            )
        try:
            op = Opcode(opcode)
        except ValueError:
            raise ProtocolError(f"unknown opcode {opcode:#04x}") from None
        payload = bytes(buffer[_HEADER.size:body_end])
        del buffer[:total]
        return Frame(opcode=op, request_id=request_id, payload=payload)


# ----------------------------------------------------------------------
# payload codecs
# ----------------------------------------------------------------------
def _pack_keys(keys: Sequence[int]) -> bytes:
    out = [_U32.pack(len(keys))]
    for key in keys:
        out.append(_U64.pack(int(key) & 0xFFFFFFFFFFFFFFFF))
    return b"".join(out)


def _unpack_keys(payload: bytes, offset: int) -> Tuple[List[int], int]:
    if len(payload) < offset + _U32.size:
        raise ProtocolError("truncated key batch (missing count)")
    (count,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    need = count * _U64.size
    if len(payload) < offset + need:
        raise ProtocolError(
            f"truncated key batch ({count} keys declared, "
            f"{len(payload) - offset} bytes left)"
        )
    keys = [
        _U64.unpack_from(payload, offset + i * _U64.size)[0]
        for i in range(count)
    ]
    return keys, offset + need


def encode_lookup(keys: Sequence[int]) -> bytes:
    if not keys:
        raise ConfigError("a LOOKUP frame needs at least one key")
    return _pack_keys(keys)


def decode_lookup(payload: bytes) -> List[int]:
    keys, end = _unpack_keys(payload, 0)
    if end != len(payload):
        raise ProtocolError("trailing bytes after LOOKUP keys")
    if not keys:
        raise ProtocolError("empty LOOKUP batch")
    return keys


def encode_mutation(token: bytes, words: Sequence[int]) -> bytes:
    """Shared INSERT/DELETE request payload: token + key batch."""
    if len(token) != TOKEN_SIZE:
        raise ConfigError(
            f"idempotency token must be {TOKEN_SIZE} bytes, "
            f"got {len(token)}"
        )
    if not words:
        raise ConfigError("a mutation frame needs at least one word")
    return token + _pack_keys(words)


def decode_mutation(payload: bytes) -> Tuple[bytes, List[int]]:
    if len(payload) < TOKEN_SIZE:
        raise ProtocolError("mutation frame shorter than its token")
    token = payload[:TOKEN_SIZE]
    words, end = _unpack_keys(payload, TOKEN_SIZE)
    if end != len(payload):
        raise ProtocolError("trailing bytes after mutation words")
    if not words:
        raise ProtocolError("empty mutation batch")
    return token, words


_ENCODING_WIRE = {encoding: index
                  for index, encoding in enumerate(Encoding)}
_ENCODING_UNWIRE = {index: encoding
                    for index, encoding in enumerate(Encoding)}


def _vector_bytes(vector: int) -> bytes:
    length = max(1, (vector.bit_length() + 7) // 8)
    return vector.to_bytes(length, "little")


def encode_results(
    results: Sequence[Tuple[str, SearchResult]],
) -> bytes:
    """RESULT payload: ``u32 count`` then per entry ``u8 status``,
    ``u64 key``, ``u8 encoding``, ``u32 vector_len``, vector bytes
    (little-endian raw match vector -- the full per-cell hit bitmap,
    so the client-side result is bit-identical to the in-process
    one)."""
    out = [_U32.pack(len(results))]
    for status, result in results:
        vector = _vector_bytes(result.match_vector)
        out.append(struct.pack(
            "<BQBI", status_to_wire(status),
            int(result.key) & 0xFFFFFFFFFFFFFFFF,
            _ENCODING_WIRE[result.encoding], len(vector),
        ))
        out.append(vector)
    return b"".join(out)


def decode_results(payload: bytes) -> List[Tuple[str, SearchResult]]:
    if len(payload) < _U32.size:
        raise ProtocolError("truncated RESULT payload")
    (count,) = _U32.unpack_from(payload, 0)
    offset = _U32.size
    entry = struct.Struct("<BQBI")
    results: List[Tuple[str, SearchResult]] = []
    for _ in range(count):
        if len(payload) < offset + entry.size:
            raise ProtocolError("truncated RESULT entry")
        status_code, key, encoding_code, vector_len = entry.unpack_from(
            payload, offset
        )
        offset += entry.size
        if len(payload) < offset + vector_len:
            raise ProtocolError("truncated RESULT match vector")
        vector = int.from_bytes(payload[offset:offset + vector_len],
                                "little")
        offset += vector_len
        try:
            encoding = _ENCODING_UNWIRE[encoding_code]
        except KeyError:
            raise ProtocolError(
                f"unknown result encoding {encoding_code}"
            ) from None
        results.append((
            status_from_wire(status_code),
            SearchResult.from_vector(key, vector, encoding),
        ))
    if offset != len(payload):
        raise ProtocolError("trailing bytes after RESULT entries")
    return results


def encode_update_ack(status: str, stats: Optional[UpdateStats]) -> bytes:
    """UPDATED payload: ``u8 status, u32 words, u32 beats, u64 cycles``."""
    stats = stats or UpdateStats(words=0, beats=0, cycles=0)
    return _UPDATE.pack(status_to_wire(status), stats.words, stats.beats,
                        stats.cycles)


def decode_update_ack(payload: bytes) -> Tuple[str, UpdateStats]:
    if len(payload) != _UPDATE.size:
        raise ProtocolError(
            f"UPDATED payload must be {_UPDATE.size} bytes, "
            f"got {len(payload)}"
        )
    status_code, words, beats, cycles = _UPDATE.unpack(payload)
    return status_from_wire(status_code), UpdateStats(
        words=words, beats=beats, cycles=cycles
    )


def encode_error(code: int, message: str) -> bytes:
    return struct.pack("<H", int(code)) + message.encode("utf-8")


def decode_error(payload: bytes) -> Tuple[int, str]:
    if len(payload) < 2:
        raise ProtocolError("truncated ERROR payload")
    (code,) = struct.unpack_from("<H", payload, 0)
    return code, payload[2:].decode("utf-8", errors="replace")


def encode_stats(stats: dict) -> bytes:
    return json.dumps(stats, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def decode_stats(payload: bytes) -> dict:
    try:
        data = json.loads(payload.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed STATS payload: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError("STATS payload must be a JSON object")
    return data


__all__ = [
    "ERROR_CODES",
    "FRAME_OVERHEAD",
    "MAX_FRAME_SIZE",
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "TOKEN_SIZE",
    "ConnectionLostError",
    "ErrorCode",
    "Frame",
    "FrameDecoder",
    "Opcode",
    "Status",
    "decode_error",
    "decode_frame",
    "decode_lookup",
    "decode_mutation",
    "decode_results",
    "decode_stats",
    "decode_update_ack",
    "encode_error",
    "encode_frame",
    "encode_lookup",
    "encode_mutation",
    "encode_results",
    "encode_stats",
    "encode_update_ack",
    "error_code_for",
    "exception_for",
    "status_from_wire",
    "status_to_wire",
]
