"""Open- and closed-loop load generation against a CAM server.

Drives the Table IX adjacency-probe stream (the same workload the
shard-scaling and network-throughput benchmarks use) through a
:class:`~repro.net.client.CamClient`:

- **closed loop** -- ``concurrency`` workers each keep exactly one
  request outstanding; throughput is whatever the server sustains,
  latency excludes queueing you didn't create. The classic
  load-tester mode.
- **open loop** -- requests *arrive* on a fixed schedule of ``rate``
  req/s regardless of completions (up to ``concurrency`` in flight as
  a memory guard); latency includes the queueing a real user would
  see when the server falls behind the arrival process.

The run is summarised as a :class:`LoadReport` and can be emitted as a
``repro.bench.manifest`` (:meth:`LoadReport.manifest`) with achieved
req/s and latency percentiles -- the artefact the CI ``net-smoke`` job
uploads. A ``kill_after`` chaos knob severs every client connection
once, mid-run, to prove retry-with-backoff rides through connection
loss without losing or duplicating updates.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro import obs
from repro.errors import ConfigError, NetError
from repro.net.client import CamClient
from repro.service.workload import table09_probe_stream

#: Words per INSERT frame during the store phase.
SEED_BATCH = 64


@dataclass(frozen=True)
class LoadgenSpec:
    """Shape of one load-generation run (all knobs CLI-settable)."""

    mode: str = "closed"
    requests: int = 2000
    concurrency: int = 16
    rate: float = 2000.0
    batch: int = 1
    pool_size: int = 1
    pipelined: bool = True
    kill_after: Optional[int] = None
    seed: int = 3

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ConfigError(
                f"mode must be 'closed' or 'open', got {self.mode!r}"
            )
        if self.requests < 1:
            raise ConfigError(f"requests must be >= 1, got {self.requests}")
        if self.concurrency < 1:
            raise ConfigError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if self.mode == "open" and self.rate <= 0:
            raise ConfigError(
                f"open-loop rate must be > 0 req/s, got {self.rate}"
            )
        if self.batch < 1:
            raise ConfigError(f"batch must be >= 1, got {self.batch}")
        if self.kill_after is not None and self.kill_after < 0:
            raise ConfigError(
                f"kill_after must be >= 0, got {self.kill_after}"
            )


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str = "closed"
    requests: int = 0
    keys_probed: int = 0
    ok: int = 0
    hits: int = 0
    degraded: int = 0
    errors: int = 0
    retries: int = 0
    kills: int = 0
    stored_words: int = 0
    seed_s: float = 0.0
    wall_s: float = 0.0
    offered_rps: float = 0.0
    latencies_s: List[float] = field(default_factory=list)

    @property
    def achieved_rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def render(self) -> str:
        lines = [
            f"mode              : {self.mode}"
            + (f" (offered {self.offered_rps:,.0f} req/s)"
               if self.mode == "open" else ""),
            f"seed phase        : {self.stored_words} words stored "
            f"in {self.seed_s:.3f} s",
            f"probe requests    : {self.requests} "
            f"({self.keys_probed} keys)",
            f"outcomes          : {self.ok} ok, {self.degraded} degraded, "
            f"{self.errors} errors",
            f"hit rate          : "
            + (f"{self.hits / self.keys_probed:.3f}"
               if self.keys_probed else "n/a"),
            f"retries / kills   : {self.retries} / {self.kills}",
            f"wall time         : {self.wall_s:.3f} s "
            f"({self.achieved_rps:,.0f} req/s achieved)",
            f"latency p50/p95/p99: "
            f"{self.latency_percentile(0.50) * 1e3:.2f} / "
            f"{self.latency_percentile(0.95) * 1e3:.2f} / "
            f"{self.latency_percentile(0.99) * 1e3:.2f} ms",
        ]
        return "\n".join(lines)

    def manifest(self, spec: LoadgenSpec, name: str = "net_loadgen") -> dict:
        """A schema-valid ``repro.bench.manifest`` for this run."""
        return obs.build_manifest(
            name=name,
            config={
                "mode": spec.mode,
                "requests": spec.requests,
                "concurrency": spec.concurrency,
                "rate": spec.rate,
                "batch": spec.batch,
                "pool_size": spec.pool_size,
                "pipelined": spec.pipelined,
                "kill_after": spec.kill_after,
                "seed": spec.seed,
            },
            timings={"seed_s": self.seed_s, "wall_s": self.wall_s},
            metrics=obs.metrics().snapshot(),
            extra={
                "achieved_rps": self.achieved_rps,
                "offered_rps": self.offered_rps,
                "ok": self.ok,
                "degraded": self.degraded,
                "errors": self.errors,
                "retries": self.retries,
                "kills": self.kills,
                "hits": self.hits,
                "keys_probed": self.keys_probed,
                "stored_words": self.stored_words,
                "latency_p50_ms": self.latency_percentile(0.50) * 1e3,
                "latency_p95_ms": self.latency_percentile(0.95) * 1e3,
                "latency_p99_ms": self.latency_percentile(0.99) * 1e3,
            },
        )


async def run_loadgen(
    client: CamClient,
    spec: LoadgenSpec,
    *,
    stored: Optional[List[int]] = None,
    probes: Optional[List[int]] = None,
    capacity: Optional[int] = None,
) -> LoadReport:
    """Seed the server CAM, then drive the probe stream through it.

    ``stored``/``probes`` default to :func:`table09_probe_stream` over
    the server's reported capacity. The client's retry counters are
    diffed around the run, so :attr:`LoadReport.retries` counts only
    this run's retries.
    """
    if stored is None or probes is None:
        if capacity is None:
            capacity = int((await client.stats())["cam"]["capacity"])
        generated_stored, generated_probes = table09_probe_stream(
            capacity, seed=spec.seed
        )
        stored = stored if stored is not None else generated_stored
        probes = probes if probes is not None else generated_probes

    report = LoadReport(mode=spec.mode)
    retries_before = client.retries
    kills_before = client.kills

    # ------------------------------------------------------------- seed
    seed_started = time.perf_counter()
    occupancy = int((await client.stats())["cam"]["occupancy"])
    if occupancy == 0:
        for start in range(0, len(stored), SEED_BATCH):
            response = await client.insert(stored[start:start + SEED_BATCH])
            if response.status == "ok":
                report.stored_words += response.stats.words
    report.seed_s = time.perf_counter() - seed_started

    # ---------------------------------------------------------- probes
    total = spec.requests
    batches = [
        [probes[(index * spec.batch + j) % len(probes)]
         for j in range(spec.batch)]
        for index in range(total)
    ]
    completed = 0
    kill_pending = spec.kill_after is not None

    async def fire(batch: List[int]) -> None:
        nonlocal completed, kill_pending
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            responses = await client.lookup_many(batch)
        except NetError:
            report.errors += 1
            report.requests += 1
            report.keys_probed += len(batch)
            return
        report.latencies_s.append(loop.time() - started)
        report.requests += 1
        report.keys_probed += len(batch)
        for response in responses:
            if response.status == "ok":
                report.hits += int(response.result.hit)
            else:
                report.degraded += 1
        if all(r.status == "ok" for r in responses):
            report.ok += 1
        completed += 1
        if kill_pending and completed >= spec.kill_after:
            kill_pending = False
            client.kill_connections()

    started = time.perf_counter()
    if spec.mode == "closed":
        queue: "asyncio.Queue[Optional[List[int]]]" = asyncio.Queue()
        for batch in batches:
            queue.put_nowait(batch)
        for _ in range(spec.concurrency):
            queue.put_nowait(None)

        async def worker() -> None:
            while True:
                batch = await queue.get()
                if batch is None:
                    return
                await fire(batch)

        await asyncio.gather(*[worker()
                               for _ in range(spec.concurrency)])
    else:
        interval = 1.0 / spec.rate
        limiter = asyncio.Semaphore(spec.concurrency)
        tasks = []
        loop = asyncio.get_running_loop()
        t0 = loop.time()

        async def fire_limited(batch: List[int]) -> None:
            async with limiter:
                await fire(batch)

        for index, batch in enumerate(batches):
            target = t0 + index * interval
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(fire_limited(batch)))
        await asyncio.gather(*tasks)
        report.offered_rps = spec.rate
    report.wall_s = time.perf_counter() - started
    report.retries = client.retries - retries_before
    report.kills = client.kills - kills_before
    return report


def run_loadgen_blocking(
    host: str,
    port: int,
    spec: LoadgenSpec,
    *,
    request_timeout_s: float = 10.0,
    max_retries: int = 5,
) -> LoadReport:
    """Blocking entry point used by ``python -m repro loadgen``."""

    async def _run() -> LoadReport:
        async with CamClient(
            host, port,
            pool_size=spec.pool_size,
            pipelined=spec.pipelined,
            request_timeout_s=request_timeout_s,
            max_retries=max_retries,
        ) as client:
            return await run_loadgen(client, spec)

    return asyncio.run(_run())


__all__ = [
    "LoadReport",
    "LoadgenSpec",
    "run_loadgen",
    "run_loadgen_blocking",
    "table09_probe_stream",
]
