"""Asyncio TCP server exposing a :class:`CamService` over the wire.

:class:`CamServer` is the socket front door of the reproduction: it
accepts connections, decodes :mod:`repro.net.protocol` frames
incrementally, executes each request against the wrapped
:class:`~repro.service.scheduler.CamService` (batch frames fan out to
concurrent service calls) and streams responses back through a
per-connection writer task -- requests from one connection are served
*pipelined*, never lock-step.

Operational guarantees:

- **bounded intake** -- at most ``max_connections`` concurrent
  connections (excess ones receive an ``OVERLOADED`` error frame and
  are closed) and at most ``max_frame_size`` payload bytes per frame
  (violations answer ``FRAME_TOO_LARGE`` and close the connection);
- **timeouts** -- a connection idle longer than ``idle_timeout_s`` is
  closed; a request older than ``request_timeout_s`` resolves as a
  ``TIMEOUT`` error frame (the service's own deadline machinery keeps
  the backend safe independently);
- **graceful drain** -- :meth:`stop` stops accepting, lets in-flight
  requests complete and answers frames that arrive during the drain
  window with ``RETRY_LATER``, so a restarting client loses nothing;
- **exactly-once mutations** -- INSERT/DELETE frames carry idempotency
  tokens; the server caches token -> response and answers a retried
  token from the cache without re-applying the mutation.

Telemetry is threaded through :mod:`repro.obs` under ``net_*`` names
(frames and bytes per direction, decode errors, connection churn,
request latency) with an always-on :class:`ServerStats` mirror.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro import obs
from repro.errors import (
    ConfigError,
    NetError,
    ProtocolError,
    ReproError,
    RequestTimeoutError,
)
from repro.net import protocol
from repro.net.protocol import ErrorCode, Frame, FrameDecoder, Opcode
from repro.service.scheduler import CamService

_READ_CHUNK = 64 * 1024


@dataclass
class ServerStats:
    """Always-on counters mirrored outside the obs registry."""

    connections_opened: int = 0
    connections_closed: int = 0
    connections_rejected: int = 0
    idle_closed: int = 0
    frames_in: int = 0
    frames_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    decode_errors: int = 0
    requests: int = 0
    errors_sent: int = 0
    retry_later: int = 0
    dedupe_hits: int = 0
    per_opcode: Dict[str, int] = field(default_factory=dict)

    def count_opcode(self, opcode: Opcode) -> None:
        name = opcode.name.lower()
        self.per_opcode[name] = self.per_opcode.get(name, 0) + 1


class _Connection:
    """Per-connection state: decoder, writer queue, in-flight tasks."""

    __slots__ = ("reader", "writer", "decoder", "outgoing", "tasks",
                 "peer", "closed")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 max_frame_size: int) -> None:
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder(max_frame_size=max_frame_size)
        self.outgoing: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        self.tasks: Set[asyncio.Task] = set()
        peer = writer.get_extra_info("peername")
        self.peer = f"{peer[0]}:{peer[1]}" if peer else "?"
        self.closed = False


class CamServer:
    """TCP front end for a :class:`CamService`.

    Use as an async context manager (binds on enter, drains and closes
    on exit)::

        cam = repro.open_session(config, engine="batch", shards=4)
        async with CamService(cam) as service:
            async with CamServer(service, port=0) as server:
                host, port = server.address
                ...

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`address`.
    """

    def __init__(
        self,
        service: CamService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 64,
        max_frame_size: int = protocol.MAX_FRAME_SIZE,
        idle_timeout_s: Optional[float] = None,
        request_timeout_s: Optional[float] = None,
        dedupe_capacity: int = 65536,
    ) -> None:
        if max_connections < 1:
            raise ConfigError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ConfigError(
                f"idle_timeout_s must be > 0, got {idle_timeout_s}"
            )
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ConfigError(
                f"request_timeout_s must be > 0, got {request_timeout_s}"
            )
        if dedupe_capacity < 1:
            raise ConfigError(
                f"dedupe_capacity must be >= 1, got {dedupe_capacity}"
            )
        self.service = service
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_frame_size = max_frame_size
        self.idle_timeout_s = idle_timeout_s
        self.request_timeout_s = request_timeout_s
        self.dedupe_capacity = dedupe_capacity
        self.stats = ServerStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[_Connection] = set()
        self._dedupe: "OrderedDict[bytes, Tuple[int, bytes]]" = OrderedDict()
        self._dedupe_pending: Dict[bytes, "asyncio.Task"] = {}
        self._draining = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise NetError("server already started")
        self._draining = False
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        socket = self._server.sockets[0]
        self.host, self.port = socket.getsockname()[:2]

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolved after :meth:`start`)."""
        return self.host, self.port

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def active_connections(self) -> int:
        return len(self._connections)

    async def drain(self) -> None:
        """Complete in-flight requests; new ones get ``RETRY_LATER``.

        Closes the listening socket first so no fresh connection can
        sneak work in, then drains the wrapped service (its admission
        gate starts refusing instantly) and finally waits for every
        per-frame handler task to flush its response.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.drain()
        pending = [task for conn in self._connections
                   for task in list(conn.tasks)]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def stop(self) -> None:
        """Graceful shutdown: drain, flush writers, close connections."""
        if self._server is None and not self._connections:
            return
        await self.drain()
        for conn in list(self._connections):
            await conn.outgoing.put(None)  # writer flushes then exits
        # Writers pop the sentinel, flush, and close their transport;
        # _close_connection drops them from the set.
        while self._connections:
            await asyncio.sleep(0.005)
        self._server = None

    async def __aenter__(self) -> "CamServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        conn = _Connection(reader, writer, self.max_frame_size)
        if self._draining or len(self._connections) >= self.max_connections:
            code = (ErrorCode.RETRY_LATER if self._draining
                    else ErrorCode.OVERLOADED)
            reason = ("server is draining" if self._draining
                      else f"server at its {self.max_connections}-"
                           "connection limit")
            self.stats.connections_rejected += 1
            obs.inc("net_connections_total",
                    help="connection lifecycle events by kind",
                    event="rejected")
            frame = protocol.encode_frame(
                Opcode.ERROR, 0, protocol.encode_error(code, reason)
            )
            try:
                writer.write(frame)
                await writer.drain()
                writer.close()
            except (ConnectionError, OSError):
                pass
            return
        self._connections.add(conn)
        self.stats.connections_opened += 1
        obs.inc("net_connections_total", event="opened")
        obs.set_gauge("net_connections_active", len(self._connections),
                      help="currently open client connections")
        writer_task = asyncio.ensure_future(self._writer_loop(conn))
        try:
            await self._reader_loop(conn)
        finally:
            await conn.outgoing.put(None)
            await writer_task
            self._close_connection(conn)

    def _close_connection(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._connections.discard(conn)
        self.stats.connections_closed += 1
        obs.inc("net_connections_total", event="closed")
        obs.set_gauge("net_connections_active", len(self._connections))
        try:
            conn.writer.close()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    async def _reader_loop(self, conn: _Connection) -> None:
        while True:
            try:
                if self.idle_timeout_s is not None:
                    data = await asyncio.wait_for(
                        conn.reader.read(_READ_CHUNK), self.idle_timeout_s
                    )
                else:
                    data = await conn.reader.read(_READ_CHUNK)
            except asyncio.TimeoutError:
                self.stats.idle_closed += 1
                obs.inc("net_connections_total", event="idle_closed")
                return
            except (ConnectionError, OSError):
                return
            if not data:
                return  # peer closed
            self.stats.bytes_in += len(data)
            obs.inc("net_bytes_total", len(data),
                    help="wire bytes by direction", direction="in")
            try:
                frames = conn.decoder.feed(data)
            except ProtocolError as exc:
                # The stream offset is untrustworthy after a framing
                # error: answer once, then hang up.
                self.stats.decode_errors += 1
                obs.inc("net_decode_errors_total",
                        help="frames rejected by the decoder")
                self._send_error(conn, 0, exc)
                return
            for frame in frames:
                self.stats.frames_in += 1
                obs.inc("net_frames_total",
                        help="frames by direction", direction="in")
                self._dispatch(conn, frame)

    async def _writer_loop(self, conn: _Connection) -> None:
        while True:
            blob = await conn.outgoing.get()
            if blob is None:
                break
            try:
                conn.writer.write(blob)
                await conn.writer.drain()
            except (ConnectionError, OSError):
                break
            self.stats.frames_out += 1
            self.stats.bytes_out += len(blob)
            obs.inc("net_frames_total", direction="out")
            obs.inc("net_bytes_total", len(blob), direction="out")
        self._close_connection(conn)

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, conn: _Connection, frame: Frame) -> None:
        if not frame.opcode.is_request:
            self._send_error(conn, frame.request_id, ProtocolError(
                f"{frame.opcode.name} is a response opcode; clients send "
                "requests only"
            ))
            return
        task = asyncio.ensure_future(self._handle(conn, frame))
        conn.tasks.add(task)
        task.add_done_callback(conn.tasks.discard)

    async def _handle(self, conn: _Connection, frame: Frame) -> None:
        self.stats.requests += 1
        self.stats.count_opcode(frame.opcode)
        started = time.perf_counter()
        status = "ok"
        try:
            if self.request_timeout_s is not None:
                await asyncio.wait_for(
                    self._execute(conn, frame), self.request_timeout_s
                )
            else:
                await self._execute(conn, frame)
        except asyncio.TimeoutError:
            status = "timeout"
            self._send_error(conn, frame.request_id, RequestTimeoutError(
                f"request exceeded the server's "
                f"{self.request_timeout_s}s deadline"
            ))
        except ReproError as exc:
            status = "error"
            self._send_error(conn, frame.request_id, exc)
        except Exception as exc:  # pragma: no cover - defensive
            status = "error"
            self._send_error(conn, frame.request_id, exc)
        obs.inc("net_requests_total", help="requests by opcode and outcome",
                opcode=frame.opcode.name.lower(), status=status)
        obs.observe("net_request_latency_seconds",
                    time.perf_counter() - started,
                    help="server-side request latency",
                    buckets=obs.SECONDS_BUCKETS,
                    opcode=frame.opcode.name.lower())

    async def _execute(self, conn: _Connection, frame: Frame) -> None:
        opcode = frame.opcode
        if opcode is Opcode.PING:
            self._send(conn, Opcode.PONG, frame.request_id, frame.payload)
        elif opcode is Opcode.LOOKUP:
            keys = protocol.decode_lookup(frame.payload)
            responses = await asyncio.gather(*[
                self.service.lookup(key) for key in keys
            ])
            payload = protocol.encode_results([
                (response.status, response.result)
                for response in responses
            ])
            self._send(conn, Opcode.RESULT, frame.request_id, payload)
        elif opcode is Opcode.INSERT:
            token, words = protocol.decode_mutation(frame.payload)

            async def apply_insert() -> Tuple[int, bytes]:
                response = await self.service.insert(words)
                return int(Opcode.UPDATED), protocol.encode_update_ack(
                    response.status, response.stats
                )

            out, payload = await self._mutate_once(token, apply_insert)
            self._send(conn, Opcode(out), frame.request_id, payload)
        elif opcode is Opcode.DELETE:
            token, keys = protocol.decode_mutation(frame.payload)

            async def apply_delete() -> Tuple[int, bytes]:
                responses = [await self.service.delete(key)
                             for key in keys]
                return int(Opcode.RESULT), protocol.encode_results([
                    (response.status, response.result)
                    for response in responses
                ])

            out, payload = await self._mutate_once(token, apply_delete)
            self._send(conn, Opcode(out), frame.request_id, payload)
        elif opcode is Opcode.SNAPSHOT:
            blob = self.service.cam.snapshot().to_binary()
            if len(blob) > self.max_frame_size:
                raise ProtocolError(
                    f"snapshot of {len(blob)} bytes exceeds the "
                    f"{self.max_frame_size}-byte frame limit"
                )
            self._send(conn, Opcode.SNAPSHOT_DATA, frame.request_id, blob)
        elif opcode is Opcode.STATS:
            self._send(conn, Opcode.STATS_DATA, frame.request_id,
                       protocol.encode_stats(self._stats_doc()))
        else:  # pragma: no cover - is_request filtered already
            raise ProtocolError(f"unhandled opcode {opcode!r}")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _send(self, conn: _Connection, opcode: Opcode, request_id: int,
              payload: bytes) -> None:
        conn.outgoing.put_nowait(
            protocol.encode_frame(opcode, request_id, payload)
        )

    def _send_error(self, conn: _Connection, request_id: int,
                    exc: BaseException) -> None:
        code = protocol.error_code_for(exc)
        self.stats.errors_sent += 1
        if code is ErrorCode.RETRY_LATER:
            self.stats.retry_later += 1
        obs.inc("net_errors_sent_total",
                help="error frames by code", code=code.name.lower())
        self._send(conn, Opcode.ERROR, request_id,
                   protocol.encode_error(code, str(exc)))

    async def _mutate_once(self, token: bytes, apply) -> Tuple[int, bytes]:
        """Run ``apply`` exactly once per idempotency token.

        A retried token is answered from the completed-response cache;
        a token whose first attempt is *still executing* (a retry
        racing its original on another connection) awaits that same
        execution instead of re-applying the mutation.
        """
        cached = self._dedupe_get(token)
        if cached is not None:
            return cached
        key = bytes(token)
        task = self._dedupe_pending.get(key)
        if task is None:
            task = asyncio.ensure_future(apply())
            self._dedupe_pending[key] = task
            try:
                result = await task
            finally:
                del self._dedupe_pending[key]
            self._dedupe_put(token, Opcode(result[0]), result[1])
            return result
        self.stats.dedupe_hits += 1
        obs.inc("net_dedupe_hits_total",
                help="mutations answered from the idempotency cache")
        return await asyncio.shield(task)

    def _dedupe_get(self, token: bytes) -> Optional[Tuple[int, bytes]]:
        cached = self._dedupe.get(bytes(token))
        if cached is not None:
            self.stats.dedupe_hits += 1
            obs.inc("net_dedupe_hits_total",
                    help="mutations answered from the idempotency cache")
        return cached

    def _dedupe_put(self, token: bytes, opcode: Opcode,
                    payload: bytes) -> None:
        self._dedupe[bytes(token)] = (int(opcode), payload)
        while len(self._dedupe) > self.dedupe_capacity:
            self._dedupe.popitem(last=False)

    def _stats_doc(self) -> dict:
        cam = self.service.cam
        service = self.service.stats
        return {
            "server": {
                "connections_active": len(self._connections),
                "connections_opened": self.stats.connections_opened,
                "connections_rejected": self.stats.connections_rejected,
                "frames_in": self.stats.frames_in,
                "frames_out": self.stats.frames_out,
                "bytes_in": self.stats.bytes_in,
                "bytes_out": self.stats.bytes_out,
                "decode_errors": self.stats.decode_errors,
                "requests": self.stats.requests,
                "retry_later": self.stats.retry_later,
                "dedupe_hits": self.stats.dedupe_hits,
                "draining": self._draining,
                "per_opcode": dict(self.stats.per_opcode),
            },
            "service": {
                "admitted": service.admitted,
                "completed": service.completed,
                "ok": service.ok,
                "timeouts": service.timeouts,
                "shard_failures": service.shard_failures,
                "client_errors": service.client_errors,
                "rejected": service.rejected,
                "mean_batch_occupancy": service.mean_batch_occupancy,
            },
            "cam": {
                "engine": cam.engine_name,
                "shards": cam.num_shards,
                "capacity": cam.capacity,
                "occupancy": cam.occupancy,
                "cycle": cam.cycle,
                "poisoned_shards": list(cam.poisoned_shards),
            },
        }


__all__ = ["CamServer", "ServerStats"]
