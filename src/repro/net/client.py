"""Pipelined network client for the CAM server.

:class:`CamClient` multiplexes concurrent requests over a small pool
of TCP connections: every request gets a connection-local request id,
the frame is written immediately (no lock-step request/response), and
a reader task per connection resolves the matching future when the
response arrives -- so hundreds of requests can be in flight at once
over one socket, which is what buys the >= 5x throughput over a naive
one-request-per-round-trip client (``benchmarks/
bench_net_throughput.py``).

Failure handling:

- **connection loss** -- every future pending on the dead connection
  fails with :class:`~repro.errors.ConnectionLostError`; the request
  layer reconnects and retries with exponential backoff up to
  ``max_retries`` times. Mutations reuse their idempotency token on
  every attempt, so a retry the server already applied is answered
  from its dedupe cache -- exactly-once, zero lost or duplicated
  updates;
- **server drain** -- ``RETRY_LATER`` error frames are retried the
  same way (the server is restarting or handing off);
- **timeouts** -- a response not seen within ``request_timeout_s``
  fails the attempt with
  :class:`~repro.errors.RequestTimeoutError` and is retried
  (idempotency makes this safe for mutations too).

Responses are surfaced as the *same*
:class:`~repro.service.scheduler.ServiceResponse` dataclass the
in-process service returns, rebuilt bit-identically from the wire
(raw match vectors travel whole), so code written against
:class:`CamService` ports to the network client by changing only the
constructor -- and the equivalence suite can diff the two paths
directly.

Set ``pipelined=False`` for the deliberately naive baseline: one
request per round trip per connection (used by the benchmark and the
loadgen's closed-loop baseline mode).
"""

from __future__ import annotations

import asyncio
import itertools
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.session import UpdateStats
from repro.core.types import SearchResult
from repro.errors import (
    ConfigError,
    ConnectionLostError,
    NetError,
    ProtocolError,
    RequestTimeoutError,
    ServiceDrainingError,
    ServiceOverloadError,
)
from repro.net import protocol
from repro.net.protocol import Frame, FrameDecoder, Opcode
from repro.service.scheduler import ServiceResponse
from repro.service.snapshot import CamSnapshot

_READ_CHUNK = 64 * 1024

#: Errors that mark an *attempt* as failed but the request retryable.
_RETRYABLE = (ConnectionLostError, RequestTimeoutError,
              ServiceDrainingError, ServiceOverloadError)


class _Connection:
    """One pooled socket plus its demultiplexing reader task."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 max_frame_size: int) -> None:
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder(max_frame_size=max_frame_size)
        self.pending: Dict[int, "asyncio.Future[Frame]"] = {}
        self.ids = itertools.count(1)
        self.task: Optional[asyncio.Task] = None
        self.closed = False

    def fail_all(self, exc: BaseException) -> None:
        for future in self.pending.values():
            if not future.done():
                future.set_exception(exc)
        self.pending.clear()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass
        self.fail_all(ConnectionLostError("connection closed"))


class CamClient:
    """Connection-pooled, pipelined client for :class:`CamServer`.

    ::

        async with CamClient(host, port, pool_size=2) as client:
            await client.insert([7, 42, 99])
            response = await client.lookup(42)
            assert response.result.hit

    Thread-unsafe by design (one event loop); share by task, not by
    thread.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 1,
        pipelined: bool = True,
        request_timeout_s: float = 10.0,
        max_retries: int = 3,
        backoff_s: float = 0.02,
        backoff_max_s: float = 0.5,
        max_frame_size: int = protocol.MAX_FRAME_SIZE,
    ) -> None:
        if pool_size < 1:
            raise ConfigError(f"pool_size must be >= 1, got {pool_size}")
        if request_timeout_s <= 0:
            raise ConfigError(
                f"request_timeout_s must be > 0, got {request_timeout_s}"
            )
        if max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if backoff_s <= 0 or backoff_max_s < backoff_s:
            raise ConfigError(
                "backoff must satisfy 0 < backoff_s <= backoff_max_s, "
                f"got {backoff_s} / {backoff_max_s}"
            )
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.pipelined = pipelined
        self.request_timeout_s = request_timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.max_frame_size = max_frame_size
        self.retries = 0
        self.kills = 0
        self._pool: List[Optional[_Connection]] = [None] * pool_size
        self._turn = itertools.count()
        self._serial = asyncio.Lock() if not pipelined else None
        self._closed = False
        self._reader_tasks: set = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> None:
        """Eagerly open every pooled connection (optional; requests
        open lazily on demand)."""
        for index in range(self.pool_size):
            await self._connection(index)

    async def close(self) -> None:
        self._closed = True
        for conn in self._pool:
            if conn is not None:
                conn.close()
        # Reap every reader task ever started, including those whose
        # connection was killed and replaced mid-run.
        for task in list(self._reader_tasks):
            task.cancel()
        if self._reader_tasks:
            await asyncio.gather(*self._reader_tasks,
                                 return_exceptions=True)
        self._reader_tasks.clear()
        self._pool = [None] * self.pool_size

    async def __aenter__(self) -> "CamClient":
        await self.connect()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def kill_connections(self) -> None:
        """Abruptly sever every open connection (fault injection for
        tests and the loadgen's ``--kill-after`` chaos knob); the next
        request transparently reconnects and retries."""
        self.kills += 1
        for conn in self._pool:
            if conn is not None:
                conn.close()

    # ------------------------------------------------------------------
    # public request API
    # ------------------------------------------------------------------
    async def lookup(self, key: int) -> ServiceResponse:
        """Search one key (see :meth:`lookup_many` for batches)."""
        return (await self.lookup_many([key]))[0]

    async def lookup_many(self, keys: Sequence[int]) -> List[ServiceResponse]:
        """Search a batch of keys carried in one frame."""
        frame = await self._request(
            Opcode.LOOKUP, protocol.encode_lookup([int(k) for k in keys])
        )
        return [
            ServiceResponse(kind="lookup", status=status, result=result)
            for status, result in self._expect_results(frame, len(keys))
        ]

    async def insert(self, words: Sequence[int]) -> ServiceResponse:
        """Store a batch of words; exactly-once across retries."""
        payload = protocol.encode_mutation(
            os.urandom(protocol.TOKEN_SIZE), [int(w) for w in words]
        )
        frame = await self._request(Opcode.INSERT, payload)
        if frame.opcode is not Opcode.UPDATED:
            raise ProtocolError(
                f"expected UPDATED, got {frame.opcode.name}"
            )
        status, stats = protocol.decode_update_ack(frame.payload)
        return ServiceResponse(kind="insert", status=status, stats=stats)

    async def delete(self, key: int) -> ServiceResponse:
        """Delete-by-content; exactly-once across retries."""
        payload = protocol.encode_mutation(
            os.urandom(protocol.TOKEN_SIZE), [int(key)]
        )
        frame = await self._request(Opcode.DELETE, payload)
        status, result = self._expect_results(frame, 1)[0]
        return ServiceResponse(kind="delete", status=status, result=result)

    async def ping(self, payload: bytes = b"") -> float:
        """Round-trip a PING; returns the wall-clock RTT in seconds."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        frame = await self._request(Opcode.PING, payload)
        if frame.opcode is not Opcode.PONG or frame.payload != payload:
            raise ProtocolError("PONG payload mismatch")
        return loop.time() - started

    async def stats(self) -> dict:
        """The server's stats document (server/service/cam sections)."""
        frame = await self._request(Opcode.STATS, b"")
        if frame.opcode is not Opcode.STATS_DATA:
            raise ProtocolError(
                f"expected STATS_DATA, got {frame.opcode.name}"
            )
        return protocol.decode_stats(frame.payload)

    async def snapshot(self) -> CamSnapshot:
        """The server CAM's full content snapshot (binary codec)."""
        frame = await self._request(Opcode.SNAPSHOT, b"")
        if frame.opcode is not Opcode.SNAPSHOT_DATA:
            raise ProtocolError(
                f"expected SNAPSHOT_DATA, got {frame.opcode.name}"
            )
        return CamSnapshot.from_binary(frame.payload)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _expect_results(
        self, frame: Frame, count: int
    ) -> List[Tuple[str, SearchResult]]:
        if frame.opcode is not Opcode.RESULT:
            raise ProtocolError(
                f"expected RESULT, got {frame.opcode.name}"
            )
        results = protocol.decode_results(frame.payload)
        if len(results) != count:
            raise ProtocolError(
                f"RESULT carries {len(results)} entries, expected {count}"
            )
        return results

    async def _connection(self, index: int) -> _Connection:
        conn = self._pool[index]
        if conn is not None and not conn.closed:
            return conn
        reader, writer = await asyncio.open_connection(self.host, self.port)
        conn = _Connection(reader, writer, self.max_frame_size)
        conn.task = asyncio.ensure_future(self._reader_loop(conn))
        self._reader_tasks.add(conn.task)
        conn.task.add_done_callback(self._reader_tasks.discard)
        self._pool[index] = conn
        return conn

    async def _reader_loop(self, conn: _Connection) -> None:
        while True:
            try:
                data = await conn.reader.read(_READ_CHUNK)
            except (ConnectionError, OSError):
                data = b""
            if not data:
                conn.fail_all(ConnectionLostError(
                    f"server {self.host}:{self.port} closed the connection"
                ))
                conn.close()
                return
            try:
                frames = conn.decoder.feed(data)
            except ProtocolError as exc:
                conn.fail_all(exc)
                conn.close()
                return
            for frame in frames:
                future = conn.pending.pop(frame.request_id, None)
                if future is not None and not future.done():
                    future.set_result(frame)
                # Unmatched ids: a response for an attempt we already
                # abandoned (timed out and retried) -- drop it.

    async def _request(self, opcode: Opcode, payload: bytes) -> Frame:
        """Send one request with retry-with-backoff; returns the
        response frame (ERROR frames are raised as their mapped
        exception)."""
        if self._closed:
            raise NetError("client is closed")
        if self._serial is not None:
            async with self._serial:
                return await self._request_with_retries(opcode, payload)
        return await self._request_with_retries(opcode, payload)

    async def _request_with_retries(self, opcode: Opcode,
                                    payload: bytes) -> Frame:
        delay = self.backoff_s
        last: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.retries += 1
                obs.inc("net_client_retries_total",
                        help="request attempts after the first",
                        opcode=opcode.name.lower())
                await asyncio.sleep(delay)
                delay = min(delay * 2, self.backoff_max_s)
            try:
                return await self._attempt(opcode, payload)
            except _RETRYABLE as exc:
                last = exc
                continue
        raise NetError(
            f"{opcode.name} failed after {self.max_retries + 1} attempts: "
            f"{last}"
        ) from last

    async def _attempt(self, opcode: Opcode, payload: bytes) -> Frame:
        index = next(self._turn) % self.pool_size
        try:
            conn = await self._connection(index)
        except (ConnectionError, OSError) as exc:
            raise ConnectionLostError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        request_id = next(conn.ids) & 0xFFFFFFFF
        future: "asyncio.Future[Frame]" = (
            asyncio.get_running_loop().create_future()
        )
        conn.pending[request_id] = future
        blob = protocol.encode_frame(opcode, request_id, payload)
        try:
            conn.writer.write(blob)
            await conn.writer.drain()
        except (ConnectionError, OSError) as exc:
            conn.pending.pop(request_id, None)
            conn.close()
            raise ConnectionLostError(str(exc)) from exc
        try:
            frame = await asyncio.wait_for(future, self.request_timeout_s)
        except asyncio.TimeoutError:
            conn.pending.pop(request_id, None)
            raise RequestTimeoutError(
                f"no response to {opcode.name} within "
                f"{self.request_timeout_s}s"
            ) from None
        if frame.opcode is Opcode.ERROR:
            code, message = protocol.decode_error(frame.payload)
            raise protocol.exception_for(code, message)
        return frame


__all__ = ["CamClient"]
