"""Application case studies built on the CAM library."""
