"""Cycle-cost model of the merge-based triangle-counting baseline.

This models the AMD Vitis Graph L2 triangle-count kernel the paper
compares against (its Table IX "Baseline" column): a fine-grained
pipeline that loads the two oriented adjacency lists of every edge and
merge-intersects them at one comparison per cycle. Per edge the kernel
spends

    max(n + m  [merge steps, II=1],  ceil((n + m)/W) [list load beats])
    + c_edge   [offset/length fetches, pipeline bubbles]

cycles, where W is the words-per-beat of the single DDR channel both
designs are restricted to. The merge term dominates on every real
graph, which is exactly the sequential bottleneck the paper attacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fabric.timing import TARGET_FREQUENCY_MHZ
from repro.graph.csr import CSRGraph
from repro.graph.triangles import per_edge_full_lengths
from repro.mem.bus import StreamBus
from repro.mem.ddr import U250_SINGLE_CHANNEL, DdrChannel


@dataclass(frozen=True)
class TcCost:
    """Cost summary of one triangle-counting run."""

    edges: int
    total_cycles: int
    frequency_mhz: float
    per_edge_mean: float

    @property
    def time_ms(self) -> float:
        return self.total_cycles / (self.frequency_mhz * 1e3)


@dataclass(frozen=True)
class MergeTriangleCounter:
    """Vectorised cost model of the merge-based TC accelerator.

    ``edge_overhead_cycles`` covers the per-edge offset/length fetches
    and pipeline bubbles of the fine-grained kernel; the default was
    chosen once against the published roadNet baseline times (where the
    overhead dominates because the lists are tiny) and then left fixed
    across all datasets.
    """

    frequency_mhz: float = TARGET_FREQUENCY_MHZ
    bus: StreamBus = StreamBus(width_bits=512, word_bits=32)
    channel: DdrChannel = U250_SINGLE_CHANNEL
    edge_overhead_cycles: int = 10

    def cost(self, graph: CSRGraph) -> TcCost:
        """Total kernel cycles over every oriented edge of ``graph``."""
        longer, shorter = per_edge_full_lengths(graph)
        if longer.size == 0:
            return TcCost(0, 0, self.frequency_mhz, 0.0)
        merge_steps = longer + shorter
        words_per_beat = self.bus.words_per_beat
        load_beats = -(-(longer + shorter) // words_per_beat)
        per_edge = np.maximum(merge_steps, load_beats) + self.edge_overhead_cycles
        total = int(per_edge.sum())
        return TcCost(
            edges=int(longer.size),
            total_cycles=total,
            frequency_mhz=self.frequency_mhz,
            per_edge_mean=float(per_edge.mean()),
        )
