"""Cycle-cost model of the CAM-based triangle-counting accelerator.

This is the vectorised performance model of the paper's figure-6
system, configured exactly like section V-B: a 2K-entry binary CAM unit
(16 blocks of 128 cells, 32-bit data, 512-bit bus, priority encoding)
inside a single SLR on a single DDR channel. Per oriented edge with
longer list *m* and shorter list *n*:

- the longer list streams into the CAM: ``ceil(m / 16)`` update beats
  (16 words per 512-bit beat, initiation interval 1);
- the unit regroups so the list's blocks replicate across
  ``M = 16 // ceil(m / 128)`` groups (a list shorter than 128 still
  occupies a whole block -- the paper's "easy implementation" note),
  and the shorter list streams through as multi-query search beats:
  ``ceil(n / M)`` cycles;
- list loading from DDR costs ``ceil((n + m) / 16)`` interface beats.

Updates and searches use separate datapaths and consecutive edges are
double-buffered across the group pair, so the three terms overlap; the
per-edge cost is their maximum plus a fixed ``edge_overhead_cycles``
for the offset/length fetches and the group switch-over. Lists longer
than the CAM capacity are tiled through in full-unit passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import UnitConfig, unit_for_entries
from repro.fabric.timing import unit_frequency_mhz
from repro.graph.csr import CSRGraph
from repro.graph.triangles import per_edge_full_lengths
from repro.mem.bus import StreamBus
from repro.mem.ddr import U250_SINGLE_CHANNEL, DdrChannel


def _case_study_config() -> UnitConfig:
    return unit_for_entries(
        2048, block_size=128, data_width=32, bus_width=512, default_groups=1
    )


@dataclass(frozen=True)
class CamTcCost:
    """Cost summary of one CAM-accelerated triangle-counting run."""

    edges: int
    total_cycles: int
    frequency_mhz: float
    per_edge_mean: float
    tiled_edges: int

    @property
    def time_ms(self) -> float:
        return self.total_cycles / (self.frequency_mhz * 1e3)


@dataclass(frozen=True)
class CamTriangleCounter:
    """Vectorised cost model of the CAM-based TC accelerator."""

    config: UnitConfig = field(default_factory=_case_study_config)
    bus: StreamBus = StreamBus(width_bits=512, word_bits=32)
    channel: DdrChannel = U250_SINGLE_CHANNEL
    edge_overhead_cycles: int = 5

    @property
    def frequency_mhz(self) -> float:
        return unit_frequency_mhz(self.config.total_entries, self.config.data_width)

    def _groups_lookup(self) -> np.ndarray:
        """M for every blocks-per-list value 1..num_blocks (divisors)."""
        num_blocks = self.config.num_blocks
        lookup = np.ones(num_blocks + 1, dtype=np.int64)
        for blocks_per_list in range(1, num_blocks + 1):
            m = max(1, num_blocks // blocks_per_list)
            while num_blocks % m:
                m -= 1
            lookup[blocks_per_list] = m
        return lookup

    def cost(self, graph: CSRGraph) -> CamTcCost:
        """Total accelerator cycles over every oriented edge."""
        longer, shorter = per_edge_full_lengths(graph)
        if longer.size == 0:
            return CamTcCost(0, 0, self.frequency_mhz, 0.0, 0)

        block_size = self.config.block.block_size
        capacity = self.config.total_entries
        words_per_beat = self.bus.words_per_beat
        num_blocks = self.config.num_blocks
        lookup = self._groups_lookup()

        per_edge = np.zeros(longer.size, dtype=np.int64)

        # --- single-pass edges (longer list fits in the unit) ----------
        fits = longer <= capacity
        m = longer[fits]
        n = shorter[fits]
        blocks_per_list = np.clip(-(-m // block_size), 1, num_blocks)
        groups = lookup[blocks_per_list]
        update_beats = -(-m // words_per_beat)
        search_cycles = -(-n // groups)
        load_beats = -(-(m + n) // words_per_beat)
        # An edge's searches depend on its own update completing (the
        # unit holds one content set), so update and search serialise
        # within an edge; only the DDR stream overlaps them.
        per_edge[fits] = (
            np.maximum(update_beats + search_cycles, load_beats)
            + self.edge_overhead_cycles
        )

        # --- tiled edges (longer list exceeds the unit) ----------------
        tiled = ~fits
        if tiled.any():
            m = longer[tiled]
            n = shorter[tiled]
            passes = -(-m // capacity)
            # Each pass fills the whole unit (M = 1) and replays every
            # shorter-list key against it.
            pass_update = capacity // words_per_beat
            pass_cost = pass_update + n
            load_beats = -(-(m + passes * n) // words_per_beat)
            per_edge[tiled] = (
                np.maximum(passes * pass_cost, load_beats)
                + passes * self.edge_overhead_cycles
            )

        total = int(per_edge.sum())
        return CamTcCost(
            edges=int(longer.size),
            total_cycles=total,
            frequency_mhz=self.frequency_mhz,
            per_edge_mean=float(per_edge.mean()),
            tiled_edges=int(tiled.sum()),
        )
