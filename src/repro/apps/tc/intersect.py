"""Set-intersection engines (paper section V-A).

Two functionally-equivalent engines, mirroring the two accelerators:

- :func:`merge_intersect` -- the baseline's sorted two-pointer merge,
  O(n + m) comparisons, inherently sequential.
- :class:`CamIntersector` -- the paper's approach: load the longer list
  into a real (cycle-accurate) CAM unit, stream the shorter list as
  search keys, O(n) searches answered in parallel across groups.

The CAM engine runs on the actual :class:`repro.core.CamSession`, so
tests can prove the accelerator's datapath computes the same
intersections the merge does -- the functional half of Table IX. The
*performance* half lives in the vectorised cost models next door.
``engine="batch"`` swaps in the vectorized fast path (identical
results and cycle counts, orders of magnitude faster wall-clock) and
``engine="audit"`` adds continuous differential verification against
the cycle-accurate model; see :mod:`repro.core.batch`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro import obs
from repro.core import CamType, open_session, unit_for_entries
from repro.errors import CapacityError


def merge_intersect(a: Sequence[int], b: Sequence[int]) -> Tuple[int, int]:
    """Two-pointer merge intersection of two sorted sequences.

    Returns ``(common_count, comparison_steps)`` -- the steps are the
    cycle count of the baseline's II=1 merge pipeline for this pair.
    """
    i = j = common = steps = 0
    while i < len(a) and j < len(b):
        steps += 1
        if a[i] == b[j]:
            common += 1
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return common, steps


class CamIntersector:
    """Cycle-accurate CAM-backed set intersection.

    Configured like the case study (section V-B): binary cells, 32-bit
    data, block size 128, priority encoding, 512-bit bus -- but sized
    down by default so tests stay fast. The group count is chosen per
    pair from the longer list's length, exactly like the accelerator's
    runtime regrouping.

    ``shards > 1`` swaps the single unit for a
    :class:`~repro.service.sharded.ShardedCam` of that many units
    (``total_entries`` each): the stored list is hash-partitioned and
    each streamed key only probes the shard that could hold it --
    bank-level parallelism instead of regrouping.
    """

    def __init__(
        self,
        *,
        total_entries: int = 512,
        block_size: int = 128,
        data_width: int = 32,
        bus_width: int = 512,
        engine: str = "cycle",
        shards: int = 1,
        shard_policy="hash",
        **session_kwargs,
    ) -> None:
        self.config = unit_for_entries(
            total_entries,
            block_size=block_size,
            data_width=data_width,
            bus_width=bus_width,
            cam_type=CamType.BINARY,
            default_groups=1,
        )
        self.engine = engine
        self.shards = shards
        self.session = open_session(self.config, engine=engine,
                                    shards=shards, policy=shard_policy,
                                    **session_kwargs)
        self.block_size = block_size
        self.num_blocks = self.config.num_blocks

    # ------------------------------------------------------------------
    def groups_for(self, longer_len: int) -> int:
        """The paper's policy: a list occupies whole blocks; the rest of
        the unit replicates it so M = num_blocks // blocks_per_list
        queries run concurrently (a short list still takes one block)."""
        blocks_per_list = max(1, -(-longer_len // self.block_size))
        m = max(1, self.num_blocks // blocks_per_list)
        # M must divide the block count (routing constraint).
        while self.num_blocks % m:
            m -= 1
        return m

    def intersect(
        self, list_a: Sequence[int], list_b: Sequence[int]
    ) -> Tuple[int, int]:
        """Count common elements; returns ``(common, simulated_cycles)``.

        The longer list is stored (replicated across groups), the
        shorter streams through as multi-query search beats.
        """
        longer, shorter = (list_a, list_b) if len(list_a) >= len(list_b) else (list_b, list_a)
        longer = [int(v) for v in longer]
        shorter = [int(v) for v in shorter]
        if not longer or not shorter:
            return 0, 0
        # Group-independent bound: replicated groups shrink the session's
        # *visible* capacity, but the upcoming set_groups() picks m to fit.
        capacity = self.config.total_entries * self.shards
        if len(longer) > capacity:
            raise CapacityError(
                f"longer list ({len(longer)}) exceeds the CAM capacity "
                f"({capacity}); tile it first"
            )
        with obs.span("tc.intersect", engine=self.engine,
                      stored=len(longer), streamed=len(shorter)) as span:
            start = self.session.cycle
            # One shard parallelises by regrouping (multi-query); a
            # sharded backend parallelises by partitioning instead, so
            # each shard keeps a single group.
            m = 1
            if self.shards == 1:
                m = self.groups_for(len(longer))
                self.session.set_groups(m)
            self.session.update(longer)
            results = self.session.search(shorter)
            common = sum(1 for result in results if result.hit)
            cycles = self.session.cycle - start
            self.session.reset()
            span.set(groups=m, common=common, cycles=cycles)
        if obs.enabled():
            obs.inc("tc_intersections_total",
                    help="CAM-backed set intersections executed",
                    engine=self.engine)
            obs.inc("tc_intersection_matches_total", common,
                    engine=self.engine)
            obs.observe("tc_intersection_cycles", cycles,
                        help="simulated cycles per set intersection",
                        engine=self.engine)
        return common, cycles


def numpy_intersect_count(a: np.ndarray, b: np.ndarray) -> int:
    """Reference intersection size for verification."""
    return int(np.intersect1d(a, b).size)
