"""End-to-end cycle-accurate triangle-counting system (figure 6).

Unlike the vectorised cost models (which estimate Table IX at SNAP
scale), this module *executes* the accelerator's dataflow on the real
simulated hardware for small graphs: for every oriented edge it stalls
for the DDR fetch of both adjacency lists, regroups the CAM to the
longer list, streams the list in as update beats, streams the shorter
list through as multi-query search beats, and accumulates matches --
every cycle accounted for by the simulator, every match produced by
actual DSP-cell comparisons.

It is the strongest correctness artefact of the case study: the count
it produces must equal the reference triangle count exactly, while its
cycle total grounds the cost model's assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.apps.tc.intersect import CamIntersector
from repro.errors import CapacityError
from repro.graph.csr import CSRGraph
from repro.mem.bus import StreamBus
from repro.mem.ddr import U250_SINGLE_CHANNEL, DdrChannel


@dataclass(frozen=True)
class SystemRun:
    """Result of one cycle-accurate system execution."""

    triangles: int
    total_cycles: int
    compute_cycles: int
    memory_stall_cycles: int
    edges_processed: int
    edges_skipped: int
    frequency_mhz: float

    @property
    def time_us(self) -> float:
        return self.total_cycles / self.frequency_mhz

    @property
    def cycles_per_edge(self) -> float:
        if not self.edges_processed:
            return 0.0
        return self.total_cycles / self.edges_processed


def simulate_system(
    graph: CSRGraph,
    total_entries: int = 512,
    block_size: int = 128,
    channel: DdrChannel = U250_SINGLE_CHANNEL,
    frequency_mhz: float = 300.0,
    max_edges: Optional[int] = None,
    engine: str = "cycle",
) -> SystemRun:
    """Run the figure-6 dataflow on the cycle-accurate CAM.

    Edges whose longer list exceeds the CAM capacity are skipped (and
    reported) rather than tiled -- the tiling path is exercised by the
    cost model; this executable is about exactness on the common path.
    ``engine="batch"`` runs the identical dataflow on the vectorized
    fast path (same cycle totals, much faster wall-clock);
    ``engine="audit"`` adds sampled differential checking.
    """
    intersector = CamIntersector(total_entries=total_entries,
                                 block_size=block_size, engine=engine)
    session = intersector.session
    bus = StreamBus(width_bits=channel.interface_bits,
                    word_bits=session.config.data_width)

    oriented = graph.oriented()
    src, dst = oriented.edge_endpoints()
    triangles = 0
    memory_stalls = 0
    processed = 0
    skipped = 0

    edges = list(zip(src.tolist(), dst.tolist()))
    if max_edges is not None:
        edges = edges[:max_edges]

    with obs.span("tc.system", engine=engine, edges=len(edges)) as run_span:
        for u, v in edges:
            list_u = oriented.neighbors(u).tolist()
            list_v = oriented.neighbors(v).tolist()
            if not list_u or not list_v:
                processed += 1
                continue
            if max(len(list_u), len(list_v)) > total_entries:
                skipped += 1
                continue

            # DDR fetch of both lists plus the two offset/length words.
            with obs.span("tc.fetch_lists",
                          words=len(list_u) + len(list_v) + 4):
                fetch_bytes = bus.bytes_for_words(
                    len(list_u) + len(list_v) + 4
                )
                stall = channel.stream_cycles(fetch_bytes, frequency_mhz)
                session.idle(stall)
                memory_stalls += stall

            common, _cycles = intersector.intersect(list_u, list_v)
            triangles += common
            processed += 1
        run_span.set(triangles=triangles, skipped=skipped)

    total = session.cycle
    if obs.enabled():
        obs.inc("tc_edges_processed_total", processed,
                help="oriented edges driven through the system dataflow")
        obs.inc("tc_edges_skipped_total", skipped,
                help="edges skipped for exceeding the CAM capacity")
        obs.inc("tc_triangles_total", triangles,
                help="triangles counted by the system dataflow")
        obs.inc("tc_memory_stall_cycles_total", memory_stalls,
                help="cycles the system stalled on the DDR model")
    return SystemRun(
        triangles=triangles,
        total_cycles=total,
        compute_cycles=total - memory_stalls,
        memory_stall_cycles=memory_stalls,
        edges_processed=processed,
        edges_skipped=skipped,
        frequency_mhz=frequency_mhz,
    )


def check_against_reference(graph: CSRGraph, **kwargs) -> SystemRun:
    """Run the system and assert its count equals the reference count.

    Raises :class:`CapacityError` if any edge had to be skipped (pick a
    larger ``total_entries`` or a smaller graph) and ``AssertionError``
    on a count mismatch. Returns the run on success.
    """
    from repro.graph.triangles import count_triangles

    run = simulate_system(graph, **kwargs)
    if run.edges_skipped:
        raise CapacityError(
            f"{run.edges_skipped} edges exceeded the CAM capacity; the "
            "reference comparison needs full coverage"
        )
    expected = count_triangles(graph)
    assert run.triangles == expected, (
        f"system counted {run.triangles} triangles, reference says "
        f"{expected}"
    )
    return run
