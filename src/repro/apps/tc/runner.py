"""End-to-end Table IX experiment driver.

For each dataset the runner generates the synthetic stand-in, counts
its triangles exactly (the "Triangles" column), evaluates both cost
models, and reports measured vs paper speedups. A functional
cross-check (:func:`verify_functional_equivalence`) drives the real
cycle-accurate CAM on sampled edges to prove the accelerator datapath
computes the same intersections as the merge baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Union

import numpy as np

from repro import obs
from repro.apps.tc.accelerator import CamTriangleCounter
from repro.apps.tc.baseline import MergeTriangleCounter
from repro.apps.tc.intersect import CamIntersector, merge_intersect
from repro.errors import DatasetError
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DatasetSpec, dataset_names, get_dataset
from repro.graph.triangles import count_triangles, count_triangles_matrix


@dataclass(frozen=True)
class TcRow:
    """One Table IX row: measured + paper reference numbers."""

    dataset: str
    scale: float
    vertices: int
    edges: int
    triangles: int
    cam_ms: float
    baseline_ms: float
    paper_cam_ms: float
    paper_baseline_ms: float

    @property
    def speedup(self) -> float:
        return self.baseline_ms / self.cam_ms if self.cam_ms else float("inf")

    @property
    def paper_speedup(self) -> float:
        return self.paper_baseline_ms / self.paper_cam_ms


def _count(graph: CSRGraph) -> int:
    try:
        return count_triangles_matrix(graph)
    except ImportError:  # scipy unavailable: fall back to the merge count
        return count_triangles(graph)


def run_dataset(
    dataset: Union[str, DatasetSpec],
    max_edges: int = 120_000,
    seed: Optional[int] = None,
    cam: Optional[CamTriangleCounter] = None,
    baseline: Optional[MergeTriangleCounter] = None,
) -> TcRow:
    """Run one Table IX row on the dataset's synthetic stand-in."""
    spec = get_dataset(dataset) if isinstance(dataset, str) else dataset
    with obs.span("tc.dataset", name=spec.name, max_edges=max_edges):
        standin = spec.standin(max_edges=max_edges, seed=seed)
        graph = standin.graph
    cam = cam if cam is not None else CamTriangleCounter()
    baseline = baseline if baseline is not None else MergeTriangleCounter()
    with obs.span("tc.cost_model", name=spec.name, accelerator="cam"):
        cam_cost = cam.cost(graph)
    with obs.span("tc.cost_model", name=spec.name, accelerator="merge"):
        merge_cost = baseline.cost(graph)
    obs.inc("tc_rows_total", help="Table IX rows evaluated")
    return TcRow(
        dataset=spec.name,
        scale=standin.scale,
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        triangles=_count(graph),
        cam_ms=cam_cost.time_ms,
        baseline_ms=merge_cost.time_ms,
        paper_cam_ms=spec.paper_time_cam_ms,
        paper_baseline_ms=spec.paper_time_baseline_ms,
    )


def run_all(
    datasets: Optional[Iterable[str]] = None,
    max_edges: int = 120_000,
    seed: Optional[int] = None,
) -> List[TcRow]:
    """Run every Table IX row (paper order)."""
    names = list(datasets) if datasets is not None else dataset_names()
    return [run_dataset(name, max_edges=max_edges, seed=seed) for name in names]


def geometric_mean_speedup(rows: Iterable[TcRow]) -> float:
    """Aggregate speedup the way crossover-heavy tables should be read."""
    speedups = [row.speedup for row in rows]
    if not speedups:
        raise DatasetError("no rows to aggregate")
    return float(np.exp(np.mean(np.log(speedups))))


def arithmetic_mean_speedup(rows: Iterable[TcRow]) -> float:
    """The paper's headline aggregation (it reports the plain average)."""
    speedups = [row.speedup for row in rows]
    if not speedups:
        raise DatasetError("no rows to aggregate")
    return float(np.mean(speedups))


def verify_functional_equivalence(
    graph: CSRGraph,
    sample_edges: int = 16,
    seed: int = 7,
    intersector: Optional[CamIntersector] = None,
    engine: str = "cycle",
) -> int:
    """Drive the real CAM on sampled edges; assert it matches the merge.

    Returns the number of verified edges. Raises ``AssertionError`` on
    the first divergence (this is a verification harness, used by the
    integration tests and the quickstart example). ``engine`` selects
    the CAM execution engine when no ``intersector`` is supplied --
    ``"audit"`` keeps the cross-check honest by differentially
    replaying sampled episodes through the cycle-accurate model.
    """
    rng = np.random.default_rng(seed)
    oriented = graph.oriented()
    src, dst = oriented.edge_endpoints()
    if src.size == 0:
        return 0
    cam = intersector if intersector is not None else CamIntersector(engine=engine)
    picks = rng.choice(src.size, size=min(sample_edges, src.size), replace=False)
    verified = 0
    with obs.span("tc.verify", sampled_edges=int(picks.size)) as span:
        for index in picks:
            u, v = int(src[index]), int(dst[index])
            list_u = oriented.neighbors(u).tolist()
            list_v = oriented.neighbors(v).tolist()
            if max(len(list_u), len(list_v)) > cam.config.total_entries:
                continue
            if not list_u or not list_v:
                continue
            expected, _steps = merge_intersect(sorted(list_u), sorted(list_v))
            got, _cycles = cam.intersect(list_u, list_v)
            assert got == expected, (
                f"CAM intersection diverged on edge ({u}, {v}): "
                f"cam={got} merge={expected}"
            )
            verified += 1
        span.set(verified=verified)
    obs.inc("tc_verified_edges_total", verified,
            help="edges functionally cross-checked CAM vs merge")
    return verified
