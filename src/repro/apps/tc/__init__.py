"""Triangle-counting case study (paper section V)."""

from repro.apps.tc.accelerator import CamTcCost, CamTriangleCounter
from repro.apps.tc.baseline import MergeTriangleCounter, TcCost
from repro.apps.tc.intersect import (
    CamIntersector,
    merge_intersect,
    numpy_intersect_count,
)
from repro.apps.tc.system import SystemRun, check_against_reference, simulate_system
from repro.apps.tc.runner import (
    TcRow,
    arithmetic_mean_speedup,
    geometric_mean_speedup,
    run_all,
    run_dataset,
    verify_functional_equivalence,
)

__all__ = [
    "CamIntersector",
    "CamTcCost",
    "CamTriangleCounter",
    "MergeTriangleCounter",
    "SystemRun",
    "TcCost",
    "TcRow",
    "check_against_reference",
    "simulate_system",
    "arithmetic_mean_speedup",
    "geometric_mean_speedup",
    "merge_intersect",
    "numpy_intersect_count",
    "run_all",
    "run_dataset",
    "verify_functional_equivalence",
]
