"""Range-to-prefix expansion for TCAM/RMCAM rules.

The DSP cell's MASK can only express *aligned power-of-two* ranges
(paper section III-A). Arbitrary port/address ranges therefore have to
be split into a minimal set of aligned chunks -- the classic TCAM
range-expansion problem. :func:`expand_range` implements the greedy
optimal algorithm: repeatedly take the largest aligned block that
starts at the current point and does not overshoot the range end; an
arbitrary W-bit range expands into at most ``2W - 2`` chunks.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.mask import CamEntry, range_entry
from repro.errors import MaskError


def expand_range(start: int, end: int, data_width: int) -> List[Tuple[int, int]]:
    """Split [start, end] into minimal aligned power-of-two chunks.

    Returns ``(chunk_start, chunk_end)`` pairs in ascending order.
    """
    if start < 0 or end < start:
        raise MaskError(f"invalid range [{start}, {end}]")
    if end >> data_width:
        raise MaskError(
            f"range end {end} does not fit in {data_width} bits"
        )
    chunks: List[Tuple[int, int]] = []
    cursor = start
    while cursor <= end:
        # Largest alignment of `cursor`: lowest set bit (or full width
        # when cursor == 0).
        if cursor == 0:
            align = 1 << data_width
        else:
            align = cursor & -cursor
        size = align
        # Shrink until the block fits inside the remaining range.
        while cursor + size - 1 > end:
            size >>= 1
        chunks.append((cursor, cursor + size - 1))
        cursor += size
    return chunks


def range_entries(start: int, end: int, data_width: int) -> List[CamEntry]:
    """CAM entries covering [start, end] exactly (one per chunk)."""
    return [
        range_entry(chunk_start, chunk_end, data_width)
        for chunk_start, chunk_end in expand_range(start, end, data_width)
    ]


def expansion_cost(start: int, end: int, data_width: int) -> int:
    """Number of CAM entries an arbitrary range consumes."""
    return len(expand_range(start, end, data_width))
