"""Longest-prefix-match IPv4 routing on the ternary CAM.

The canonical TCAM application the paper's introduction motivates:
route prefixes become ternary entries (don't-care host bits) and the
priority encoder resolves overlaps. Longest-prefix semantics fall out
of insertion order -- prefixes are kept sorted longest-first, so the
lowest matching address is always the most specific route.

The router runs on the real cycle-accurate :class:`repro.core.CamSession`,
so lookups cost genuine simulated cycles.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core import CamType, open_session, ternary_entry, unit_for_entries
from repro.errors import CapacityError, ConfigError

IPV4_BITS = 32

PrefixLike = Union[str, Tuple[int, int]]


def parse_prefix(prefix: PrefixLike) -> Tuple[int, int]:
    """Normalise '10.1.0.0/16' or (network_int, length) to ints."""
    if isinstance(prefix, str):
        network = ipaddress.ip_network(prefix, strict=True)
        if network.version != 4:
            raise ConfigError(f"only IPv4 prefixes supported, got {prefix!r}")
        return int(network.network_address), network.prefixlen
    network, length = prefix
    if not 0 <= length <= IPV4_BITS:
        raise ConfigError(f"prefix length {length} out of range")
    host_mask = (1 << (IPV4_BITS - length)) - 1
    if network & host_mask:
        raise ConfigError(
            f"prefix {network:#x}/{length} has host bits set"
        )
    return network, length


def parse_address(address: Union[str, int]) -> int:
    """Normalise a dotted-quad or int IPv4 address."""
    if isinstance(address, str):
        return int(ipaddress.ip_address(address))
    if not 0 <= address < (1 << IPV4_BITS):
        raise ConfigError(f"address {address:#x} out of IPv4 range")
    return address


@dataclass(frozen=True)
class Route:
    """One routing-table entry."""

    network: int
    prefix_len: int
    next_hop: str

    @property
    def cidr(self) -> str:
        return f"{ipaddress.ip_address(self.network)}/{self.prefix_len}"


class LpmRouter:
    """TCAM-backed longest-prefix-match router.

    Routes are accumulated with :meth:`add_route` and compiled into the
    CAM with :meth:`compile` (sorted longest-prefix-first so priority
    encodes specificity). Lookups then run on the cycle-accurate CAM.
    """

    def __init__(
        self,
        *,
        capacity: int = 256,
        block_size: int = 64,
        concurrent_lookups: int = 1,
        engine: str = "cycle",
        **session_kwargs,
    ) -> None:
        config = unit_for_entries(
            capacity,
            block_size=block_size,
            data_width=IPV4_BITS,
            bus_width=512,
            cam_type=CamType.TERNARY,
            default_groups=concurrent_lookups,
        )
        self.session = open_session(config, engine=engine, **session_kwargs)
        self._routes: List[Route] = []
        self._table: List[Route] = []
        self._compiled = False

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.session.capacity

    @property
    def num_routes(self) -> int:
        return len(self._routes)

    @property
    def lookup_cycles(self) -> int:
        """Simulated cycles of one lookup (the unit's search latency)."""
        return self.session.search_latency

    # ------------------------------------------------------------------
    def add_route(self, prefix: PrefixLike, next_hop: str) -> Route:
        """Queue a route; call :meth:`compile` before looking up."""
        network, length = parse_prefix(prefix)
        route = Route(network=network, prefix_len=length, next_hop=next_hop)
        self._routes.append(route)
        self._compiled = False
        return route

    def compile(self) -> int:
        """Load the route table into the CAM; returns entries used."""
        if len(self._routes) > self.capacity:
            raise CapacityError(
                f"{len(self._routes)} routes exceed the CAM capacity "
                f"({self.capacity})"
            )
        # Longest prefix first: the priority encoder then returns the
        # most specific matching route.
        self._table = sorted(
            self._routes, key=lambda route: -route.prefix_len
        )
        self.session.reset()
        entries = [
            ternary_entry(
                route.network,
                (1 << (IPV4_BITS - route.prefix_len)) - 1,
                IPV4_BITS,
            )
            for route in self._table
        ]
        if entries:
            self.session.update(entries)
        self._compiled = True
        return len(entries)

    # ------------------------------------------------------------------
    def lookup(self, address: Union[str, int]) -> Optional[Route]:
        """Longest-prefix match one address; None when no route covers it."""
        if not self._compiled:
            raise ConfigError("route table not compiled; call compile()")
        result = self.session.search_one(parse_address(address))
        if not result.hit:
            return None
        return self._table[result.address]

    def lookup_batch(self, addresses) -> List[Optional[Route]]:
        """Pipelined multi-query lookups (one per group per cycle)."""
        if not self._compiled:
            raise ConfigError("route table not compiled; call compile()")
        keys = [parse_address(address) for address in addresses]
        results = self.session.search(keys)
        return [
            self._table[result.address] if result.hit else None
            for result in results
        ]
