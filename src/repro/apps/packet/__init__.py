"""Packet-processing case studies: LPM routing and ACL classification."""

from repro.apps.packet.classifier import (
    ANY,
    KEY_WIDTH,
    Packet,
    PacketClassifier,
    Rule,
    compile_rule,
)
from repro.apps.packet.lpm import (
    IPV4_BITS,
    LpmRouter,
    Route,
    parse_address,
    parse_prefix,
)
from repro.apps.packet.ranges import expand_range, expansion_cost, range_entries

__all__ = [
    "ANY",
    "IPV4_BITS",
    "KEY_WIDTH",
    "LpmRouter",
    "Packet",
    "PacketClassifier",
    "Route",
    "Rule",
    "compile_rule",
    "expand_range",
    "expansion_cost",
    "parse_address",
    "parse_prefix",
    "range_entries",
]
