"""Multi-field packet classification (ACL / firewall) on the TCAM.

Rules match on source prefix, destination prefix, protocol and a
destination-port range; each rule compiles to one or more ternary CAM
entries (port ranges expand via :mod:`repro.apps.packet.ranges` -- the
aligned-power-of-two restriction of the DSP MASK made explicit). The
first matching rule in priority order wins, which is exactly the CAM's
priority-encoded search.

Key layout (48 bits, the full DSP width):

    [47:40] protocol | [39:24] dst port | [23:12] src net | [11:0] dst net

Source/destination networks are folded to 12-bit tags to fit the key;
the fold is injective for the rule sets the examples use and is
documented as a modelling simplification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import obs
from repro.apps.packet.ranges import expand_range
from repro.core import CamType, open_session, unit_for_entries
from repro.core.mask import CamEntry, ternary_entry
from repro.errors import CapacityError, ConfigError

KEY_WIDTH = 48
_PROTO_SHIFT = 40
_PORT_SHIFT = 24
_SRC_SHIFT = 12
_TAG_BITS = 12
_PORT_BITS = 16
_PROTO_BITS = 8

ANY = None  # wildcard marker in rule fields


@dataclass(frozen=True)
class Rule:
    """One classifier rule (None fields are wildcards)."""

    name: str
    action: str
    protocol: Optional[int] = None
    src_tag: Optional[int] = None
    dst_tag: Optional[int] = None
    port_range: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.protocol is not None and not 0 <= self.protocol < 256:
            raise ConfigError(f"protocol {self.protocol} out of range")
        for tag in (self.src_tag, self.dst_tag):
            if tag is not None and not 0 <= tag < (1 << _TAG_BITS):
                raise ConfigError(f"network tag {tag} out of range")
        if self.port_range is not None:
            lo, hi = self.port_range
            if not 0 <= lo <= hi < (1 << _PORT_BITS):
                raise ConfigError(f"bad port range {self.port_range}")


@dataclass(frozen=True)
class Packet:
    """The classified header fields."""

    protocol: int
    src_tag: int
    dst_tag: int
    dst_port: int

    def key(self) -> int:
        return (
            (self.protocol << _PROTO_SHIFT)
            | (self.dst_port << _PORT_SHIFT)
            | (self.src_tag << _SRC_SHIFT)
            | self.dst_tag
        )


def _field_bits(
    value: Optional[int], shift: int, width: int
) -> Tuple[int, int]:
    """(value_bits, dont_care_bits) for one rule field."""
    mask = ((1 << width) - 1) << shift
    if value is None:
        return 0, mask
    return value << shift, 0


def compile_rule(rule: Rule) -> List[CamEntry]:
    """Expand one rule into its CAM entries (1 per port-range chunk)."""
    value = 0
    dont_care = 0
    for field_value, shift, width in (
        (rule.protocol, _PROTO_SHIFT, _PROTO_BITS),
        (rule.src_tag, _SRC_SHIFT, _TAG_BITS),
        (rule.dst_tag, 0, _TAG_BITS),
    ):
        bits, ignore = _field_bits(field_value, shift, width)
        value |= bits
        dont_care |= ignore

    if rule.port_range is None:
        port_chunks = [(None, None)]
    else:
        port_chunks = expand_range(*rule.port_range, data_width=_PORT_BITS)

    entries = []
    for chunk in port_chunks:
        chunk_value, chunk_ignore = value, dont_care
        if chunk == (None, None):
            chunk_ignore |= ((1 << _PORT_BITS) - 1) << _PORT_SHIFT
        else:
            start, end = chunk
            span = end - start  # (2^k - 1): low k bits don't care
            chunk_value |= start << _PORT_SHIFT
            chunk_ignore |= span << _PORT_SHIFT
        entries.append(ternary_entry(chunk_value, chunk_ignore, KEY_WIDTH))
    return entries


class PacketClassifier:
    """Priority-ordered ACL running on the cycle-accurate TCAM."""

    def __init__(
        self,
        *,
        capacity: int = 256,
        block_size: int = 64,
        engine: str = "cycle",
        **session_kwargs,
    ) -> None:
        config = unit_for_entries(
            capacity,
            block_size=block_size,
            data_width=KEY_WIDTH,
            bus_width=512,
            cam_type=CamType.TERNARY,
        )
        self.session = open_session(config, engine=engine, **session_kwargs)
        self._rules: List[Rule] = []
        #: entry address -> rule index (ranges expand to several entries)
        self._entry_rule: List[int] = []

    # ------------------------------------------------------------------
    @property
    def num_rules(self) -> int:
        return len(self._rules)

    @property
    def entries_used(self) -> int:
        return len(self._entry_rule)

    def add_rule(self, rule: Rule) -> int:
        """Append a rule (lowest index = highest priority); returns the
        number of CAM entries it consumed."""
        entries = compile_rule(rule)
        if self.entries_used + len(entries) > self.session.capacity:
            raise CapacityError(
                f"rule {rule.name!r} needs {len(entries)} entries; only "
                f"{self.session.capacity - self.entries_used} left"
            )
        rule_index = len(self._rules)
        self._rules.append(rule)
        self.session.update(entries)
        self._entry_rule.extend([rule_index] * len(entries))
        return len(entries)

    def classify(self, packet: Packet) -> Optional[Rule]:
        """First matching rule in priority order, or None (no match)."""
        result = self.session.search_one(packet.key())
        obs.inc("packet_lookups_total",
                help="packets classified against the TCAM rule set")
        if not result.hit:
            obs.inc("packet_misses_total",
                    help="packets matching no classifier rule")
            return None
        return self._rules[self._entry_rule[result.address]]

    def classify_batch(self, packets) -> List[Optional[Rule]]:
        """Pipelined classification of a packet burst."""
        with obs.span("packet.classify_batch", packets=len(packets)):
            results = self.session.search(
                [packet.key() for packet in packets]
            )
        if obs.enabled():
            obs.inc("packet_lookups_total", len(results))
            obs.inc("packet_misses_total",
                    sum(1 for result in results if not result.hit))
        return [
            self._rules[self._entry_rule[result.address]] if result.hit else None
            for result in results
        ]
