"""Streaming DISTINCT (duplicate elimination) on the CAM.

The update-heavy workload the paper's section II motivates: every
incoming tuple *searches* the CAM and, on a miss, *inserts* itself --
a read-modify-write stream where update latency sits on the critical
path. Designs with slow updates (the transposed LUTRAM/BRAM TCAMs at
38-513 cycles per insert) collapse here; the DSP CAM's balanced
6-cycle update / 7-cycle search is the paper's answer, and the
dynamic-workload ablation bench quantifies exactly that using this
operator.

The implementation is cycle-accurate and hazard-correct: a value's
insert must complete before a later equal value's search (otherwise a
duplicate sneaks in), which :class:`CamDistinct` enforces by issuing
the dependent search only after the insert's ``update_done``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro import obs
from repro.core import CamType, open_session, unit_for_entries
from repro.errors import CapacityError


@dataclass(frozen=True)
class DistinctStats:
    """Cycle accounting of one streaming-distinct execution."""

    input_rows: int
    unique_rows: int
    cycles: int

    @property
    def cycles_per_row(self) -> float:
        return self.cycles / self.input_rows if self.input_rows else 0.0


class CamDistinct:
    """Streaming duplicate eliminator over a cycle-accurate CAM."""

    def __init__(
        self,
        *,
        total_entries: int = 256,
        block_size: int = 64,
        key_width: int = 32,
        engine: str = "cycle",
        **session_kwargs,
    ) -> None:
        self.config = unit_for_entries(
            total_entries,
            block_size=block_size,
            data_width=key_width,
            bus_width=512,
            cam_type=CamType.BINARY,
            default_groups=1,
        )
        self.session = open_session(self.config, engine=engine, **session_kwargs)

    @property
    def capacity(self) -> int:
        return self.config.total_entries

    def distinct(
        self, values: Sequence[int]
    ) -> Tuple[List[int], DistinctStats]:
        """Return the unique values in first-seen order, plus stats.

        Raises :class:`CapacityError` when the distinct set outgrows
        the CAM.
        """
        with obs.span("db.distinct", rows=len(values)) as span:
            start = self.session.cycle
            unique: List[int] = []
            for value in values:
                value = int(value)
                result = self.session.search_one(value)
                if result.hit:
                    continue
                if len(unique) >= self.capacity:
                    raise CapacityError(
                        f"distinct set exceeds the CAM capacity ({self.capacity})"
                    )
                # Dependent insert: completes (update_done) before the next
                # element's search is issued, closing the read-after-write
                # hazard window.
                self.session.update([value])
                unique.append(value)
            stats = DistinctStats(
                input_rows=len(values),
                unique_rows=len(unique),
                cycles=self.session.cycle - start,
            )
            span.set(unique_rows=len(unique))
        if obs.enabled():
            obs.inc("db_distinct_rows_total", stats.input_rows,
                    help="rows streamed through CAM distinct")
            obs.inc("db_distinct_unique_rows_total", stats.unique_rows)
        return unique, stats

    def reset(self) -> None:
        self.session.reset()


def model_distinct_cycles(
    input_rows: int,
    unique_rows: int,
    search_latency: int,
    update_latency: int,
) -> int:
    """Analytic cycle cost of streaming distinct for any CAM design.

    Every row searches; every unique row additionally inserts, and the
    insert is on the dependency path. Used by the dynamic-workload
    ablation to compare design families on equal terms.
    """
    return input_rows * search_latency + unique_rows * update_latency
