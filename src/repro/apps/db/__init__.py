"""Database operators on the CAM: equi-join and streaming distinct."""

from repro.apps.db.distinct import CamDistinct, DistinctStats, model_distinct_cycles
from repro.apps.db.join import CamJoin, JoinStats, reference_join

__all__ = [
    "CamDistinct",
    "CamJoin",
    "DistinctStats",
    "JoinStats",
    "model_distinct_cycles",
    "reference_join",
]
