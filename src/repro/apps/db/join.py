"""Equi-join on the CAM (database query acceleration).

The classic CAM join: store the *build* relation's keys in the CAM,
stream the *probe* relation through as search keys, and read matches
out of the priority encoder -- O(probe) instead of O(build x probe) or
hash-table pointer chasing. Duplicate build keys are handled exactly:
the CAM's match *vector* enumerates every matching entry, so the join
emits one output pair per (probe row, matching build row).

Build sides larger than the CAM tile through in passes, each pass
replaying the probe stream -- the same tiling the triangle-counting
accelerator uses for oversized adjacency lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro import obs
from repro.core import CamType, open_session, unit_for_entries
from repro.errors import ConfigError


@dataclass(frozen=True)
class JoinStats:
    """Cycle accounting of one join execution."""

    build_rows: int
    probe_rows: int
    output_rows: int
    passes: int
    cycles: int


class CamJoin:
    """Equi-join engine over a cycle-accurate binary CAM."""

    def __init__(
        self,
        *,
        total_entries: int = 1024,
        block_size: int = 128,
        key_width: int = 32,
        engine: str = "cycle",
        **session_kwargs,
    ) -> None:
        self.config = unit_for_entries(
            total_entries,
            block_size=block_size,
            data_width=key_width,
            bus_width=512,
            cam_type=CamType.BINARY,
            default_groups=1,
        )
        self.session = open_session(self.config, engine=engine, **session_kwargs)
        self.key_width = key_width

    @property
    def capacity(self) -> int:
        return self.config.total_entries

    def join(
        self,
        build_keys: Sequence[int],
        probe_keys: Sequence[int],
    ) -> Tuple[List[Tuple[int, int]], JoinStats]:
        """Return (probe_index, build_index) pairs plus cycle stats.

        Output order: probe-major within each pass, pass-major across
        tiles; every pair appears exactly once.
        """
        build_keys = [int(key) for key in build_keys]
        probe_keys = [int(key) for key in probe_keys]
        if not build_keys:
            raise ConfigError("join needs a non-empty build side")
        with obs.span("db.join", build=len(build_keys),
                      probe=len(probe_keys)) as span:
            start = self.session.cycle
            pairs: List[Tuple[int, int]] = []
            passes = 0
            for offset in range(0, len(build_keys), self.capacity):
                tile = build_keys[offset:offset + self.capacity]
                self.session.reset()
                self.session.update(tile)
                passes += 1
                if not probe_keys:
                    continue
                results = self.session.search(probe_keys)
                for probe_index, result in enumerate(results):
                    vector = result.match_vector
                    while vector:
                        low = vector & -vector
                        address = low.bit_length() - 1
                        pairs.append((probe_index, offset + address))
                        vector ^= low
            stats = JoinStats(
                build_rows=len(build_keys),
                probe_rows=len(probe_keys),
                output_rows=len(pairs),
                passes=passes,
                cycles=self.session.cycle - start,
            )
            span.set(output_rows=len(pairs), passes=passes)
        if obs.enabled():
            obs.inc("db_joins_total", help="hash-free CAM joins executed")
            obs.inc("db_join_output_rows_total", len(pairs))
            obs.inc("db_join_cycles_total", stats.cycles)
        return pairs, stats


def reference_join(
    build_keys: Sequence[int], probe_keys: Sequence[int]
) -> List[Tuple[int, int]]:
    """Nested-loop golden join with the CAM engine's output order."""
    pairs = []
    for probe_index, probe in enumerate(probe_keys):
        for build_index, build in enumerate(build_keys):
            if probe == build:
                pairs.append((probe_index, build_index))
    return pairs
