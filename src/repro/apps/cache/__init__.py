"""Cache/TLB case study: CAM-based tag matching."""

from repro.apps.cache.tlb import CamTlb, TlbStats

__all__ = ["CamTlb", "TlbStats"]
