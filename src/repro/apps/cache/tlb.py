"""Fully-associative TLB on the binary CAM (cache tag matching).

The background section's first B-CAM application: "cache memory tag
matching where precise data retrieval is essential". A fully
associative translation buffer is the canonical form -- every lookup
compares the virtual page number against all stored tags in one
operation, which is exactly one CAM search.

The translation (data) side lives in a plain array indexed by the
CAM's content address; insertion order gives the FIFO replacement
policy, realised with the delete-by-content extension. Because the
CAM's invalidation leaves holes (cells are reclaimed only by reset),
the TLB *compacts* -- resets and reinserts the live set -- when the
fill pointer reaches capacity with holes outstanding, which is how an
invalidate-only CAM is managed in practice.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import obs
from repro.core import CamType, open_session, unit_for_entries
from repro.errors import ConfigError


@dataclass
class TlbStats:
    """Hit/miss/maintenance counters plus simulated-cycle accounting."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    compactions: int = 0
    cycles: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CamTlb:
    """FIFO fully-associative TLB with CAM tag lookup."""

    def __init__(
        self,
        *,
        entries: int = 64,
        vpn_bits: int = 20,
        block_size: int = 16,
        engine: str = "cycle",
        **session_kwargs,
    ) -> None:
        if not 1 <= vpn_bits <= 48:
            raise ConfigError(f"vpn_bits must be 1..48, got {vpn_bits}")
        self.entries = entries
        self.vpn_bits = vpn_bits
        self.session = open_session(unit_for_entries(
            entries,
            block_size=min(block_size, entries),
            data_width=vpn_bits,
            bus_width=max(128, vpn_bits),
            cam_type=CamType.BINARY,
        ), engine=engine, **session_kwargs)
        #: CAM content address -> physical frame (None = hole).
        self._frames: Dict[int, Optional[int]] = {}
        #: Live vpn -> cam address, in insertion (FIFO) order.
        self._live: "OrderedDict[int, int]" = OrderedDict()
        self.stats = TlbStats()

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Live translations currently resident."""
        return len(self._live)

    @property
    def full(self) -> bool:
        return len(self._live) >= self.entries

    # ------------------------------------------------------------------
    def translate(self, vpn: int) -> Optional[int]:
        """Look a virtual page up; None on a TLB miss."""
        start = self.session.cycle
        result = self.session.search_one(int(vpn))
        self.stats.lookups += 1
        self.stats.cycles += self.session.cycle - start
        if not result.hit:
            self.stats.misses += 1
            obs.inc("tlb_misses_total", help="TLB lookups that missed")
            return None
        self.stats.hits += 1
        obs.inc("tlb_hits_total", help="TLB lookups that hit")
        frame = self._frames.get(result.address)
        assert frame is not None, "CAM hit on an invalidated tag"
        return frame

    def insert(self, vpn: int, frame: int) -> None:
        """Install a translation, evicting FIFO-oldest when full."""
        vpn = int(vpn)
        start = self.session.cycle
        if vpn in self._live:
            # Re-insert: replace the existing mapping (invalidate old).
            self._evict(vpn, count_eviction=False)
        elif self.full:
            oldest_vpn = next(iter(self._live))
            self._evict(oldest_vpn, count_eviction=True)
        if self.session.occupancy >= self.entries:
            self._compact()
        self.session.update([vpn])
        address = self.session.occupancy - 1
        self._frames[address] = int(frame)
        self._live[vpn] = address
        self.stats.insertions += 1
        self.stats.cycles += self.session.cycle - start
        obs.inc("tlb_insertions_total", help="translations installed")

    # ------------------------------------------------------------------
    def _evict(self, vpn: int, count_eviction: bool) -> None:
        address = self._live.pop(vpn)
        self._frames[address] = None
        self.session.delete(vpn)
        if count_eviction:
            self.stats.evictions += 1

    def _compact(self) -> None:
        """Reset the CAM and reinsert the live set (hole reclamation)."""
        live = [(vpn, self._frames[address])
                for vpn, address in self._live.items()]
        self.session.reset()
        self._frames.clear()
        self._live.clear()
        for address, (vpn, frame) in enumerate(live):
            self._frames[address] = frame
            self._live[vpn] = address
        if live:
            self.session.update([vpn for vpn, _frame in live])
        self.stats.compactions += 1

    def flush(self) -> None:
        """Drop every translation (context switch)."""
        self.session.reset()
        self._frames.clear()
        self._live.clear()
