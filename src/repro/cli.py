"""Command-line interface: ``dsp-cam`` / ``python -m repro``.

Subcommands:

- ``info``                       -- library and configuration summary
- ``exhibit {fig1,table1,...}``  -- regenerate a paper table/figure
- ``generate-hdl``               -- emit the Verilog templates
- ``demo``                       -- quick update/search round-trip
- ``tc``                         -- run the triangle-counting case study
- ``audit``                      -- differential equivalence check of the
  vectorized batch engine against the cycle-accurate simulator and the
  golden reference model
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.bench.experiments import ALL_EXHIBITS
from repro.core import CamSession, CamType, unit_for_entries
from repro.errors import ReproError
from repro.graph.datasets import dataset_names
from repro.hdlgen import write_project


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dsp-cam",
        description="Configurable DSP-based CAM for FPGAs (DAC 2025) - "
                    "reference reproduction",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print library and model summary")

    exhibit = sub.add_parser("exhibit", help="regenerate a paper exhibit")
    exhibit.add_argument("name", choices=sorted(ALL_EXHIBITS) + ["all"])
    exhibit.add_argument("--max-edges", type=int, default=60_000,
                         help="stand-in graph size cap for table9")

    hdl = sub.add_parser("generate-hdl", help="emit the Verilog templates")
    hdl.add_argument("--out", default="generated_hdl")
    hdl.add_argument("--entries", type=int, default=2048)
    hdl.add_argument("--block-size", type=int, default=128)
    hdl.add_argument("--data-width", type=int, default=32)
    hdl.add_argument("--bus-width", type=int, default=512)

    demo = sub.add_parser("demo", help="update/search round-trip demo")
    demo.add_argument("--entries", type=int, default=256)
    demo.add_argument("--groups", type=int, default=2)
    demo.add_argument("--engine", choices=["cycle", "batch", "audit"],
                      default="cycle",
                      help="execution engine (see repro.core.batch)")

    tc = sub.add_parser("tc", help="triangle-counting case study")
    tc.add_argument("--dataset", choices=dataset_names() + ["all"],
                    default="all")
    tc.add_argument("--max-edges", type=int, default=60_000)

    audit = sub.add_parser(
        "audit",
        help="prove the batch engine equivalent to the cycle-accurate CAM",
    )
    audit.add_argument("--entries", type=int, default=128)
    audit.add_argument("--block-size", type=int, default=32)
    audit.add_argument("--data-width", type=int, default=16)
    audit.add_argument("--cam-type", choices=["binary", "ternary", "range"],
                       default="binary")
    audit.add_argument("--groups", type=int, default=2)
    audit.add_argument("--operations", type=int, default=200)
    audit.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser("sweep", help="measure a custom size sweep")
    sweep.add_argument("level", choices=["block", "unit"])
    sweep.add_argument("--sizes", default="32,64,128,256",
                       help="comma-separated sizes (cells or entries)")
    sweep.add_argument("--data-width", type=int, default=32)

    vcd = sub.add_parser(
        "vcd", help="run a small traced scenario and dump a VCD waveform"
    )
    vcd.add_argument("--out", default="cam_trace.vcd")
    return parser


def _cmd_info() -> int:
    from repro.fabric import ALVEO_U250
    from repro.fabric.area import provenance as area_note
    from repro.fabric.timing import provenance as timing_note

    print(f"repro {__version__} - DSP-based CAM reproduction (DAC 2025)")
    print(f"target device: {ALVEO_U250.name} "
          f"({ALVEO_U250.capacity.dsp} DSPs, {ALVEO_U250.capacity.lut} LUTs)")
    print(area_note())
    print(timing_note())
    print("exhibits:", ", ".join(sorted(ALL_EXHIBITS)))
    return 0


def _cmd_exhibit(name: str, max_edges: int) -> int:
    names = sorted(ALL_EXHIBITS) if name == "all" else [name]
    for exhibit_name in names:
        builder = ALL_EXHIBITS[exhibit_name]
        if exhibit_name == "table9":
            table = builder(max_edges=max_edges)
        else:
            table = builder()
        print(table.render())
        print()
    return 0


def _cmd_generate_hdl(args: argparse.Namespace) -> int:
    config = unit_for_entries(
        args.entries,
        block_size=args.block_size,
        data_width=args.data_width,
        bus_width=args.bus_width,
    )
    written = write_project(config, args.out)
    for name, path in written.items():
        print(f"wrote {path}")
    print(f"configuration: {config.num_blocks} blocks x "
          f"{config.block.block_size} cells, {config.data_width}-bit data")
    return 0


def _cmd_demo(entries: int, groups: int, engine: str = "cycle") -> int:
    session = CamSession(unit_for_entries(
        entries, block_size=64, data_width=32, default_groups=groups,
        cam_type=CamType.BINARY,
    ), engine=engine)
    print(f"engine: {session.engine_name}")
    stored = list(range(100, 100 + min(entries // groups, 64)))
    session.update(stored)
    print(f"stored {len(stored)} words in {session.last_update_stats.cycles} cycles")
    probes = [stored[0], stored[-1], 99999]
    results = session.search(probes)
    for probe, result in zip(probes, results):
        print(f"  search {probe}: hit={result.hit} address={result.address}")
    print(f"search of {len(probes)} keys took "
          f"{session.last_search_stats.cycles} cycles "
          f"({groups} concurrent queries/cycle)")
    return 0


def _cmd_tc(dataset: str, max_edges: int) -> int:
    from repro.apps.tc import arithmetic_mean_speedup, run_all, run_dataset

    if dataset == "all":
        rows = run_all(max_edges=max_edges)
    else:
        rows = [run_dataset(dataset, max_edges=max_edges)]
    print(f"{'dataset':20s} {'edges':>9s} {'triangles':>10s} "
          f"{'ours ms':>9s} {'base ms':>9s} {'speedup':>7s} {'paper':>6s}")
    for row in rows:
        print(f"{row.dataset:20s} {row.edges:9d} {row.triangles:10d} "
              f"{row.cam_ms:9.3f} {row.baseline_ms:9.3f} "
              f"{row.speedup:7.2f} {row.paper_speedup:6.2f}")
    if len(rows) > 1:
        print(f"average speedup: {arithmetic_mean_speedup(rows):.2f} "
              "(paper: 4.92)")
    return 0


def _cmd_sweep(level: str, sizes_csv: str, data_width: int) -> int:
    from repro.core import measure_block, measure_unit_performance

    sizes = [int(token) for token in sizes_csv.split(",") if token.strip()]
    if level == "block":
        print(f"{'size':>6s} {'upd cy':>6s} {'srch cy':>7s} "
              f"{'LUT':>6s} {'DSP':>6s} {'MHz':>5s}")
        for size in sizes:
            report = measure_block(size, data_width=data_width)
            print(f"{size:6d} {report.update_latency:6d} "
                  f"{report.search_latency:7d} {report.resources.lut:6d} "
                  f"{report.resources.dsp:6d} {report.frequency_mhz:5.0f}")
    else:
        print(f"{'entries':>8s} {'upd cy':>6s} {'srch cy':>7s} "
              f"{'upd Mop/s':>9s} {'srch Mop/s':>10s}")
        for size in sizes:
            report = measure_unit_performance(
                size, block_size=min(128, size), data_width=data_width
            )
            print(f"{size:8d} {report.update_latency:6d} "
                  f"{report.search_latency:7d} "
                  f"{report.update_throughput_mops:9.0f} "
                  f"{report.search_throughput_mops:10.0f}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.core import check_equivalence, check_three_way

    config = unit_for_entries(
        args.entries,
        block_size=args.block_size,
        data_width=args.data_width,
        bus_width=max(128, args.data_width),
        cam_type=CamType[args.cam_type.upper()],
        default_groups=args.groups,
    )
    print(f"config: {config.num_blocks} blocks x {config.block.block_size} "
          f"cells, {config.data_width}-bit {args.cam_type} entries, "
          f"M={args.groups}")
    three_way = check_three_way(config, operations=args.operations,
                                seed=args.seed)
    print(f"three-way (cycle vs batch vs golden): {three_way.summary()}")
    audit = check_equivalence(config, operations=args.operations,
                              seed=args.seed, engine="audit")
    print(f"audit engine vs golden:               {audit.summary()}")
    return 0 if (three_way.passed and audit.passed) else 1


def _cmd_vcd(out_path: str) -> int:
    from repro.sim import write_vcd

    session = CamSession(
        unit_for_entries(64, block_size=16, data_width=32, bus_width=128,
                         default_groups=2),
        trace=True,
    )
    session.update([0xAA, 0xBB, 0xCC])
    session.search([0xBB, 0x99])
    session.delete(0xAA)
    write_vcd(session.trace, out_path)
    print(f"wrote {len(session.trace)} trace events "
          f"({session.cycle} cycles) to {out_path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "info":
            return _cmd_info()
        if args.command == "exhibit":
            return _cmd_exhibit(args.name, args.max_edges)
        if args.command == "generate-hdl":
            return _cmd_generate_hdl(args)
        if args.command == "demo":
            return _cmd_demo(args.entries, args.groups, args.engine)
        if args.command == "tc":
            return _cmd_tc(args.dataset, args.max_edges)
        if args.command == "audit":
            return _cmd_audit(args)
        if args.command == "sweep":
            return _cmd_sweep(args.level, args.sizes, args.data_width)
        if args.command == "vcd":
            return _cmd_vcd(args.out)
        parser.error(f"unknown command {args.command!r}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
