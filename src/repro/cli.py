"""Command-line interface: ``dsp-cam`` / ``python -m repro``.

Subcommands:

- ``info``                       -- library and configuration summary
- ``exhibit {fig1,table1,...}``  -- regenerate a paper table/figure
- ``generate-hdl``               -- emit the Verilog templates
- ``demo``                       -- quick update/search round-trip
- ``tc``                         -- run the triangle-counting case study
- ``audit``                      -- differential equivalence check of the
  vectorized batch engine against the cycle-accurate simulator and the
  golden reference model
- ``metrics``                    -- run an instrumented workload and dump
  the metrics registry (Prometheus text + JSON)
- ``trace``                      -- run a traced workload and write a
  Chrome trace-event JSON (open in Perfetto)
- ``serve-demo``                 -- drive the sharded async CAM service
  with synthetic concurrent traffic (see ``docs/service.md``)
- ``serve``                      -- put the sharded CAM behind a TCP
  socket (binary protocol, graceful drain on SIGINT/SIGTERM; see
  ``docs/networking.md``)
- ``loadgen``                    -- open/closed-loop load generation
  against a running ``serve`` instance, emitting a benchmark manifest
- ``snapshot``                   -- save a seeded demo CAM's content as a
  versioned snapshot (JSON or compact binary)
- ``restore``                    -- rebuild a CAM from a snapshot file and
  optionally verify the content-hash round-trip
- ``validate-manifest``          -- schema-check a ``BENCH_*.json`` file

``demo``, ``tc`` and ``audit`` accept ``--trace-out PATH`` to capture
their span tree, and ``demo`` additionally ``--manifest-out PATH``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro import __version__, obs
from repro.bench.experiments import ALL_EXHIBITS
from repro.core import CamSession, CamType, open_session, unit_for_entries
from repro.errors import ReproError
from repro.graph.datasets import dataset_names
from repro.hdlgen import write_project


def _version_string() -> str:
    sha = obs.git_sha()
    suffix = f" (git {sha[:12]})" if sha else ""
    return f"repro {obs.package_version()}{suffix}"


def _write_trace(trace_out: Optional[str]) -> None:
    """Dump the global tracer to ``trace_out`` when requested."""
    if not trace_out:
        return
    spans = obs.tracer().write_chrome(trace_out)
    print(f"wrote {spans} spans "
          f"({len(obs.tracer().events)} trace events) to {trace_out}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dsp-cam",
        description="Configurable DSP-based CAM for FPGAs (DAC 2025) - "
                    "reference reproduction",
    )
    parser.add_argument("--version", action="version",
                        version=_version_string())
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print library and model summary")

    exhibit = sub.add_parser("exhibit", help="regenerate a paper exhibit")
    exhibit.add_argument("name", choices=sorted(ALL_EXHIBITS) + ["all"])
    exhibit.add_argument("--max-edges", type=int, default=60_000,
                         help="stand-in graph size cap for table9")

    hdl = sub.add_parser("generate-hdl", help="emit the Verilog templates")
    hdl.add_argument("--out", default="generated_hdl")
    hdl.add_argument("--entries", type=int, default=2048)
    hdl.add_argument("--block-size", type=int, default=128)
    hdl.add_argument("--data-width", type=int, default=32)
    hdl.add_argument("--bus-width", type=int, default=512)

    demo = sub.add_parser("demo", help="update/search round-trip demo")
    demo.add_argument("--entries", type=int, default=256)
    demo.add_argument("--groups", type=int, default=2)
    demo.add_argument("--engine", choices=["cycle", "batch", "audit"],
                      default="cycle",
                      help="execution engine (see repro.core.batch)")
    demo.add_argument("--trace-out", default=None, metavar="PATH",
                      help="write a Chrome trace of the run (Perfetto)")
    demo.add_argument("--manifest-out", default=None, metavar="PATH",
                      help="write a BENCH-style run manifest (JSON)")

    tc = sub.add_parser("tc", help="triangle-counting case study")
    tc.add_argument("--dataset", choices=dataset_names() + ["all"],
                    default="all")
    tc.add_argument("--max-edges", type=int, default=60_000)
    tc.add_argument("--trace-out", default=None, metavar="PATH",
                    help="write a Chrome trace of the pipeline (includes a "
                         "functional cross-check on the real CAM)")

    audit = sub.add_parser(
        "audit",
        help="prove the batch engine equivalent to the cycle-accurate CAM",
    )
    audit.add_argument("--entries", type=int, default=128)
    audit.add_argument("--block-size", type=int, default=32)
    audit.add_argument("--data-width", type=int, default=16)
    audit.add_argument("--cam-type", choices=["binary", "ternary", "range"],
                       default="binary")
    audit.add_argument("--groups", type=int, default=2)
    audit.add_argument("--operations", type=int, default=200)
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Chrome trace of the audit run")

    metrics = sub.add_parser(
        "metrics",
        help="run an instrumented workload and dump the metrics registry",
    )
    metrics.add_argument("--engine", choices=["cycle", "batch", "audit"],
                         default="cycle")
    metrics.add_argument("--format", dest="fmt",
                         choices=["prometheus", "json", "both"],
                         default="both")

    trace = sub.add_parser(
        "trace",
        help="run a traced workload and write Chrome trace-event JSON",
    )
    trace.add_argument("--out", default="repro_trace.json")
    trace.add_argument("--engine", choices=["cycle", "batch", "audit"],
                       default="cycle")
    trace.add_argument("--sample", type=float, default=1.0,
                       help="fraction of root spans to keep (0..1)")

    serve = sub.add_parser(
        "serve-demo",
        help="drive the sharded async CAM service with synthetic traffic",
    )
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument("--policy", choices=["hash", "range", "round_robin"],
                       default="hash")
    serve.add_argument("--engine", choices=["cycle", "batch", "audit"],
                       default="batch")
    serve.add_argument("--entries-per-shard", type=int, default=512)
    serve.add_argument("--requests", type=int, default=2000)
    serve.add_argument("--clients", type=int, default=8)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--max-batch", type=int, default=64,
                       help="micro-batch size cap per shard dispatcher")
    serve.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="max wait to fill a micro-batch")
    serve.add_argument("--queue-depth", type=int, default=1024,
                       help="bounded admission queue size")
    serve.add_argument("--timeout-ms", type=float, default=5000.0,
                       help="per-request deadline from admission")
    serve.add_argument("--replicas", type=int, default=1,
                       help="replica sessions per shard (fan-out writes, "
                            "failover reads, live recovery)")
    serve.add_argument("--auto-repair", action="store_true",
                       help="run the background repair monitor that "
                            "rebuilds failed replicas with exponential "
                            "backoff")
    serve.add_argument("--poison-shard", type=int, default=None,
                       metavar="INDEX",
                       help="inject a backend fault into this shard to "
                            "demonstrate failure isolation")
    serve.add_argument("--fault-mode",
                       choices=["wedge", "crash", "diverge"], default=None,
                       help="injected fault flavour (default: wedge, or "
                            "crash when --replicas > 1)")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Chrome trace of the run (Perfetto)")
    serve.add_argument("--manifest-out", default=None, metavar="PATH",
                       help="write a BENCH-style run manifest (JSON)")

    serve_net = sub.add_parser(
        "serve",
        help="serve the sharded CAM over TCP (binary wire protocol)",
    )
    serve_net.add_argument("--host", default="127.0.0.1")
    serve_net.add_argument("--port", type=int, default=0,
                           help="TCP port (0 binds an ephemeral port, "
                                "printed at startup)")
    serve_net.add_argument("--shards", type=int, default=4)
    serve_net.add_argument("--policy",
                           choices=["hash", "range", "round_robin"],
                           default="hash")
    serve_net.add_argument("--engine", choices=["cycle", "batch", "audit"],
                           default="batch")
    serve_net.add_argument("--entries-per-shard", type=int, default=512)
    serve_net.add_argument("--replicas", type=int, default=1)
    serve_net.add_argument("--max-batch", type=int, default=64)
    serve_net.add_argument("--max-delay-ms", type=float, default=1.0)
    serve_net.add_argument("--queue-depth", type=int, default=1024)
    serve_net.add_argument("--timeout-ms", type=float, default=5000.0,
                           help="per-request service deadline")
    serve_net.add_argument("--max-connections", type=int, default=64)
    serve_net.add_argument("--max-frame-size", type=int,
                           default=None, metavar="BYTES",
                           help="per-frame payload cap (default 4 MiB)")
    serve_net.add_argument("--idle-timeout-s", type=float, default=None,
                           help="close connections idle this long")
    serve_net.add_argument("--max-seconds", type=float, default=None,
                           help="auto-shutdown after this long (CI)")

    loadgen = sub.add_parser(
        "loadgen",
        help="drive the Table IX probe stream against a CAM server",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--mode", choices=["closed", "open"],
                         default="closed")
    loadgen.add_argument("--requests", type=int, default=2000)
    loadgen.add_argument("--concurrency", type=int, default=16)
    loadgen.add_argument("--rate", type=float, default=2000.0,
                         help="open-loop arrival rate (req/s)")
    loadgen.add_argument("--batch", type=int, default=1,
                         help="keys per LOOKUP frame")
    loadgen.add_argument("--pool", type=int, default=1,
                         help="client connection pool size")
    loadgen.add_argument("--naive", action="store_true",
                         help="disable pipelining: one request per "
                              "round trip (baseline mode)")
    loadgen.add_argument("--kill-after", type=int, default=None,
                         metavar="N",
                         help="sever every connection once after N "
                              "completed requests (retry/chaos check)")
    loadgen.add_argument("--seed", type=int, default=3)
    loadgen.add_argument("--timeout-s", type=float, default=10.0)
    loadgen.add_argument("--manifest-out", default=None, metavar="PATH",
                         help="write a BENCH-style run manifest (JSON)")

    snapshot = sub.add_parser(
        "snapshot",
        help="build a seeded demo CAM and save its content snapshot",
    )
    snapshot.add_argument("--out", default="cam_snapshot.json",
                          metavar="PATH",
                          help=".json for canonical JSON, anything else "
                               "for the compact binary framing")
    snapshot.add_argument("--entries", type=int, default=256,
                          help="entries per shard")
    snapshot.add_argument("--shards", type=int, default=1)
    snapshot.add_argument("--engine", choices=["cycle", "batch", "audit"],
                          default="batch")
    snapshot.add_argument("--groups", type=int, default=1)
    snapshot.add_argument("--seed", type=int, default=0)
    snapshot.add_argument("--fill", type=float, default=0.5,
                          help="fraction of capacity to populate")

    restore = sub.add_parser(
        "restore",
        help="load a snapshot into a freshly built CAM and summarise it",
    )
    restore.add_argument("path")
    restore.add_argument("--engine", choices=["cycle", "batch", "audit"],
                         default=None,
                         help="engine for the rebuilt CAM (default: the "
                              "engine recorded in the snapshot)")
    restore.add_argument("--verify", action="store_true",
                         help="re-snapshot the restored CAM and check the "
                              "content hash round-trips")
    restore.add_argument("--entries", type=int, default=None,
                         help="override target entries (default: the "
                              "geometry recorded in the snapshot)")
    restore.add_argument("--block-size", type=int, default=None,
                         help="override target block size")
    restore.add_argument("--data-width", type=int, default=None,
                         help="override target data width")

    validate = sub.add_parser(
        "validate-manifest",
        help="schema-check a BENCH_*.json benchmark manifest",
    )
    validate.add_argument("path")

    sweep = sub.add_parser("sweep", help="measure a custom size sweep")
    sweep.add_argument("level", choices=["block", "unit"])
    sweep.add_argument("--sizes", default="32,64,128,256",
                       help="comma-separated sizes (cells or entries)")
    sweep.add_argument("--data-width", type=int, default=32)

    vcd = sub.add_parser(
        "vcd", help="run a small traced scenario and dump a VCD waveform"
    )
    vcd.add_argument("--out", default="cam_trace.vcd")
    return parser


def _cmd_info() -> int:
    from repro.fabric import ALVEO_U250
    from repro.fabric.area import provenance as area_note
    from repro.fabric.timing import provenance as timing_note

    print(f"repro {__version__} - DSP-based CAM reproduction (DAC 2025)")
    print(f"target device: {ALVEO_U250.name} "
          f"({ALVEO_U250.capacity.dsp} DSPs, {ALVEO_U250.capacity.lut} LUTs)")
    print(area_note())
    print(timing_note())
    print("exhibits:", ", ".join(sorted(ALL_EXHIBITS)))
    return 0


def _cmd_exhibit(name: str, max_edges: int) -> int:
    names = sorted(ALL_EXHIBITS) if name == "all" else [name]
    for exhibit_name in names:
        builder = ALL_EXHIBITS[exhibit_name]
        if exhibit_name == "table9":
            table = builder(max_edges=max_edges)
        else:
            table = builder()
        print(table.render())
        print()
    return 0


def _cmd_generate_hdl(args: argparse.Namespace) -> int:
    config = unit_for_entries(
        args.entries,
        block_size=args.block_size,
        data_width=args.data_width,
        bus_width=args.bus_width,
    )
    written = write_project(config, args.out)
    for name, path in written.items():
        print(f"wrote {path}")
    print(f"configuration: {config.num_blocks} blocks x "
          f"{config.block.block_size} cells, {config.data_width}-bit data")
    return 0


def _cmd_demo(entries: int, groups: int, engine: str = "cycle",
              trace_out: Optional[str] = None,
              manifest_out: Optional[str] = None) -> int:
    if trace_out or manifest_out:
        obs.reset()
        obs.enable(tracing=bool(trace_out))
    start = time.perf_counter()
    session = open_session(unit_for_entries(
        entries, block_size=64, data_width=32, default_groups=groups,
        cam_type=CamType.BINARY,
    ), engine=engine)
    print(f"engine: {session.engine_name}")
    stored = list(range(100, 100 + min(entries // groups, 64)))
    session.update(stored)
    print(f"stored {len(stored)} words in {session.last_update_stats.cycles} cycles")
    probes = [stored[0], stored[-1], 99999]
    results = session.search(probes)
    for probe, result in zip(probes, results):
        print(f"  search {probe}: hit={result.hit} address={result.address}")
    print(f"search of {len(probes)} keys took "
          f"{session.last_search_stats.cycles} cycles "
          f"({groups} concurrent queries/cycle)")
    wall_s = time.perf_counter() - start
    _write_trace(trace_out)
    if manifest_out:
        from repro.core.stats import collect_stats, publish_stats

        unit = getattr(session, "unit", None)
        if unit is not None:
            publish_stats(collect_stats(unit))
        manifest = obs.build_manifest(
            name="cli_demo",
            config={"entries": entries, "groups": groups, "engine": engine},
            timings={"wall_s": wall_s},
            metrics=obs.metrics().snapshot(),
        )
        with open(manifest_out, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        print(f"wrote manifest to {manifest_out}")
    if trace_out or manifest_out:
        obs.disable()
    return 0


def _cmd_tc(dataset: str, max_edges: int,
            trace_out: Optional[str] = None) -> int:
    from repro.apps.tc import (
        arithmetic_mean_speedup,
        run_all,
        run_dataset,
        verify_functional_equivalence,
    )
    from repro.graph.datasets import get_dataset

    if trace_out:
        obs.reset()
        obs.enable(tracing=True)
    if dataset == "all":
        rows = run_all(max_edges=max_edges)
    else:
        rows = [run_dataset(dataset, max_edges=max_edges)]
    if trace_out:
        # Drive the real cycle-accurate CAM on sampled edges so the
        # trace shows the full nesting: tc.verify -> tc.intersect ->
        # session.search/update -> unit.* engine spans.
        spec = get_dataset(dataset_names()[0] if dataset == "all" else dataset)
        standin = spec.standin(max_edges=min(max_edges, 4000))
        verified = verify_functional_equivalence(standin.graph, sample_edges=4)
        print(f"functional cross-check on {spec.name}: "
              f"{verified} edges verified on the cycle-accurate CAM")
    print(f"{'dataset':20s} {'edges':>9s} {'triangles':>10s} "
          f"{'ours ms':>9s} {'base ms':>9s} {'speedup':>7s} {'paper':>6s}")
    for row in rows:
        print(f"{row.dataset:20s} {row.edges:9d} {row.triangles:10d} "
              f"{row.cam_ms:9.3f} {row.baseline_ms:9.3f} "
              f"{row.speedup:7.2f} {row.paper_speedup:6.2f}")
    if len(rows) > 1:
        print(f"average speedup: {arithmetic_mean_speedup(rows):.2f} "
              "(paper: 4.92)")
    if trace_out:
        _write_trace(trace_out)
        obs.disable()
    return 0


def _cmd_sweep(level: str, sizes_csv: str, data_width: int) -> int:
    from repro.core import measure_block, measure_unit_performance

    sizes = [int(token) for token in sizes_csv.split(",") if token.strip()]
    if level == "block":
        print(f"{'size':>6s} {'upd cy':>6s} {'srch cy':>7s} "
              f"{'LUT':>6s} {'DSP':>6s} {'MHz':>5s}")
        for size in sizes:
            report = measure_block(size, data_width=data_width)
            print(f"{size:6d} {report.update_latency:6d} "
                  f"{report.search_latency:7d} {report.resources.lut:6d} "
                  f"{report.resources.dsp:6d} {report.frequency_mhz:5.0f}")
    else:
        print(f"{'entries':>8s} {'upd cy':>6s} {'srch cy':>7s} "
              f"{'upd Mop/s':>9s} {'srch Mop/s':>10s}")
        for size in sizes:
            report = measure_unit_performance(
                size, block_size=min(128, size), data_width=data_width
            )
            print(f"{size:8d} {report.update_latency:6d} "
                  f"{report.search_latency:7d} "
                  f"{report.update_throughput_mops:9.0f} "
                  f"{report.search_throughput_mops:10.0f}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.core import check_equivalence, check_three_way

    if args.trace_out:
        obs.reset()
        obs.enable(tracing=True)
    config = unit_for_entries(
        args.entries,
        block_size=args.block_size,
        data_width=args.data_width,
        bus_width=max(128, args.data_width),
        cam_type=CamType[args.cam_type.upper()],
        default_groups=args.groups,
    )
    print(f"config: {config.num_blocks} blocks x {config.block.block_size} "
          f"cells, {config.data_width}-bit {args.cam_type} entries, "
          f"M={args.groups}")
    three_way = check_three_way(config, operations=args.operations,
                                seed=args.seed)
    print(f"three-way (cycle vs batch vs golden): {three_way.summary()}")
    audit = check_equivalence(config, operations=args.operations,
                              seed=args.seed, engine="audit")
    print(f"audit engine vs golden:               {audit.summary()}")
    if args.trace_out:
        _write_trace(args.trace_out)
        obs.disable()
    return 0 if (three_way.passed and audit.passed) else 1


def _run_sample_workload(engine: str) -> CamSession:
    """The built-in workload ``metrics`` / ``trace`` instrument.

    Exercises update, search (hits and misses), delete-by-content and a
    regroup so every instrumented counter family fires.
    """
    session = open_session(unit_for_entries(
        256, block_size=64, data_width=32, default_groups=2,
        cam_type=CamType.BINARY,
    ), engine=engine)
    words = list(range(100, 196))
    session.update(words)
    session.search(words[:48] + [10**6, 10**6 + 1])
    session.delete(words[0])
    session.search([words[0], words[1]])
    return session


def _cmd_metrics(engine: str, fmt: str) -> int:
    from repro.core.stats import collect_stats, publish_stats

    obs.reset()
    obs.enable(tracing=False)
    session = _run_sample_workload(engine)
    unit = getattr(session, "unit", None)
    if unit is not None:
        publish_stats(collect_stats(unit))
    obs.disable()
    if fmt in ("prometheus", "both"):
        print(obs.metrics().to_prometheus(), end="")
    if fmt == "both":
        print()
    if fmt in ("json", "both"):
        print(obs.metrics().to_json())
    return 0


def _cmd_trace(out_path: str, engine: str, sample: float) -> int:
    obs.reset()
    obs.enable(tracing=True, sample=sample)
    session = _run_sample_workload(engine)
    obs.disable()
    # Unify the cycle-accurate waveform with the span timeline: rerun a
    # tiny scenario with signal tracing on and project it onto the
    # simulator track of the same Chrome trace.
    sim_session = CamSession(
        unit_for_entries(64, block_size=16, data_width=32, bus_width=128,
                         default_groups=2),
        trace=True,
    )
    sim_session.update([0xAA, 0xBB])
    sim_session.search([0xBB])
    obs.tracer().add_sim_trace(sim_session.trace)
    _write_trace(out_path)
    return 0


def _cmd_serve_demo(args: argparse.Namespace) -> int:
    from repro.service import WorkloadSpec, demo_cam, run_demo_workload

    if args.trace_out or args.manifest_out:
        obs.reset()
        obs.enable(tracing=bool(args.trace_out))
    cam = demo_cam(
        entries_per_shard=args.entries_per_shard,
        shards=args.shards,
        engine=args.engine,
        policy=args.policy,
        poison_shard=args.poison_shard,
        replicas=args.replicas,
        fault_mode=args.fault_mode,
    )
    spec = WorkloadSpec(requests=args.requests, clients=args.clients,
                        seed=args.seed)
    print(f"service: {cam.engine_name}, policy={args.policy}, "
          f"capacity={cam.capacity}")
    print(f"traffic: {spec.requests} requests from {spec.clients} clients "
          f"(seed {spec.seed})")
    report = run_demo_workload(
        cam,
        spec,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1e3,
        queue_depth=args.queue_depth,
        request_timeout_s=args.timeout_ms / 1e3,
        auto_repair=args.auto_repair,
    )
    print(report.render())
    _write_trace(args.trace_out)
    if args.manifest_out:
        manifest = obs.build_manifest(
            name="cli_serve_demo",
            config={
                "shards": args.shards,
                "policy": args.policy,
                "engine": args.engine,
                "entries_per_shard": args.entries_per_shard,
                "requests": spec.requests,
                "clients": spec.clients,
                "max_batch": args.max_batch,
                "max_delay_ms": args.max_delay_ms,
                "queue_depth": args.queue_depth,
                "timeout_ms": args.timeout_ms,
                "poison_shard": args.poison_shard,
                "replicas": args.replicas,
                "fault_mode": args.fault_mode,
                "auto_repair": args.auto_repair,
            },
            timings={"wall_s": report.wall_s},
            metrics=obs.metrics().snapshot(),
            extra={
                "ok": report.ok,
                "timeouts": report.timeouts,
                "shard_failures": report.shard_failures,
                "rejected": report.rejected,
                "throughput_rps": report.throughput_rps,
                "latency_p99_ms": report.latency_percentile(0.99) * 1e3,
                "mean_batch_occupancy": report.mean_batch_occupancy,
                "poisoned_shards": report.poisoned_shards,
                "simulated_cycles": report.simulated_cycles,
                "repairs_completed": report.repairs_completed,
                "repairs_failed": report.repairs_failed,
                "failed_replicas": report.failed_replicas,
            },
        )
        with open(args.manifest_out, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        print(f"wrote manifest to {args.manifest_out}")
    if args.trace_out or args.manifest_out:
        obs.disable()
    degraded = report.timeouts + report.shard_failures + report.client_errors
    if args.poison_shard is None and degraded:
        return 1
    return 0


def _cmd_serve_net(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.net import MAX_FRAME_SIZE, CamServer
    from repro.service import CamService, demo_cam

    cam = demo_cam(
        entries_per_shard=args.entries_per_shard,
        shards=args.shards,
        engine=args.engine,
        policy=args.policy,
        replicas=args.replicas,
    )

    async def _serve() -> int:
        service = CamService(
            cam,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms / 1e3,
            queue_depth=args.queue_depth,
            request_timeout_s=args.timeout_ms / 1e3,
        )
        await service.start()
        server = CamServer(
            service,
            host=args.host,
            port=args.port,
            max_connections=args.max_connections,
            max_frame_size=args.max_frame_size or MAX_FRAME_SIZE,
            idle_timeout_s=args.idle_timeout_s,
            request_timeout_s=args.timeout_ms / 1e3,
        )
        await server.start()
        host, port = server.address
        print(f"serving {cam.engine_name} "
              f"(capacity {cam.capacity}) on {host}:{port}", flush=True)

        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        try:
            if args.max_seconds is not None:
                try:
                    await asyncio.wait_for(stop.wait(), args.max_seconds)
                except asyncio.TimeoutError:
                    pass
            else:
                await stop.wait()
        finally:
            print("draining...", flush=True)
            await server.stop()
            await service.stop()
        stats = server.stats
        print(f"served {stats.requests} requests over "
              f"{stats.connections_opened} connections "
              f"({stats.decode_errors} decode errors, "
              f"{stats.retry_later} drained)")
        return 0

    return asyncio.run(_serve())


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.net import LoadgenSpec, run_loadgen_blocking

    if args.manifest_out:
        obs.reset()
        obs.enable()
    spec = LoadgenSpec(
        mode=args.mode,
        requests=args.requests,
        concurrency=args.concurrency,
        rate=args.rate,
        batch=args.batch,
        pool_size=args.pool,
        pipelined=not args.naive,
        kill_after=args.kill_after,
        seed=args.seed,
    )
    print(f"loadgen: {spec.mode} loop against "
          f"{args.host}:{args.port} "
          f"({'naive' if args.naive else 'pipelined'}, "
          f"pool={spec.pool_size})", flush=True)
    report = run_loadgen_blocking(args.host, args.port, spec,
                                  request_timeout_s=args.timeout_s)
    print(report.render())
    if args.manifest_out:
        manifest = report.manifest(spec)
        with open(args.manifest_out, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        print(f"wrote manifest to {args.manifest_out}")
        obs.disable()
    return 1 if report.errors else 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    import random

    if args.entries < 1:
        print("error: --entries must be >= 1", file=sys.stderr)
        return 1
    block_size = 64 if args.entries % 64 == 0 else args.entries
    config = unit_for_entries(args.entries, block_size=block_size,
                              default_groups=args.groups)
    cam = open_session(config, args.engine, shards=args.shards)
    rng = random.Random(args.seed)
    target = max(1, int(cam.capacity * min(max(args.fill, 0.0), 1.0)))
    values = rng.sample(range(1, 1 << 32), target)
    cam.update(values)
    # Punch holes so the snapshot exercises dead-slot preservation, then
    # add fresh entries past the holes (fill pointers never rewind).
    victims = values[:: max(2, target // max(1, target // 8))][: target // 8]
    for value in victims:
        cam.delete(value)
    refill = rng.sample(range(1 << 32, (1 << 32) + target), len(victims) // 2)
    if refill and cam.occupancy + len(refill) <= cam.capacity:
        cam.update(refill)
    snap = cam.snapshot()
    snap.save(args.out)
    print(f"snapshot: {snap.describe()}")
    print(f"content hash: {snap.content_hash()}")
    print(f"wrote {args.out}")
    return 0


def _backend_for_snapshot(snap, engine: Optional[str],
                          overrides: Optional[dict] = None):
    """Rebuild an empty, restore-compatible backend from snapshot meta.

    ``overrides`` maps ``entries``/``block_size``/``data_width`` to
    explicit target geometry, replacing the values recorded in the
    snapshot (used to demonstrate and test config-mismatch failures).
    """
    from repro.core import Encoding, ReferenceCam
    from repro.service import ShardedCam

    overrides = overrides or {}

    def geometry(meta: dict):
        return unit_for_entries(
            int(overrides.get("entries") or meta["total_entries"]),
            block_size=int(overrides.get("block_size")
                           or meta["block_size"]),
            data_width=int(overrides.get("data_width")
                           or meta["data_width"]),
            bus_width=int(meta["bus_width"]),
            cam_type=CamType(meta["cam_type"]),
            encoding=Encoding(meta["encoding"]),
        )

    if snap.kind == "reference":
        capacity = int(overrides.get("entries") or snap.meta["capacity"])
        return ReferenceCam(capacity,
                            encoding=Encoding(snap.meta["encoding"]))
    if snap.kind == "sharded":
        child = snap.children[0].meta
        return ShardedCam(
            geometry(child),
            shards=int(snap.meta["shards"]),
            policy=snap.meta.get("policy", "hash"),
            engine=engine or child.get("engine", "batch"),
            replicas=int(snap.meta.get("replicas", 1)),
        )
    if snap.kind == "unit":
        meta = snap.meta
        return open_session(geometry(meta),
                            engine or meta.get("engine", "batch"))
    raise ReproError(
        f"cannot rebuild a {snap.kind!r} CAM from the CLI; construct the "
        "session programmatically and call restore()"
    )


def _snapshot_geometry_line(snap) -> str:
    """One ``key=value`` summary of the geometry a snapshot captured."""
    meta = snap.children[0].meta if snap.kind == "sharded" else snap.meta
    if snap.kind == "reference":
        return f"kind=reference capacity={meta.get('capacity')}"
    return (f"kind={snap.kind} entries={meta.get('total_entries')} "
            f"block_size={meta.get('block_size')} "
            f"data_width={meta.get('data_width')} "
            f"cam_type={meta.get('cam_type')}")


def _target_geometry_line(cam) -> str:
    """One ``key=value`` summary of the CAM a restore targeted."""
    config = getattr(cam, "config", None)
    if config is None:
        return f"kind=reference capacity={cam.capacity}"
    kind = "sharded" if hasattr(cam, "num_shards") else "unit"
    return (f"kind={kind} entries={config.total_entries} "
            f"block_size={config.block.block_size} "
            f"data_width={config.data_width} "
            f"cam_type={config.block.cell.cam_type.value}")


def _cmd_restore(args: argparse.Namespace) -> int:
    from repro.errors import SnapshotError
    from repro.service import CamSnapshot

    try:
        snap = CamSnapshot.load(args.path)
    except OSError as error:
        print(f"error: cannot read {args.path}: {error}", file=sys.stderr)
        return 1
    except SnapshotError as error:
        print(f"error: cannot decode {args.path}: {error}", file=sys.stderr)
        return 1
    print(f"loaded {args.path}: {snap.describe()}")
    overrides = {"entries": args.entries, "block_size": args.block_size,
                 "data_width": args.data_width}
    cam = _backend_for_snapshot(snap, args.engine, overrides)
    try:
        cam.restore(snap)
    except SnapshotError as error:
        print(
            "error: snapshot/config mismatch: "
            f"snapshot[{_snapshot_geometry_line(snap)}] vs "
            f"target[{_target_geometry_line(cam)}]: {error}",
            file=sys.stderr,
        )
        return 1
    print(f"restored into {cam.engine_name}: "
          f"{cam.occupancy}/{cam.capacity} entries")
    if args.verify:
        want = snap.content_hash()
        got = cam.snapshot().content_hash()
        if want != got:
            print(f"verify FAILED: {got} != {want}", file=sys.stderr)
            return 1
        print(f"verify ok: content hash {want}")
    return 0


def _cmd_validate_manifest(path: str) -> int:
    manifest = obs.load_manifest(path)
    meta = manifest["meta"]
    print(f"{path}: valid ({manifest['schema']})")
    print(f"  name: {manifest['name']}")
    print(f"  version: {meta['version']}  git: {meta['git_sha']}  "
          f"python: {meta['python']}")
    print(f"  timings: {len(manifest['timings'])}  "
          f"metric families: {len(manifest['metrics'])}")
    return 0


def _cmd_vcd(out_path: str) -> int:
    from repro.sim import write_vcd

    session = CamSession(
        unit_for_entries(64, block_size=16, data_width=32, bus_width=128,
                         default_groups=2),
        trace=True,
    )
    session.update([0xAA, 0xBB, 0xCC])
    session.search([0xBB, 0x99])
    session.delete(0xAA)
    write_vcd(session.trace, out_path)
    print(f"wrote {len(session.trace)} trace events "
          f"({session.cycle} cycles) to {out_path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "info":
            return _cmd_info()
        if args.command == "exhibit":
            return _cmd_exhibit(args.name, args.max_edges)
        if args.command == "generate-hdl":
            return _cmd_generate_hdl(args)
        if args.command == "demo":
            return _cmd_demo(args.entries, args.groups, args.engine,
                             args.trace_out, args.manifest_out)
        if args.command == "tc":
            return _cmd_tc(args.dataset, args.max_edges, args.trace_out)
        if args.command == "audit":
            return _cmd_audit(args)
        if args.command == "metrics":
            return _cmd_metrics(args.engine, args.fmt)
        if args.command == "trace":
            return _cmd_trace(args.out, args.engine, args.sample)
        if args.command == "serve-demo":
            return _cmd_serve_demo(args)
        if args.command == "serve":
            return _cmd_serve_net(args)
        if args.command == "loadgen":
            return _cmd_loadgen(args)
        if args.command == "snapshot":
            return _cmd_snapshot(args)
        if args.command == "restore":
            return _cmd_restore(args)
        if args.command == "validate-manifest":
            return _cmd_validate_manifest(args.path)
        if args.command == "sweep":
            return _cmd_sweep(args.level, args.sizes, args.data_width)
        if args.command == "vcd":
            return _cmd_vcd(args.out)
        parser.error(f"unknown command {args.command!r}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
