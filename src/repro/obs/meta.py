"""Build/runtime identity shared by every telemetry export.

Metrics dumps, Chrome traces, and benchmark manifests all carry the
same provenance header -- package version plus git SHA -- so a stored
artefact can always be traced back to the code that produced it. The
version is read from the installed package metadata (pyproject.toml)
when available, falling back to parsing the source tree's
pyproject.toml and finally to the hard-coded ``repro.__version__``.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from typing import Dict, Optional

_version_cache: Optional[str] = None
_sha_cache: object = False  # False = not probed yet (None is a valid answer)


def package_version() -> str:
    """The repro package version, preferring installed metadata."""
    global _version_cache
    if _version_cache is not None:
        return _version_cache
    version: Optional[str] = None
    try:
        from importlib import metadata

        version = metadata.version("repro")
    except Exception:
        version = None
    if version is None:
        version = _version_from_pyproject()
    if version is None:
        from repro import __version__

        version = __version__
    _version_cache = version
    return version


def _version_from_pyproject() -> Optional[str]:
    """Parse ``version = "..."`` from the source tree's pyproject.toml."""
    root = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, os.pardir)
    )
    path = os.path.join(root, "pyproject.toml")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return None
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
    return match.group(1) if match else None


def git_sha() -> Optional[str]:
    """The git commit SHA of the working tree, or ``None`` outside git."""
    global _sha_cache
    if _sha_cache is not False:
        return _sha_cache  # type: ignore[return-value]
    try:
        out = subprocess.run(
            ["git", "-C", os.path.dirname(os.path.abspath(__file__)),
             "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
        sha = out.stdout.strip() if out.returncode == 0 else None
    except Exception:
        sha = None
    _sha_cache = sha if sha else None
    return _sha_cache  # type: ignore[return-value]


def runtime_meta() -> Dict[str, object]:
    """Provenance block embedded in every export and manifest."""
    return {
        "package": "repro",
        "version": package_version(),
        "git_sha": git_sha(),
        "python": ".".join(str(part) for part in sys.version_info[:3]),
    }
