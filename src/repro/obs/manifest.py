"""Machine-readable benchmark run manifests (``BENCH_<name>.json``).

Every benchmark run emits one manifest: what ran (name, config), on
what code (version, git SHA, python), how long it took (timings), and
what the telemetry saw (a metrics snapshot). The files are the
perf-trajectory record that later sessions -- and the CI artifact
trail -- read instead of re-deriving numbers from free-form text.

The schema is deliberately small and validated by
:func:`validate_manifest`, so a manifest that loads and validates can
be consumed blind.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

from repro.errors import ObsError
from repro.obs.meta import runtime_meta

#: Schema identifier stamped into (and required of) every manifest.
MANIFEST_SCHEMA = "repro.bench.manifest/v1"

#: Required top-level keys and the types their values must have.
_REQUIRED: Dict[str, type] = {
    "schema": str,
    "name": str,
    "meta": dict,
    "created_unix": (int, float),  # type: ignore[dict-item]
    "config": dict,
    "timings": dict,
    "metrics": dict,
}


def build_manifest(
    name: str,
    config: Optional[dict] = None,
    timings: Optional[Dict[str, float]] = None,
    metrics: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble a schema-valid manifest dict.

    ``metrics`` is a registry snapshot (:meth:`MetricsRegistry.snapshot`)
    or any JSON-able dict; ``timings`` maps stage/test names to seconds.
    """
    if not name:
        raise ObsError("manifest needs a non-empty name")
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "name": name,
        "meta": runtime_meta(),
        "created_unix": time.time(),
        "config": dict(config or {}),
        "timings": {key: float(value) for key, value in (timings or {}).items()},
        "metrics": dict(metrics or {}),
    }
    if extra:
        manifest["extra"] = dict(extra)
    validate_manifest(manifest)
    return manifest


def validate_manifest(manifest: dict) -> dict:
    """Check schema conformance; returns the manifest for chaining."""
    if not isinstance(manifest, dict):
        raise ObsError(
            f"manifest must be a JSON object, got {type(manifest).__name__}"
        )
    for key, expected in _REQUIRED.items():
        if key not in manifest:
            raise ObsError(f"manifest missing required key {key!r}")
        if not isinstance(manifest[key], expected):
            raise ObsError(
                f"manifest key {key!r} must be "
                f"{getattr(expected, '__name__', expected)}, got "
                f"{type(manifest[key]).__name__}"
            )
    if manifest["schema"] != MANIFEST_SCHEMA:
        raise ObsError(
            f"unknown manifest schema {manifest['schema']!r} "
            f"(expected {MANIFEST_SCHEMA!r})"
        )
    meta = manifest["meta"]
    for key in ("version", "git_sha", "python"):
        if key not in meta:
            raise ObsError(f"manifest meta missing key {key!r}")
    for stage, seconds in manifest["timings"].items():
        if not isinstance(seconds, (int, float)):
            raise ObsError(
                f"timing {stage!r} must be a number, got "
                f"{type(seconds).__name__}"
            )
    return manifest


def manifest_filename(name: str) -> str:
    """Canonical on-disk name for a manifest."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
    return f"BENCH_{safe}.json"


def write_manifest(manifest: dict, directory: str = ".") -> str:
    """Validate and write ``BENCH_<name>.json``; returns the path."""
    validate_manifest(manifest)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, manifest_filename(manifest["name"]))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def load_manifest(path: str) -> dict:
    """Load and validate a manifest file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise ObsError(f"cannot read manifest {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ObsError(f"manifest {path} is not valid JSON: {error}") from error
    return validate_manifest(data)
