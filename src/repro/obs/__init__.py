"""repro.obs: unified telemetry (metrics, span tracing, run manifests).

One process-wide telemetry state gates every instrumentation site in
the library: a :class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.tracing.Tracer`, and an on/off switch. Telemetry is
**off by default** and the module-level helpers (:func:`span`,
:func:`inc`, :func:`observe`, :func:`set_gauge`) collapse to a single
branch when disabled, so the instrumented hot paths (the batch engine,
the cycle simulator drive loops, the memory models) pay nothing
measurable.

Typical use::

    from repro import obs

    obs.enable()                      # metrics + tracing
    session.update([1, 2, 3])
    session.search([2, 9])
    print(obs.metrics().to_prometheus())
    obs.tracer().write_chrome("trace.json")   # open in Perfetto
    obs.disable()

Benchmark manifests (:mod:`repro.obs.manifest`) record a metrics
snapshot plus version/git provenance per run; see
``docs/observability.md`` for the metrics catalogue and schema.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    load_manifest,
    manifest_filename,
    validate_manifest,
    write_manifest,
)
from repro.obs.meta import git_sha, package_version, runtime_meta
from repro.obs.metrics import (
    BATCH_BUCKETS,
    CYCLE_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import NULL_SPAN, Tracer

__all__ = [
    "BATCH_BUCKETS",
    "CYCLE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL_SPAN",
    "SECONDS_BUCKETS",
    "Tracer",
    "build_manifest",
    "disable",
    "enable",
    "enabled",
    "git_sha",
    "inc",
    "load_manifest",
    "manifest_filename",
    "metrics",
    "observe",
    "package_version",
    "reset",
    "runtime_meta",
    "set_gauge",
    "span",
    "instant",
    "tracer",
    "tracing_enabled",
    "validate_manifest",
    "write_manifest",
]


class _TelemetryState:
    """Process-wide telemetry switchboard."""

    __slots__ = ("active", "registry", "tracer")

    def __init__(self) -> None:
        self.active = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer(enabled=False)


_state = _TelemetryState()


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def enabled() -> bool:
    """True when telemetry collection is on."""
    return _state.active


def tracing_enabled() -> bool:
    """True when span tracing specifically is on."""
    return _state.active and _state.tracer.enabled


def enable(tracing: bool = True, sample: float = 1.0, seed: int = 0) -> None:
    """Turn telemetry on (metrics always; tracing optionally sampled).

    Re-enabling keeps the existing registry/tracer contents so a run
    can be paused and resumed; call :func:`reset` for a clean slate.
    """
    _state.active = True
    _state.tracer.enabled = tracing
    if tracing:
        if not 0.0 <= sample <= 1.0:
            from repro.errors import ObsError

            raise ObsError(f"trace sample must be in [0, 1], got {sample}")
        _state.tracer.sample = sample


def disable() -> None:
    """Turn telemetry off. Collected data stays readable."""
    _state.active = False
    _state.tracer.enabled = False


def reset() -> None:
    """Drop all collected telemetry and return to the disabled state."""
    _state.active = False
    _state.registry = MetricsRegistry()
    _state.tracer = Tracer(enabled=False)


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _state.registry


def tracer() -> Tracer:
    """The process-wide span tracer."""
    return _state.tracer


# ----------------------------------------------------------------------
# hot-path helpers (single branch when disabled)
# ----------------------------------------------------------------------
def span(name: str, /, **args: object):
    """Open a span on the global tracer (no-op when disabled)."""
    if not _state.active:
        return NULL_SPAN
    return _state.tracer.span(name, **args)


def instant(name: str, /, **args: object) -> None:
    """Record an instant mark on the global tracer (no-op when disabled)."""
    if not _state.active:
        return
    _state.tracer.instant(name, **args)


def inc(name: str, amount: float = 1, /, help: str = "",
        **labels: object) -> None:
    """Increment a counter on the global registry (no-op when disabled)."""
    if not _state.active:
        return
    _state.registry.counter(name, help=help).inc(amount, **labels)


def set_gauge(name: str, value: float, /, help: str = "",
              **labels: object) -> None:
    """Set a gauge on the global registry (no-op when disabled)."""
    if not _state.active:
        return
    _state.registry.gauge(name, help=help).set(value, **labels)


def observe(name: str, value: float, /, help: str = "",
            buckets: Optional[Sequence[float]] = None,
            **labels: object) -> None:
    """Observe into a histogram on the global registry (no-op when
    disabled). ``buckets`` only applies at first registration."""
    if not _state.active:
        return
    _state.registry.histogram(name, help=help, buckets=buckets).observe(
        value, **labels
    )
