"""Span-based tracing exported as Chrome trace-event JSON.

``tracer.span("session.search", keys=32)`` opens a timed span; spans
nest naturally with the ``with`` stack (session -> unit -> engine, or
the triangle-counting pipeline stages) and are exported as Chrome
*complete* events (``ph="X"``), which Perfetto / chrome://tracing
render as a flame graph. :meth:`Tracer.instant` adds zero-duration
marks, and :meth:`Tracer.add_sim_trace` projects the cycle-accurate
simulator's :class:`repro.sim.Trace` signal events onto the same
timeline as instant events (cycles mapped to microseconds at a nominal
kernel clock, on their own track).

Cost model: when the tracer is disabled (the default) ``span()``
returns a shared no-op context manager after a single attribute check,
so instrumented hot paths pay one branch. The ``sample`` knob keeps a
seeded fraction of *root* spans (an unsampled root suppresses its whole
subtree), so always-on tracing can be dialled down without losing tree
consistency.
"""

from __future__ import annotations

import json
import random
import time
from typing import Dict, List, Optional

from repro.errors import ObsError
from repro.obs.meta import runtime_meta

#: Track ids in the exported trace.
TID_SPANS = 1
TID_SIM = 2


class _NullSpan:
    """Shared do-nothing context manager for disabled/unsampled paths."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args: object) -> None:
        """Ignore late-attached arguments."""


NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records a complete event on exit."""

    __slots__ = ("_tracer", "name", "args", "_start_us", "depth")

    def __init__(self, tracer: "Tracer", name: str,
                 args: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self.depth = 0
        self._start_us = 0.0

    def set(self, **args: object) -> None:
        """Attach or override span arguments after entry."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.depth = tracer._depth
        tracer._depth += 1
        self._start_us = tracer._now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        end_us = tracer._now_us()
        tracer._depth -= 1
        args = dict(self.args)
        args["depth"] = self.depth
        if exc_type is not None:
            args["error"] = exc_type.__name__
        tracer._events.append({
            "name": self.name,
            "cat": self.name.split(".", 1)[0],
            "ph": "X",
            "ts": self._start_us,
            "dur": max(end_us - self._start_us, 0.0),
            "pid": 1,
            "tid": TID_SPANS,
            "args": args,
        })
        return False


class _SuppressSpan:
    """Context manager holding the tracer suppressed for one subtree."""

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def set(self, **args: object) -> None:
        pass

    def __enter__(self) -> "_SuppressSpan":
        self._tracer._suppress += 1
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._suppress -= 1
        return False


class Tracer:
    """Collects span / instant events and serialises Chrome trace JSON."""

    def __init__(self, enabled: bool = False, sample: float = 1.0,
                 seed: int = 0) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ObsError(f"trace sample must be in [0, 1], got {sample}")
        self.enabled = enabled
        self.sample = sample
        self._rng = random.Random(seed)
        self._events: List[dict] = []
        self._depth = 0
        self._suppress = 0
        self._origin_ns = time.perf_counter_ns()

    # ------------------------------------------------------------------
    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._origin_ns) / 1000.0

    def span(self, name: str, /, **args: object):
        """Open a (nested) span; returns a context manager."""
        if not self.enabled:
            return NULL_SPAN
        if self._suppress:
            return _SuppressSpan(self)
        if (self._depth == 0 and self.sample < 1.0
                and self._rng.random() >= self.sample):
            return _SuppressSpan(self)
        return _Span(self, name, dict(args))

    def instant(self, name: str, /, tid: int = TID_SPANS,
                ts_us: Optional[float] = None, **args: object) -> None:
        """Record a zero-duration mark on the timeline."""
        if not self.enabled or self._suppress:
            return
        self._events.append({
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "i",
            "s": "t",
            "ts": self._now_us() if ts_us is None else ts_us,
            "pid": 1,
            "tid": tid,
            "args": dict(args),
        })

    def add_sim_trace(self, trace, frequency_mhz: float = 300.0) -> int:
        """Project a :class:`repro.sim.Trace` onto the span timeline.

        Each signal sample becomes an instant event on the simulator
        track (:data:`TID_SIM`), with the cycle number converted to
        microseconds at ``frequency_mhz``. Returns the number of events
        added. Works even while the tracer is disabled -- unifying a
        waveform with an already-captured trace is an explicit export
        step, not a hot path.
        """
        if frequency_mhz <= 0:
            raise ObsError("frequency must be positive")
        us_per_cycle = 1.0 / frequency_mhz
        added = 0
        for event in trace:
            self._events.append({
                "name": f"{event.component}.{event.signal}",
                "cat": "sim",
                "ph": "i",
                "s": "t",
                "ts": event.cycle * us_per_cycle,
                "pid": 1,
                "tid": TID_SIM,
                "args": {"cycle": event.cycle, "value": repr(event.value)},
            })
            added += 1
        if getattr(trace, "truncated", False):
            self._events.append({
                "name": "sim.trace_truncated",
                "cat": "sim",
                "ph": "i",
                "s": "g",
                "ts": 0.0,
                "pid": 1,
                "tid": TID_SIM,
                "args": {"dropped_events": getattr(trace, "dropped", 0)},
            })
            added += 1
        return added

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[dict]:
        """The recorded events (Chrome trace-event dicts)."""
        return list(self._events)

    def span_count(self) -> int:
        return sum(1 for event in self._events if event["ph"] == "X")

    def clear(self) -> None:
        self._events.clear()
        self._depth = 0
        self._suppress = 0
        self._origin_ns = time.perf_counter_ns()

    def to_chrome(self) -> dict:
        """The Chrome trace-event JSON object (load in Perfetto)."""
        meta = runtime_meta()
        thread_names = [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": TID_SPANS,
             "args": {"name": "spans"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": TID_SIM,
             "args": {"name": "sim signals (cycles)"}},
            {"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "repro"}},
        ]
        return {
            "traceEvents": thread_names + self._events,
            "displayTimeUnit": "ms",
            "otherData": meta,
        }

    def write_chrome(self, path: str) -> int:
        """Serialise to ``path``; returns the number of span events."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, indent=1)
            handle.write("\n")
        return self.span_count()
