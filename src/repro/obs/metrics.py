"""Metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns named metric families; each family
holds one value (or histogram state) per label set, Prometheus-style.
The registry exports the whole catalogue as Prometheus text format or
as JSON, both stamped with the package version and git SHA so archived
snapshots stay attributable.

Everything here is dependency-free and cheap: a counter increment is a
dict lookup plus an add. The hot-path *guards* (skip work entirely when
telemetry is off) live in :mod:`repro.obs` -- these classes always do
what they are asked.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObsError
from repro.obs.meta import runtime_meta

LabelKey = Tuple[Tuple[str, str], ...]

#: Default bucket upper edges for cycle-count histograms (powers of two
#: up to 64K cycles; values above fall into the +Inf bucket).
CYCLE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)

#: Default bucket upper edges for wall-clock histograms, in seconds.
SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)

#: Bucket upper edges for occupancy-style histograms (requests per
#: micro-batch, items per queue drain): powers of two up to 1024.
BATCH_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format:
    backslash, double quote and newline must be ``\\\\``, ``\\"`` and
    ``\\n`` respectively (backslash first, or it would re-escape the
    escapes)."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """HELP lines escape only backslash and newline (quotes are
    legal there)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"'
                    for name, value in pairs)
    return "{" + body + "}"


class Metric:
    """Base class: a named family of samples keyed by label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise ObsError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    def samples(self) -> List[Tuple[LabelKey, float]]:
        raise NotImplementedError

    def to_json_obj(self) -> dict:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count (events, cycles, bytes)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values())

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._values.items())

    def to_json_obj(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": [
                {"labels": dict(key), "value": value}
                for key, value in self.samples()
            ],
        }


class Gauge(Metric):
    """A value that can go up and down (occupancy, utilisation)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[_label_key(labels)] = value

    def add(self, amount: float, **labels: object) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._values.items())

    def to_json_obj(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": [
                {"labels": dict(key), "value": value}
                for key, value in self.samples()
            ],
        }


class _HistogramState:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * (num_buckets + 1)  # trailing slot = +Inf
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    ``buckets`` are the upper edges (inclusive, ``le``); an implicit
    +Inf bucket catches everything above the last edge. Edges are
    validated once at registration, so ``observe`` is a bisect plus
    three adds.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = CYCLE_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        edges = [float(edge) for edge in buckets]
        if not edges:
            raise ObsError(f"histogram {name} needs at least one bucket edge")
        if sorted(edges) != edges or len(set(edges)) != len(edges):
            raise ObsError(
                f"histogram {name} bucket edges must be strictly increasing: "
                f"{edges}"
            )
        self.buckets: Tuple[float, ...] = tuple(edges)
        self._states: Dict[LabelKey, _HistogramState] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _HistogramState(len(self.buckets))
        index = len(self.buckets)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                index = i
                break
        state.counts[index] += 1
        state.sum += value
        state.count += 1

    # ------------------------------------------------------------------
    def count(self, **labels: object) -> int:
        state = self._states.get(_label_key(labels))
        return state.count if state else 0

    def sum(self, **labels: object) -> float:
        state = self._states.get(_label_key(labels))
        return state.sum if state else 0.0

    def bucket_counts(self, **labels: object) -> List[int]:
        """Per-bucket (non-cumulative) counts, +Inf last."""
        state = self._states.get(_label_key(labels))
        if state is None:
            return [0] * (len(self.buckets) + 1)
        return list(state.counts)

    def cumulative_counts(self, **labels: object) -> List[int]:
        """Cumulative counts per ``le`` edge (+Inf last) -- the
        Prometheus wire representation."""
        counts = self.bucket_counts(**labels)
        out, running = [], 0
        for value in counts:
            running += value
            out.append(running)
        return out

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(
            (key, state.count) for key, state in self._states.items()
        )

    def label_sets(self) -> List[LabelKey]:
        return sorted(self._states)

    def to_json_obj(self) -> dict:
        out = {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "samples": [],
        }
        for key in self.label_sets():
            state = self._states[key]
            out["samples"].append({
                "labels": dict(key),
                "count": state.count,
                "sum": state.sum,
                "bucket_counts": list(state.counts),
            })
        return out


class MetricsRegistry:
    """Named metric families with get-or-create registration.

    Re-registering an existing name returns the existing family; asking
    for it under a different kind (or different histogram buckets) is a
    programming error and raises :class:`~repro.errors.ObsError`.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ObsError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            if help and not existing.help:
                existing.help = help
            buckets = kwargs.get("buckets")
            if buckets is not None and isinstance(existing, Histogram):
                if tuple(float(b) for b in buckets) != existing.buckets:
                    raise ObsError(
                        f"histogram {name!r} already registered with "
                        f"buckets {existing.buckets}"
                    )
            return existing
        metric = cls(name, help=help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        # The default only applies at first registration; buckets=None
        # afterwards means "keep whatever the family was created with".
        if buckets is None and name not in self._metrics:
            buckets = CYCLE_BUCKETS
        return self._get_or_create(  # type: ignore
            Histogram, name, help, buckets=buckets
        )

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[Metric]:
        return iter(self._metrics[name] for name in self.names())

    def clear(self) -> None:
        self._metrics.clear()

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready dict of the whole registry (manifest embedding)."""
        return {
            "meta": runtime_meta(),
            "metrics": [metric.to_json_obj() for metric in self],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        meta = runtime_meta()
        lines = [
            f"# repro {meta['version']} "
            f"git={meta['git_sha'] or 'unknown'} python={meta['python']}",
        ]
        for metric in self:
            if metric.help:
                lines.append(
                    f"# HELP {metric.name} {_escape_help(metric.help)}"
                )
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key in metric.label_sets():
                    cumulative = metric.cumulative_counts(**dict(key))
                    edges = [str(_format_value(e)) for e in metric.buckets]
                    for edge, count in zip(edges + ["+Inf"], cumulative):
                        labels = _render_labels(key, [("le", edge)])
                        lines.append(
                            f"{metric.name}_bucket{labels} {count}"
                        )
                    labels = _render_labels(key)
                    lines.append(
                        f"{metric.name}_sum{labels} "
                        f"{_format_value(metric.sum(**dict(key)))}"
                    )
                    lines.append(
                        f"{metric.name}_count{labels} "
                        f"{metric.count(**dict(key))}"
                    )
            else:
                for key, value in metric.samples():
                    lines.append(
                        f"{metric.name}{_render_labels(key)} "
                        f"{_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> object:
    """Render integral floats without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value
