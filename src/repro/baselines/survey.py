"""Survey of published FPGA CAM designs (paper Table I) and the
Figure 1 characteristic scores derived from it.

The literature rows are recorded verbatim from the paper; our own row
is produced by :func:`repro.core.analysis.our_survey_row` from the
models so the bench regenerates rather than restates it. ``None``
means the original publication did not report the value (the table's
"-" entries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.analysis import our_survey_row


@dataclass(frozen=True)
class SurveyEntry:
    """One Table I row."""

    name: str
    category: str  # LUT / BRAM / Hybrid / DSP
    platform: str
    entries: int
    width: int
    frequency_mhz: float
    lut: Optional[int]
    bram: Optional[int]
    dsp: Optional[int]
    update_latency: Optional[int]
    search_latency: Optional[int]
    note: str = ""

    @property
    def size_bits(self) -> int:
        return self.entries * self.width


#: Published designs, in the paper's row order.
LITERATURE: List[SurveyEntry] = [
    SurveyEntry("Scale-TCAM", "LUT", "XC7V2000T", 4096, 150, 139.0,
                322_648, 0, 0, 33, None,
                note="LUTs = 80662 slices x 4"),
    SurveyEntry("DURE", "LUT", "Virtex-6", 1024, 144, 175.0,
                35_807, 0, 0, 65, 1,
                note="latencies measured on a single 512x36 block"),
    SurveyEntry("BPR-CAM", "LUT", "XC6VLX760", 1024, 144, 111.0,
                15_260, 0, 0, None, 2),
    SurveyEntry("Frac-TCAM", "LUT", "XC7V2000T", 1024, 160, 357.0,
                16_384, 0, 0, 38, None),
    SurveyEntry("HP-TCAM", "BRAM", "Virtex-6", 512, 36, 118.0,
                5_326, 56, 0, None, 5),
    SurveyEntry("PUMP-CAM", "BRAM", "XC6VLX760", 1024, 140, 87.0,
                7_516, 80, 0, 129, None),
    SurveyEntry("IO-CAM", "BRAM", "Intel Arria V 5ASTD5", 8192, 32, 135.0,
                19_017, 2_112, 0, None, None,
                note="ALMs and M10Ks on the Intel fabric"),
    SurveyEntry("REST-CAM", "Hybrid", "Kintex-7", 72, 28, 50.0,
                130, 1, 0, 513, 5),
    SurveyEntry("Preusser et al.", "DSP", "XCVU9P", 1000, 24, 350.0,
                2_843, 0, 1_022, None, 42),
]


def ours_entry() -> SurveyEntry:
    """Our design's row, regenerated from the models."""
    row = our_survey_row()
    return SurveyEntry(
        name="Ours",
        category="DSP",
        platform=row["platform"],
        entries=row["entries"],
        width=row["width"],
        frequency_mhz=row["frequency_mhz"],
        lut=row["lut"],
        bram=row["bram"],
        dsp=row["dsp"],
        update_latency=row["update_latency"],
        search_latency=row["search_latency"],
        note="measured from the cycle model + calibrated area/timing",
    )


def full_survey() -> List[SurveyEntry]:
    """Every Table I row including ours."""
    return LITERATURE + [ours_entry()]


# ----------------------------------------------------------------------
# Figure 1: characteristics per design family
# ----------------------------------------------------------------------
#: The five radar axes of Figure 1, in presentation order.
AXES = ("scalability", "performance", "frequency", "integration",
        "multi_query")

#: Qualitative axes not derivable from Table I numbers alone; rubric:
#: *integration* reflects how much bespoke glue an accelerator needs
#: (hybrid designs manage several resource types -> hardest; our unit is
#: generated from parameters with a bus interface -> easiest).
#: *multi-query* is structural: only the grouped unit answers multiple
#: keys per cycle.
_RUBRIC = {
    "LUT": {"integration": 0.50, "multi_query": 0.20},
    "BRAM": {"integration": 0.50, "multi_query": 0.20},
    "Hybrid": {"integration": 0.25, "multi_query": 0.20},
    "DSP (prior)": {"integration": 0.50, "multi_query": 0.20},
    "Ours": {"integration": 1.00, "multi_query": 1.00},
}

#: Latency fallbacks (cycles) for rows whose publication omitted one of
#: the two numbers, taken from each family's algorithmic behaviour
#: (see repro.baselines.lut_cam / bram_cam docstrings).
_FAMILY_DEFAULTS = {
    "LUT": {"update": 38, "search": 2},
    "BRAM": {"update": 129, "search": 5},
    "Hybrid": {"update": 513, "search": 5},
    "DSP": {"update": 2, "search": 42},
}


def _family_of(entry: SurveyEntry) -> str:
    if entry.name == "Ours":
        return "Ours"
    if entry.category == "DSP":
        return "DSP (prior)"
    return entry.category


def _latency_sum(entry: SurveyEntry) -> float:
    defaults = _FAMILY_DEFAULTS.get(entry.category, {"update": 64, "search": 8})
    update = entry.update_latency if entry.update_latency is not None else defaults["update"]
    search = entry.search_latency if entry.search_latency is not None else defaults["search"]
    return float(update + search)


def characteristics() -> Dict[str, Dict[str, float]]:
    """Figure 1 scores in [0, 1] per design family.

    Quantitative axes come from Table I: scalability is the log of the
    family's best demonstrated CAM size, frequency its best clock, and
    performance the inverse of its best combined update+search latency.
    Integration and multi-query follow the documented rubric.
    """
    rows = full_survey()
    families: Dict[str, List[SurveyEntry]] = {}
    for row in rows:
        families.setdefault(_family_of(row), []).append(row)

    # Scalability per the figure's caption: "the achieved CAM size",
    # i.e. demonstrated entry count.
    best_entries = max(row.entries for row in rows)
    best_freq = max(row.frequency_mhz for row in rows)
    best_inv_latency = max(1.0 / _latency_sum(row) for row in rows)

    scores: Dict[str, Dict[str, float]] = {}
    for family, members in families.items():
        entries = max(member.entries for member in members)
        freq = max(member.frequency_mhz for member in members)
        inv_latency = max(1.0 / _latency_sum(member) for member in members)
        scores[family] = {
            "scalability": round(
                math.log2(entries) / math.log2(best_entries), 3
            ),
            "performance": round(inv_latency / best_inv_latency, 3),
            "frequency": round(freq / best_freq, 3),
            "integration": _RUBRIC[family]["integration"],
            "multi_query": _RUBRIC[family]["multi_query"],
        }
    return scores
