"""BRAM-based transposed-table TCAM (the HP-TCAM / PUMP-CAM family).

Same transposed-table algorithm as the LUTRAM variant, but each chunk
table lives in block RAM: chunks are 9 bits wide (512 rows, the natural
BRAM address depth) and the match vector is striped across BRAMs 36
bits at a time. BRAM reads are synchronous, so the search path gains a
cycle per stage (read, AND-reduce, encode) -- the 5-cycle search
latencies of Table I. Updates must rewrite all 512 rows; designs like
PUMP-CAM multipump the BRAM at Nx the fabric clock to cut that to
~512/N + overhead cycles, which the ``pump_factor`` parameter models.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.baselines.base import BaselineCam, CamCost
from repro.core.mask import CamEntry
from repro.core.types import SearchResult
from repro.errors import CapacityError, ConfigError
from repro.fabric.calibration import CalibratedCurve
from repro.fabric.resources import ResourceVector

#: Frequency anchored at published BRAM-CAM implementations:
#: HP-TCAM (512 entries, 118 MHz) and PUMP-CAM (1024 entries, 87 MHz).
_BRAM_FREQ = CalibratedCurve(
    {512.0: 118.0, 1024.0: 87.0},
    provenance="Table I (HP-TCAM, PUMP-CAM)",
    clamp=(50.0, 200.0),
)

#: Natural BRAM geometry on Xilinx fabrics: 512 rows x 36-bit words.
BRAM_ROWS = 512
BRAM_WORD_BITS = 36


class BramCam(BaselineCam):
    """Block-RAM transposed-table TCAM (capacity-cheap, update-slow)."""

    category = "BRAM"

    def __init__(
        self, capacity: int, data_width: int, *, pump_factor: int = 1
    ) -> None:
        super().__init__(capacity, data_width)
        if pump_factor < 1:
            raise ConfigError(f"pump_factor must be >= 1, got {pump_factor}")
        self.pump_factor = pump_factor
        self.chunk_bits = 9
        self.num_chunks = math.ceil(data_width / self.chunk_bits)
        self._tables: List[List[int]] = [
            [0] * BRAM_ROWS for _ in range(self.num_chunks)
        ]
        self._occupancy = 0

    # -- functional ----------------------------------------------------
    def _program_entry(self, address: int, entry: CamEntry) -> None:
        bit = 1 << address
        chunk_mask = BRAM_ROWS - 1
        for chunk in range(self.num_chunks):
            shift = chunk * self.chunk_bits
            value_bits = (entry.value >> shift) & chunk_mask
            ignore_bits = (entry.mask >> shift) & chunk_mask
            table = self._tables[chunk]
            for row in range(BRAM_ROWS):
                if (row & ~ignore_bits) == (value_bits & ~ignore_bits):
                    table[row] |= bit
                else:
                    table[row] &= ~bit

    def update(self, entries: Sequence[CamEntry]) -> None:
        entries = list(entries)
        if self._occupancy + len(entries) > self.capacity:
            raise CapacityError(
                f"BramCam overflow: {self._occupancy} + {len(entries)} > "
                f"{self.capacity}"
            )
        for entry in entries:
            self._program_entry(self._occupancy, entry)
            self._occupancy += 1

    def search(self, key: int) -> SearchResult:
        vector = (1 << self._occupancy) - 1
        for chunk in range(self.num_chunks):
            row = (key >> (chunk * self.chunk_bits)) & (BRAM_ROWS - 1)
            vector &= self._tables[chunk][row]
            if not vector:
                break
        return SearchResult.from_vector(key, vector)

    def reset(self) -> None:
        for table in self._tables:
            for row in range(BRAM_ROWS):
                table[row] = 0
        self._occupancy = 0

    # -- cost ----------------------------------------------------------
    def cost(self) -> CamCost:
        brams = self.num_chunks * math.ceil(self.capacity / BRAM_WORD_BITS)
        and_tree = math.ceil(self.capacity * (self.num_chunks - 1) / 6)
        encoder = math.ceil(
            self.capacity * max(1, math.ceil(math.log2(max(self.capacity, 2)))) / 6
        )
        update_latency = math.ceil(BRAM_ROWS / self.pump_factor) + 1
        return CamCost(
            resources=ResourceVector(
                lut=and_tree + encoder,
                ff=self.capacity + 2 * self.data_width,
                bram=brams,
            ),
            frequency_mhz=round(_BRAM_FREQ(self.capacity) , 0),
            update_latency=update_latency,
            search_latency=5,
        )
