"""Baseline CAM families and the published-design survey (Table I)."""

from repro.baselines.base import BaselineCam, CamCost, occupied_first_match
from repro.baselines.bram_cam import BRAM_ROWS, BRAM_WORD_BITS, BramCam
from repro.baselines.dsp_queue import REFERENCE_LANES, DspCascadeCam
from repro.baselines.lut_cam import LutRamCam
from repro.baselines.register_cam import RegisterCam
from repro.baselines.survey import (
    AXES,
    LITERATURE,
    SurveyEntry,
    characteristics,
    full_survey,
    ours_entry,
)

__all__ = [
    "AXES",
    "BRAM_ROWS",
    "BRAM_WORD_BITS",
    "BaselineCam",
    "BramCam",
    "CamCost",
    "DspCascadeCam",
    "LITERATURE",
    "LutRamCam",
    "REFERENCE_LANES",
    "RegisterCam",
    "SurveyEntry",
    "characteristics",
    "full_survey",
    "occupied_first_match",
    "ours_entry",
]
