"""Common interface for baseline CAM models.

Every baseline implements the same functional surface (update / search /
reset) plus cost and timing estimators so the Figure 1 and Table I
benches can score all design families uniformly against our DSP-based
design.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.mask import CamEntry
from repro.core.types import SearchResult
from repro.fabric.resources import ResourceVector


@dataclass(frozen=True)
class CamCost:
    """Cost/latency summary of a CAM instance for comparison tables."""

    resources: ResourceVector
    frequency_mhz: float
    #: Cycles for a single end-to-end update of one entry.
    update_latency: int
    #: Cycles for a single end-to-end search.
    search_latency: int
    #: Concurrent search keys supported per cycle.
    concurrent_queries: int = 1


class BaselineCam(abc.ABC):
    """Functional + cost model of one CAM design family."""

    #: Human-readable family label ("LUT", "BRAM", "DSP", ...).
    category: str = "?"

    def __init__(self, capacity: int, data_width: int) -> None:
        self.capacity = capacity
        self.data_width = data_width

    # -- functional ----------------------------------------------------
    @abc.abstractmethod
    def update(self, entries: Sequence[CamEntry]) -> None:
        """Store entries (appending in insertion order)."""

    @abc.abstractmethod
    def search(self, key: int) -> SearchResult:
        """Priority-match ``key`` against the stored content."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear all stored content."""

    def search_many(self, keys: Sequence[int]) -> List[SearchResult]:
        return [self.search(key) for key in keys]

    # -- cost ----------------------------------------------------------
    @abc.abstractmethod
    def cost(self) -> CamCost:
        """Resource/latency estimate for this instance."""

    # -- bookkeeping ---------------------------------------------------
    @property
    def size_bits(self) -> int:
        return self.capacity * self.data_width

    def describe(self) -> str:
        cost = self.cost()
        return (
            f"{type(self).__name__}({self.capacity}x{self.data_width}b, "
            f"{self.category}): {cost.frequency_mhz:.0f} MHz, "
            f"update {cost.update_latency} cy, search {cost.search_latency} cy"
        )


def occupied_first_match(
    entries: Sequence[Optional[CamEntry]], key: int
) -> SearchResult:
    """Shared priority-match helper over an occupancy-ordered store."""
    vector = 0
    for address, entry in enumerate(entries):
        if entry is not None and entry.matches(key):
            vector |= 1 << address
    return SearchResult.from_vector(key, vector)
