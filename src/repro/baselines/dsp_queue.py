"""Cascaded DSP CAM in the style of Preusser et al. (FPL 2020).

The prior DSP-based design ("Using DSP Slices as Content-Addressable
Update Queues") chains DSP slices through their dedicated cascade
paths: each slice holds one entry, the search key ripples down the
cascade, and every slice compares as the key passes. The dedicated
cascade routing is what buys the high clock rate, but a search result
is only complete once the key has traversed a whole chain -- the
42-cycle search latency of Table I for ~1000 entries in 24 parallel
chains. Updates push new entries at the chain heads (it is a queue),
which is cheap.

This is the design the paper positions itself against: same resource
class (DSPs), but long search latency and no multi-query support.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.baselines.base import BaselineCam, CamCost
from repro.core.mask import CamEntry
from repro.core.types import SearchResult
from repro.errors import CapacityError, ConfigError
from repro.fabric.resources import ResourceVector

#: Published reference point: 1000 x 24-bit entries, 350 MHz, 42-cycle
#: search on an XCVU9P (Table I).
REFERENCE_LANES = 24


class DspCascadeCam(BaselineCam):
    """Cascade-of-DSP-queues CAM (fast clock, long search latency)."""

    category = "DSP"

    def __init__(
        self, capacity: int, data_width: int, *, lanes: int = REFERENCE_LANES
    ) -> None:
        super().__init__(capacity, data_width)
        if data_width > 48:
            raise ConfigError(
                f"a DSP slice stores at most 48 bits, got {data_width}"
            )
        if lanes < 1:
            raise ConfigError(f"lanes must be >= 1, got {lanes}")
        self.lanes = lanes
        self._chains: List[List[CamEntry]] = [[] for _ in range(lanes)]
        self._order: List[int] = []  # insertion order: chain index per entry

    # ------------------------------------------------------------------
    @property
    def chain_depth(self) -> int:
        """Depth of the longest cascade chain (the search latency core)."""
        return max(1, math.ceil(self.capacity / self.lanes))

    @property
    def occupancy(self) -> int:
        return len(self._order)

    # -- functional ----------------------------------------------------
    def update(self, entries: Sequence[CamEntry]) -> None:
        entries = list(entries)
        if self.occupancy + len(entries) > self.capacity:
            raise CapacityError(
                f"DspCascadeCam overflow: {self.occupancy} + {len(entries)} "
                f"> {self.capacity}"
            )
        for entry in entries:
            lane = len(self._order) % self.lanes
            self._chains[lane].append(entry)
            self._order.append(lane)

    def search(self, key: int) -> SearchResult:
        # The hardware reports per-slice matches as the key ripples the
        # cascade; addresses follow insertion order across lanes.
        vector = 0
        positions = [0] * self.lanes
        for address, lane in enumerate(self._order):
            entry = self._chains[lane][positions[lane]]
            positions[lane] += 1
            if entry.matches(key):
                vector |= 1 << address
        return SearchResult.from_vector(key, vector)

    def reset(self) -> None:
        self._chains = [[] for _ in range(self.lanes)]
        self._order = []

    # -- cost ----------------------------------------------------------
    def cost(self) -> CamCost:
        # One DSP per entry plus a small per-lane head/merge overhead in
        # LUTs; cascade routing keeps the clock near the published
        # 350 MHz until chains span SLRs.
        dsp = self.capacity + self.lanes  # +1 cascade terminator per lane
        merge_luts = math.ceil(self.capacity / 8) + 24 * self.lanes
        frequency = 350.0 if self.chain_depth <= 64 else 300.0
        return CamCost(
            resources=ResourceVector(lut=merge_luts, dsp=dsp),
            frequency_mhz=frequency,
            update_latency=2,
            search_latency=self.chain_depth + 2,
        )
