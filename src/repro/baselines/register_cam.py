"""Naive flip-flop/LUT brute-force CAM baseline.

Every entry lives in ``data_width`` flip-flops with a dedicated
LUT-compare tree; all comparators run in parallel and feed an OR/priority
tree. This is the textbook FPGA CAM: excellent latency, terrible
scaling, included as the lower anchor of the Figure 1 comparison.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.baselines.base import BaselineCam, CamCost, occupied_first_match
from repro.core.mask import CamEntry
from repro.core.types import SearchResult
from repro.errors import CapacityError
from repro.fabric.resources import ResourceVector


class RegisterCam(BaselineCam):
    """Brute-force registered CAM (FF storage + LUT comparators)."""

    category = "LUT"

    def __init__(self, capacity: int, data_width: int) -> None:
        super().__init__(capacity, data_width)
        self._entries: List[Optional[CamEntry]] = []

    # -- functional ----------------------------------------------------
    def update(self, entries: Sequence[CamEntry]) -> None:
        entries = list(entries)
        if len(self._entries) + len(entries) > self.capacity:
            raise CapacityError(
                f"RegisterCam overflow: {len(self._entries)} + "
                f"{len(entries)} > {self.capacity}"
            )
        self._entries.extend(entries)

    def search(self, key: int) -> SearchResult:
        return occupied_first_match(self._entries, key)

    def reset(self) -> None:
        self._entries.clear()

    # -- cost ----------------------------------------------------------
    def cost(self) -> CamCost:
        # Storage FFs plus a 6-input-LUT compare tree per entry and a
        # priority/OR reduction over all entries.
        compare_luts = self.capacity * math.ceil(self.data_width / 3)
        reduce_luts = math.ceil(self.capacity / 3)
        ffs = self.capacity * self.data_width
        # The wide OR tree is the critical path: ~log6 levels.
        levels = max(1, math.ceil(math.log(max(self.capacity, 2), 6)))
        frequency = max(80.0, 450.0 - 45.0 * levels)
        return CamCost(
            resources=ResourceVector(lut=compare_luts + reduce_luts, ff=ffs),
            frequency_mhz=frequency,
            update_latency=1,
            search_latency=2,
        )
