"""Transposed-LUTRAM TCAM emulation (the Frac-TCAM / DURE family).

The classic LUTRAM technique stores, for every ``chunk_bits``-wide slice
of the key and every possible slice value, a bit vector over entries
that records which entries accept that slice. A search reads one row
per chunk (all chunks in parallel, one LUTRAM access) and ANDs the
vectors -- 1-2 cycles. An update must rewrite the entry's bit in
*every* row of every chunk table, which is why the published update
latencies sit in the 33-65 cycle range (2^chunk_bits rows, written
chunk-parallel, plus setup): the preprocessing overhead the paper's
section I calls out.

This model implements the actual table algorithm (so it is a working
TCAM) and derives its costs from the table geometry.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.baselines.base import BaselineCam, CamCost
from repro.core.mask import CamEntry
from repro.core.types import SearchResult
from repro.errors import CapacityError, ConfigError
from repro.fabric.calibration import CalibratedCurve
from repro.fabric.resources import ResourceVector

#: Achievable frequency anchored at published LUT-CAM implementations:
#: Frac-TCAM (1024 entries, 357 MHz) and Scale-TCAM (4096, 139 MHz).
_LUT_FREQ = CalibratedCurve(
    {1024.0: 357.0, 4096.0: 139.0},
    provenance="Table I (Frac-TCAM, Scale-TCAM)",
    clamp=(60.0, 400.0),
)


class LutRamCam(BaselineCam):
    """LUTRAM transposed-table TCAM (update-expensive, search-fast)."""

    category = "LUT"

    def __init__(
        self, capacity: int, data_width: int, *, chunk_bits: int = 5
    ) -> None:
        super().__init__(capacity, data_width)
        if not 1 <= chunk_bits <= 9:
            raise ConfigError(f"chunk_bits must be 1..9, got {chunk_bits}")
        self.chunk_bits = chunk_bits
        self.num_chunks = math.ceil(data_width / chunk_bits)
        self.rows_per_chunk = 1 << chunk_bits
        # tables[chunk][row] = bitmask over entries matching that row.
        self._tables: List[List[int]] = [
            [0] * self.rows_per_chunk for _ in range(self.num_chunks)
        ]
        self._occupancy = 0

    # ------------------------------------------------------------------
    def _chunk_of(self, value: int, chunk: int) -> int:
        return (value >> (chunk * self.chunk_bits)) & (self.rows_per_chunk - 1)

    def _program_entry(self, address: int, entry: CamEntry) -> None:
        """Write the entry's accept-bit into every chunk table row."""
        bit = 1 << address
        chunk_mask = self.rows_per_chunk - 1
        for chunk in range(self.num_chunks):
            shift = chunk * self.chunk_bits
            value_bits = (entry.value >> shift) & chunk_mask
            ignore_bits = (entry.mask >> shift) & chunk_mask
            table = self._tables[chunk]
            for row in range(self.rows_per_chunk):
                accepts = (row & ~ignore_bits) == (value_bits & ~ignore_bits)
                if accepts:
                    table[row] |= bit
                else:
                    table[row] &= ~bit

    # -- functional ----------------------------------------------------
    def update(self, entries: Sequence[CamEntry]) -> None:
        entries = list(entries)
        if self._occupancy + len(entries) > self.capacity:
            raise CapacityError(
                f"LutRamCam overflow: {self._occupancy} + {len(entries)} > "
                f"{self.capacity}"
            )
        for entry in entries:
            self._program_entry(self._occupancy, entry)
            self._occupancy += 1

    def search(self, key: int) -> SearchResult:
        vector = (1 << self._occupancy) - 1
        for chunk in range(self.num_chunks):
            row = self._chunk_of(key, chunk)
            vector &= self._tables[chunk][row]
            if not vector:
                break
        return SearchResult.from_vector(key, vector)

    def reset(self) -> None:
        for table in self._tables:
            for row in range(self.rows_per_chunk):
                table[row] = 0
        self._occupancy = 0

    # -- cost ----------------------------------------------------------
    def cost(self) -> CamCost:
        # Each chunk table is rows x capacity bits of LUTRAM; a 6-input
        # LUT provides 64 bits, so LUTs = chunks * capacity * rows / 64,
        # plus the AND-reduce tree and the priority encoder.
        table_luts = math.ceil(
            self.num_chunks * self.capacity * self.rows_per_chunk / 64
        )
        and_tree = math.ceil(self.capacity * (self.num_chunks - 1) / 6)
        encoder = math.ceil(
            self.capacity * max(1, math.ceil(math.log2(max(self.capacity, 2)))) / 6
        )
        # Update rewrites every row once (rows are written chunk-parallel)
        # plus a fixed mask-preprocessing overhead.
        update_latency = self.rows_per_chunk + 6
        return CamCost(
            resources=ResourceVector(
                lut=table_luts + and_tree + encoder,
                ff=self.capacity + 2 * self.data_width,
            ),
            frequency_mhz=round(_LUT_FREQ(self.capacity), 0),
            update_latency=update_latency,
            search_latency=2,
        )
