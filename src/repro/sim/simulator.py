"""Cycle driver for the two-phase synchronous simulation kernel."""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.errors import SimulationError
from repro.sim.component import Component
from repro.sim.trace import Trace


class Simulator:
    """Drives one synchronous clock domain over a set of component trees.

    Each :meth:`step` performs one clock cycle: every component in every
    registered tree runs its *compute* phase, then every component
    *commits*. The current cycle number is available as :attr:`cycle`
    and starts at 0 (no edges have happened yet).

    Example
    -------
    >>> from repro.sim import Component, Simulator
    >>> class Counter(Component):
    ...     def reset_state(self):
    ...         self.value = 0
    ...     def compute(self):
    ...         self.schedule(value=self.value + 1)
    >>> counter = Counter()
    >>> sim = Simulator(counter)
    >>> sim.step(3)
    >>> counter.value
    3
    """

    def __init__(self, *components: Component, trace: Optional[Trace] = None) -> None:
        if not components:
            raise SimulationError("Simulator needs at least one component")
        self._roots: List[Component] = list(components)
        self._cycle = 0
        self._trace = trace
        for root in self._roots:
            if not isinstance(root, Component):
                raise SimulationError(
                    f"Simulator roots must be Components, got {type(root).__name__}"
                )
            if trace is not None:
                root.attach_tracer(trace)
        self.reset()

    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        """Number of clock edges simulated since the last reset."""
        return self._cycle

    @property
    def trace(self) -> Optional[Trace]:
        """The attached trace object, if tracing is enabled."""
        return self._trace

    def reset(self) -> None:
        """Synchronous reset: restore all register state, zero the cycle."""
        for root in self._roots:
            root.reset_tree()
        self._cycle = 0

    # ------------------------------------------------------------------
    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` edges."""
        if cycles < 0:
            raise SimulationError(f"cannot step a negative cycle count ({cycles})")
        for _ in range(cycles):
            if self._trace is not None:
                self._trace.begin_cycle(self._cycle)
            for root in self._roots:
                for component in root.iter_tree():
                    component.compute()
            for root in self._roots:
                for component in root.iter_tree():
                    component.commit()
            self._cycle += 1

    def run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int = 10_000,
    ) -> int:
        """Step until ``condition()`` is true; return cycles consumed.

        The condition is evaluated *after* each edge. Raises
        :class:`SimulationError` if ``max_cycles`` edges pass without the
        condition holding, so a wedged model fails loudly instead of
        spinning forever.
        """
        start = self._cycle
        if condition():
            return 0
        for _ in range(max_cycles):
            self.step()
            if condition():
                return self._cycle - start
        raise SimulationError(
            f"condition not met within {max_cycles} cycles "
            f"(started at cycle {start})"
        )

    def drain(self, idle: Callable[[], bool], max_cycles: int = 10_000) -> int:
        """Alias of :meth:`run_until` with pipeline-drain phrasing."""
        return self.run_until(idle, max_cycles=max_cycles)


def elapse(components: Iterable[Component], cycles: int) -> Simulator:
    """Convenience: build a simulator over ``components`` and step it."""
    sim = Simulator(*components)
    sim.step(cycles)
    return sim
