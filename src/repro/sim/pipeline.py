"""Reusable sequential building blocks: registers, shift chains, FIFOs.

These are all :class:`repro.sim.Component` subclasses and follow the
two-phase protocol: pushes performed during a compute phase become
visible after the commit (clock edge), exactly like flip-flop chains.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import SimulationError
from repro.sim.component import Component


class Register(Component):
    """A single clocked register with enable.

    Drive :attr:`d` (and :attr:`enable`) during the parent's compute
    phase; :attr:`q` updates at the edge.
    """

    def __init__(self, init: Any = 0, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._init = init
        self.reset_state()

    def reset_state(self) -> None:
        self.d = self._init
        self.q = self._init
        self.enable = True

    def compute(self) -> None:
        if self.enable:
            self.schedule(q=self.d)


class ShiftRegister(Component):
    """Fixed-depth shift chain; models a multi-cycle pipeline delay.

    ``push(value)`` during compute; after ``depth`` edges that value
    appears at :attr:`out`. When nothing is pushed a configurable
    ``bubble`` (default ``None``) enters the chain instead.
    """

    def __init__(self, depth: int, bubble: Any = None, name: Optional[str] = None) -> None:
        super().__init__(name)
        if depth < 1:
            raise SimulationError(f"ShiftRegister depth must be >= 1, got {depth}")
        self._depth = depth
        self._bubble = bubble
        self.reset_state()

    @property
    def depth(self) -> int:
        return self._depth

    def reset_state(self) -> None:
        self._stages: List[Any] = [self._bubble] * self._depth
        self._next_in: Any = self._bubble
        self.out: Any = self._bubble

    def push(self, value: Any) -> None:
        """Insert ``value`` into the chain at the upcoming edge."""
        self._next_in = value

    def compute(self) -> None:
        shifted = [self._next_in] + self._stages[:-1]
        self.schedule(_stages=shifted, out=self._stages[-1], _next_in=self._bubble)

    def peek(self, stage: int) -> Any:
        """Inspect an in-flight stage (0 = most recently pushed)."""
        if not 0 <= stage < self._depth:
            raise SimulationError(
                f"stage {stage} out of range for depth {self._depth}"
            )
        return self._stages[stage]

    def occupancy(self) -> int:
        """Number of non-bubble values currently in flight."""
        return sum(1 for stage in self._stages if stage != self._bubble)


class Fifo(Component):
    """Synchronous FIFO with registered occupancy.

    ``push``/``pop`` are called during compute phases; both take effect
    at the edge. Simultaneous push and pop on a non-empty FIFO is
    allowed (flow-through is not modelled; the popped value is the old
    head).
    """

    def __init__(self, capacity: int, name: Optional[str] = None) -> None:
        super().__init__(name)
        if capacity < 1:
            raise SimulationError(f"Fifo capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self.reset_state()

    @property
    def capacity(self) -> int:
        return self._capacity

    def reset_state(self) -> None:
        self._items: List[Any] = []
        self._push_value: Any = None
        self._push_pending = False
        self._pop_pending = False
        self.head: Any = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def full(self) -> bool:
        return len(self._items) >= self._capacity

    def push(self, value: Any) -> None:
        if self._push_pending:
            raise SimulationError(f"{self.name}: double push in one cycle")
        if self.full and not self._pop_pending:
            raise SimulationError(f"{self.name}: push to full FIFO")
        self._push_value = value
        self._push_pending = True

    def pop(self) -> Any:
        """Request a pop; returns the current head (old value)."""
        if self.empty:
            raise SimulationError(f"{self.name}: pop from empty FIFO")
        if self._pop_pending:
            raise SimulationError(f"{self.name}: double pop in one cycle")
        self._pop_pending = True
        return self._items[0]

    def compute(self) -> None:
        items = list(self._items)
        if self._pop_pending:
            items.pop(0)
        if self._push_pending:
            items.append(self._push_value)
        if len(items) > self._capacity:
            raise SimulationError(f"{self.name}: overflow ({len(items)} items)")
        self.schedule(
            _items=items,
            _push_pending=False,
            _pop_pending=False,
            _push_value=None,
            head=items[0] if items else None,
        )


class ValidPipe(Component):
    """A latency pipe carrying (valid, payload) pairs.

    This is the workhorse for modelling fixed-latency datapaths such as
    the CAM block's search path: ``send(payload)`` and, ``depth`` cycles
    later, :attr:`valid` goes high for one cycle with :attr:`payload`
    set. Fully pipelined: one new payload may enter every cycle
    (initiation interval 1).
    """

    _BUBBLE = object()

    def __init__(self, depth: int, name: Optional[str] = None) -> None:
        super().__init__(name)
        if depth < 1:
            raise SimulationError(f"ValidPipe depth must be >= 1, got {depth}")
        self._depth = depth
        self.reset_state()

    @property
    def depth(self) -> int:
        return self._depth

    def reset_state(self) -> None:
        self._stages: List[Any] = [self._BUBBLE] * self._depth
        self._next_in: Any = self._BUBBLE
        self.valid = False
        self.payload: Any = None

    def send(self, payload: Any) -> None:
        """Launch a payload into the pipe at the upcoming edge."""
        self._next_in = payload

    def compute(self) -> None:
        tail = self._stages[-1]
        shifted = [self._next_in] + self._stages[:-1]
        self.schedule(
            _stages=shifted,
            _next_in=self._BUBBLE,
            valid=tail is not self._BUBBLE,
            payload=None if tail is self._BUBBLE else tail,
        )

    def in_flight(self) -> int:
        """Number of live payloads currently inside the pipe."""
        return sum(1 for stage in self._stages if stage is not self._BUBBLE)

    def tail(self):
        """Combinational read of the final register: (valid, payload).

        For a payload sent during the compute phase of cycle ``t``, the
        tail reads valid during the compute phase of cycle ``t + depth``
        -- the reading parent must consume it in that same phase (it
        shifts out at the following edge). This is how a parent
        component taps a registered pipeline without adding a cycle.
        """
        stage = self._stages[-1]
        if stage is self._BUBBLE:
            return False, None
        return True, stage
