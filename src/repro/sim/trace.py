"""Lightweight signal tracing for the simulation kernel.

The trace records ``(cycle, component, signal, value)`` events emitted by
components via :meth:`repro.sim.Component.emit`. It is deliberately
simple -- a list of events with query helpers and a text dump -- because
the benches only need to count cycles between stimulus and response, not
render full waveforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """A single traced signal sample."""

    cycle: int
    component: str
    signal: str
    value: object


class Trace:
    """In-memory event trace with simple query helpers."""

    def __init__(self, limit: Optional[int] = None) -> None:
        self._events: List[TraceEvent] = []
        self._cycle = 0
        self._limit = limit

    def begin_cycle(self, cycle: int) -> None:
        """Mark the start of a simulation cycle (called by the driver)."""
        self._cycle = cycle

    def record(self, component: str, signals: Dict[str, object]) -> None:
        """Append one event per named signal for the current cycle."""
        for signal, value in signals.items():
            if self._limit is not None and len(self._events) >= self._limit:
                return
            self._events.append(
                TraceEvent(self._cycle, component, signal, value)
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        component: Optional[str] = None,
        signal: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Return events filtered by component and/or signal name."""
        out = []
        for event in self._events:
            if component is not None and event.component != component:
                continue
            if signal is not None and event.signal != signal:
                continue
            out.append(event)
        return out

    def first_cycle(self, component: str, signal: str, value: object) -> Optional[int]:
        """Cycle of the first event matching ``value``, or ``None``."""
        for event in self.events(component, signal):
            if event.value == value:
                return event.cycle
        return None

    def to_text(self) -> str:
        """Render the trace as aligned text, one event per line."""
        lines = ["cycle  component                     signal           value"]
        for event in self._events:
            lines.append(
                f"{event.cycle:5d}  {event.component:<28}  "
                f"{event.signal:<15}  {event.value!r}"
            )
        return "\n".join(lines)
