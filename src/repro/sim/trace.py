"""Lightweight signal tracing for the simulation kernel.

The trace records ``(cycle, component, signal, value)`` events emitted by
components via :meth:`repro.sim.Component.emit`. It is deliberately
simple -- a list of events with query helpers and a text dump -- because
the benches only need to count cycles between stimulus and response, not
render full waveforms.

When a record limit is set, hitting it is **explicit**: the whole
``emit`` that would overflow is dropped atomically (never a partial
cycle), the :attr:`Trace.truncated` flag latches, and the dropped-event
count is kept, so consumers can tell a complete capture from a clipped
one. :meth:`events` warns once per trace and :meth:`to_text` appends a
truncation footer.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """A single traced signal sample."""

    cycle: int
    component: str
    signal: str
    value: object


class Trace:
    """In-memory event trace with simple query helpers."""

    def __init__(self, limit: Optional[int] = None) -> None:
        self._events: List[TraceEvent] = []
        self._cycle = 0
        self._limit = limit
        self._dropped = 0
        self._warned = False

    def begin_cycle(self, cycle: int) -> None:
        """Mark the start of a simulation cycle (called by the driver)."""
        self._cycle = cycle

    def record(self, component: str, signals: Dict[str, object]) -> None:
        """Append one event per named signal for the current cycle.

        If the record limit would be exceeded, the *entire* call is
        dropped (no partial component emission) and the trace is marked
        :attr:`truncated`.
        """
        if (self._limit is not None
                and len(self._events) + len(signals) > self._limit):
            self._dropped += len(signals)
            return
        for signal, value in signals.items():
            self._events.append(
                TraceEvent(self._cycle, component, signal, value)
            )

    # ------------------------------------------------------------------
    @property
    def limit(self) -> Optional[int]:
        """The configured record limit (``None`` = unlimited)."""
        return self._limit

    @property
    def truncated(self) -> bool:
        """True when at least one emission was dropped at the limit."""
        return self._dropped > 0

    @property
    def dropped(self) -> int:
        """Number of signal events dropped after the limit was hit."""
        return self._dropped

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        component: Optional[str] = None,
        signal: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Return events filtered by component and/or signal name.

        Warns (once per trace) when the trace was truncated, so a query
        over a clipped capture does not silently look complete.
        """
        if self.truncated and not self._warned:
            self._warned = True
            warnings.warn(
                f"trace truncated at its {self._limit}-event limit; "
                f"{self._dropped} events were dropped",
                RuntimeWarning,
                stacklevel=2,
            )
        out = []
        for event in self._events:
            if component is not None and event.component != component:
                continue
            if signal is not None and event.signal != signal:
                continue
            out.append(event)
        return out

    def first_cycle(self, component: str, signal: str, value: object) -> Optional[int]:
        """Cycle of the first event matching ``value``, or ``None``."""
        for event in self.events(component, signal):
            if event.value == value:
                return event.cycle
        return None

    def to_text(self) -> str:
        """Render the trace as aligned text, one event per line."""
        lines = ["cycle  component                     signal           value"]
        for event in self._events:
            lines.append(
                f"{event.cycle:5d}  {event.component:<28}  "
                f"{event.signal:<15}  {event.value!r}"
            )
        if self.truncated:
            lines.append(
                f"[truncated: limit {self._limit} reached, "
                f"{self._dropped} events dropped]"
            )
        return "\n".join(lines)
