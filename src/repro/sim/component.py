"""Synchronous hardware component base class.

The simulation kernel models a single synchronous clock domain with
two-phase evaluation, mirroring how registers behave in RTL:

1. *compute* phase -- every component reads its input attributes and its
   current state and **schedules** updates via :meth:`Component.schedule`.
   Nothing observable changes during this phase, so evaluation order
   between sibling components cannot create read-after-write races.
2. *commit* phase -- all scheduled updates are applied atomically,
   modelling the rising clock edge.

A component's public attributes play the role of ports: a parent (or the
testbench) assigns input attributes before a cycle, and reads output
attributes after it. Because outputs only change at commit, every
component boundary behaves like a register stage, exactly as in the
paper's pipelined CAM design.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import SimulationError


class Component:
    """Base class for all synchronous hardware models.

    Subclasses override :meth:`compute` (combinational logic plus
    next-state calculation) and optionally :meth:`reset_state` (the
    synchronous reset value of every register). State updates must go
    through :meth:`schedule` so that the two-phase contract holds.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self._name = name if name is not None else type(self).__name__
        self._pending: Dict[str, object] = {}
        self._children: List["Component"] = []
        self._tracer = None

    # ------------------------------------------------------------------
    # identity / hierarchy
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Instance name used in traces and error messages."""
        return self._name

    @property
    def children(self) -> List["Component"]:
        """Direct sub-components, in registration order."""
        return list(self._children)

    def add_child(self, component: "Component") -> "Component":
        """Register ``component`` as a child and return it.

        Children participate automatically in compute/commit/reset when
        the parent is stepped by a :class:`repro.sim.Simulator`.
        """
        if not isinstance(component, Component):
            raise SimulationError(
                f"{self._name}: child must be a Component, got "
                f"{type(component).__name__}"
            )
        self._children.append(component)
        return component

    def iter_tree(self) -> Iterator["Component"]:
        """Yield this component and every descendant, depth-first."""
        yield self
        for child in self._children:
            yield from child.iter_tree()

    # ------------------------------------------------------------------
    # two-phase protocol
    # ------------------------------------------------------------------
    def schedule(self, **updates: object) -> None:
        """Schedule attribute updates to apply at the next clock edge.

        Scheduling the same attribute twice within one compute phase is
        a modelling bug (two drivers on one register) and raises
        :class:`SimulationError`.
        """
        for key, value in updates.items():
            if key in self._pending:
                raise SimulationError(
                    f"{self._name}: attribute {key!r} scheduled twice in "
                    "one cycle (multiple drivers)"
                )
            self._pending[key] = value

    def compute(self) -> None:
        """Combinational evaluation; override in subclasses."""

    def commit(self) -> None:
        """Apply scheduled updates (the clock edge). Rarely overridden."""
        for key, value in self._pending.items():
            setattr(self, key, value)
        self._pending.clear()

    def reset_state(self) -> None:
        """Restore power-on register values; override in subclasses."""

    def reset_tree(self) -> None:
        """Reset this component and all descendants."""
        for component in self.iter_tree():
            component._pending.clear()
            component.reset_state()

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def emit(self, **signals: object) -> None:
        """Record named signal values into the attached trace, if any."""
        if self._tracer is not None:
            self._tracer.record(self._name, signals)

    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`repro.sim.trace.Trace` to the whole subtree."""
        for component in self.iter_tree():
            component._tracer = tracer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self._name!r}>"
