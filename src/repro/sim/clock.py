"""Clock-domain arithmetic: cycles <-> wall-clock time at a frequency."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class ClockDomain:
    """A named clock with a frequency, for cycle/time conversions.

    The CAM benches count cycles in the simulator and convert them to
    latency or throughput figures using the fabric timing model's
    frequency estimate for the configuration under test.
    """

    name: str
    frequency_mhz: float

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise SimulationError(
                f"clock {self.name!r}: frequency must be positive, got "
                f"{self.frequency_mhz}"
            )

    @property
    def period_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1e3 / self.frequency_mhz

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert a cycle count to nanoseconds."""
        return cycles * self.period_ns

    def cycles_to_us(self, cycles: float) -> float:
        """Convert a cycle count to microseconds."""
        return self.cycles_to_ns(cycles) / 1e3

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count to milliseconds."""
        return self.cycles_to_ns(cycles) / 1e6

    def ns_to_cycles(self, nanoseconds: float) -> int:
        """Ceiling number of cycles covering ``nanoseconds``."""
        if nanoseconds < 0:
            raise SimulationError("time must be non-negative")
        period = self.period_ns
        full = int(nanoseconds // period)
        return full if full * period >= nanoseconds else full + 1

    def ops_per_second(self, ops_per_cycle: float) -> float:
        """Throughput in operations/second given per-cycle issue rate."""
        return ops_per_cycle * self.frequency_mhz * 1e6

    def mops(self, ops_per_cycle: float) -> float:
        """Throughput in mega-operations/second.

        The paper's Tables VI and VIII report throughput in these units
        (labelled op/s, e.g. ``4800`` for 16 words/cycle at 300 MHz).
        """
        return ops_per_cycle * self.frequency_mhz
