"""Synchronous cycle-accurate simulation kernel.

Public surface:

- :class:`Component` -- two-phase (compute/commit) hardware model base.
- :class:`Simulator` -- single-clock cycle driver.
- :class:`Register`, :class:`ShiftRegister`, :class:`Fifo`,
  :class:`ValidPipe` -- sequential building blocks.
- :class:`ClockDomain` -- cycle/time conversions.
- :class:`Trace`, :class:`TraceEvent` -- signal tracing.
"""

from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.pipeline import Fifo, Register, ShiftRegister, ValidPipe
from repro.sim.simulator import Simulator, elapse
from repro.sim.trace import Trace, TraceEvent
from repro.sim.vcd import trace_to_vcd, write_vcd

__all__ = [
    "ClockDomain",
    "Component",
    "Fifo",
    "Register",
    "ShiftRegister",
    "Simulator",
    "Trace",
    "TraceEvent",
    "ValidPipe",
    "elapse",
    "trace_to_vcd",
    "write_vcd",
]
