"""repro: Configurable DSP-based CAM architecture for FPGAs.

A production-quality Python reproduction of "Configurable DSP-Based CAM
Architecture for Data-Intensive Applications on FPGAs" (DAC 2025):
a register-accurate DSP48E2 slice model, the hierarchical CAM
cell/block/unit design with multi-query support, the competing CAM
baselines, the triangle-counting case study, Verilog template
generation, and a bench harness regenerating every table and figure of
the paper's evaluation.

Quick start::

    import repro
    from repro.core import unit_for_entries

    session = repro.open_session(
        unit_for_entries(256, block_size=64, data_width=32,
                         default_groups=2))
    session.update([10, 20, 30])
    result = session.search_one(20)
    assert result.hit and result.address == 1

:func:`repro.open_session` is the single session constructor: pick an
execution engine (``"cycle"``, ``"batch"``, ``"audit"``) and optionally
shard the key space (``shards=4``) for the async service layer
(:mod:`repro.service`).

See README.md for the architecture overview and DESIGN.md for the
system inventory and paper-substitution notes.
"""

__version__ = "1.0.0"

__all__ = ["__version__", "open_session"]


def __getattr__(name):
    # Lazy re-export (PEP 562): `repro` must stay import-light because
    # the engine modules themselves import `repro.obs` at load time.
    if name == "open_session":
        from repro.core.batch import open_session

        return open_session
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
