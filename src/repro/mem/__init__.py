"""Off-chip memory substrate: DDR channel and streaming-bus models."""

from repro.mem.bus import StreamBus
from repro.mem.ddr import U250_SINGLE_CHANNEL, DdrChannel

__all__ = ["DdrChannel", "StreamBus", "U250_SINGLE_CHANNEL"]
