"""DDR4 memory-channel model for the triangle-counting case study.

The U250 exposes four DDR4-2400 72-bit channels; the paper constrains
both the baseline and the CAM accelerator to a single channel, whose
512-bit user interface runs at the kernel clock. The model answers the
only questions the cycle-cost analysis asks: how many kernel cycles
does a burst of N bytes occupy, and what is the random-access latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import ConfigError


@dataclass(frozen=True)
class DdrChannel:
    """One DDR channel as seen from the FPGA kernel.

    Attributes
    ----------
    peak_bandwidth_gbps:
        Peak transfer rate in gigabytes per second (19.2 for DDR4-2400
        with a 64-bit data bus).
    access_latency_ns:
        Random-access (row activate + CAS) latency for the first beat
        of a burst.
    interface_bits:
        Width of the user-side AXI data bus (512 on the U250 shell).
    efficiency:
        Sustained fraction of peak bandwidth for streaming bursts
        (row-buffer hits, refresh overheads).
    """

    peak_bandwidth_gbps: float = 19.2
    access_latency_ns: float = 60.0
    interface_bits: int = 512
    efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.peak_bandwidth_gbps <= 0:
            raise ConfigError("bandwidth must be positive")
        if self.interface_bits <= 0 or self.interface_bits % 8:
            raise ConfigError("interface width must be a positive byte multiple")
        if not 0 < self.efficiency <= 1:
            raise ConfigError("efficiency must be in (0, 1]")
        if self.access_latency_ns < 0:
            raise ConfigError("latency must be non-negative")

    # ------------------------------------------------------------------
    @property
    def interface_bytes(self) -> int:
        """Bytes per interface beat."""
        return self.interface_bits // 8

    @property
    def sustained_bandwidth_gbps(self) -> float:
        return self.peak_bandwidth_gbps * self.efficiency

    def beats_for_bytes(self, num_bytes: int) -> int:
        """Interface beats needed to move ``num_bytes``."""
        if num_bytes < 0:
            raise ConfigError("byte count must be non-negative")
        return -(-num_bytes // self.interface_bytes)

    def stream_cycles(self, num_bytes: int, frequency_mhz: float) -> int:
        """Kernel cycles a streaming burst occupies the channel.

        The larger of the interface-beat count (the kernel cannot accept
        more than one beat per cycle) and the DRAM-bandwidth bound.
        """
        if frequency_mhz <= 0:
            raise ConfigError("frequency must be positive")
        beats = self.beats_for_bytes(num_bytes)
        seconds = num_bytes / (self.sustained_bandwidth_gbps * 1e9)
        dram_cycles = int(seconds * frequency_mhz * 1e6 + 0.999999)
        cycles = max(beats, dram_cycles)
        if obs.enabled():
            obs.inc("mem_ddr_transactions_total",
                    help="DDR channel transactions modelled", kind="stream")
            obs.inc("mem_ddr_bytes_total", num_bytes,
                    help="bytes moved over the DDR channel model")
            obs.inc("mem_ddr_cycles_total", cycles,
                    help="kernel cycles the DDR channel model charged")
        return cycles

    def random_access_cycles(self, frequency_mhz: float) -> int:
        """Kernel cycles of first-beat latency for a random access."""
        if frequency_mhz <= 0:
            raise ConfigError("frequency must be positive")
        cycles = int(self.access_latency_ns * frequency_mhz / 1e3 + 0.999999)
        if obs.enabled():
            obs.inc("mem_ddr_transactions_total", kind="random")
            obs.inc("mem_ddr_cycles_total", cycles)
        return cycles


#: The paper's evaluation condition: one U250 DDR4 channel.
U250_SINGLE_CHANNEL = DdrChannel()
