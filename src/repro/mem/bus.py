"""Streaming-bus arithmetic shared by the CAM unit and the accelerators.

A :class:`StreamBus` describes a fixed-width synchronous data bus (the
512-bit AXI-stream style interface of the case study) and answers
beat-count questions for word streams.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import ConfigError


@dataclass(frozen=True)
class StreamBus:
    """A fixed-width streaming bus carrying fixed-width words."""

    width_bits: int = 512
    word_bits: int = 32

    def __post_init__(self) -> None:
        if self.width_bits < 1:
            raise ConfigError("bus width must be positive")
        if not 1 <= self.word_bits <= self.width_bits:
            raise ConfigError(
                f"word width {self.word_bits} must be in 1..{self.width_bits}"
            )

    @property
    def words_per_beat(self) -> int:
        """Whole words carried per bus beat."""
        return self.width_bits // self.word_bits

    def beats_for_words(self, words: int) -> int:
        """Beats needed to stream ``words`` words (ceiling)."""
        if words < 0:
            raise ConfigError("word count must be non-negative")
        per_beat = self.words_per_beat
        beats = -(-words // per_beat)
        if obs.enabled():
            obs.inc("mem_bus_beats_total", beats,
                    help="streaming-bus beats modelled")
            obs.inc("mem_bus_words_total", words,
                    help="words streamed over the bus model")
        return beats

    def bytes_for_words(self, words: int) -> int:
        """Memory footprint of ``words`` words, in bytes."""
        if words < 0:
            raise ConfigError("word count must be non-negative")
        return words * ((self.word_bits + 7) // 8)
