"""Static configuration attributes of a DSP48E2 instance.

These mirror the synthesis-time attributes of the silicon primitive
(UG579): input/pipeline register depths, multiplier usage, and the
pattern detector setup. The CAM cell uses :func:`cam_cell_attributes`,
which selects single input registers, a registered output, and the
pattern detector with a caller-supplied MASK.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.dsp.primitives import DSP_WIDTH, check_fits


@dataclass(frozen=True)
class Dsp48Attributes:
    """Synthesis-time attributes of one DSP48E2 slice.

    Attributes
    ----------
    areg, breg:
        Depth of the A/B input register chains (0, 1 or 2).
    creg, mreg, preg:
        C input, multiplier and output register depths (0 or 1).
    use_mult:
        Whether the 27x18 multiplier path is active. The CAM never uses
        it; it exists so the slice model is complete and testable in
        its native arithmetic role.
    use_pattern_detect:
        Enables the pattern detector (PATTERNDETECT output).
    pattern:
        48-bit pattern compared against the ALU output.
    mask:
        48-bit mask; bits set to 1 are *excluded* from the comparison
        (the silicon convention, and the convention of Table II in the
        paper).
    rnd:
        Rounding constant feeding the W multiplexer's RND input.
    """

    areg: int = 1
    breg: int = 1
    creg: int = 1
    mreg: int = 1
    preg: int = 1
    dreg: int = 1
    adreg: int = 1
    use_mult: bool = False
    #: Route the D + A pre-adder into the multiplier (AMULTSEL = "AD").
    use_preadder: bool = False
    #: ALU SIMD partitioning: "ONE48", "TWO24" or "FOUR12" (UG579).
    #: Arithmetic carries do not cross lane boundaries; logic modes and
    #: the pattern detector always see the full 48-bit word.
    simd: str = "ONE48"
    use_pattern_detect: bool = True
    pattern: int = 0
    mask: int = 0
    rnd: int = 0

    def __post_init__(self) -> None:
        for name, depth, limit in (
            ("AREG", self.areg, 2),
            ("BREG", self.breg, 2),
            ("CREG", self.creg, 1),
            ("MREG", self.mreg, 1),
            ("PREG", self.preg, 1),
            ("DREG", self.dreg, 1),
            ("ADREG", self.adreg, 1),
        ):
            if not 0 <= depth <= limit:
                raise ConfigError(
                    f"{name} must be in 0..{limit}, got {depth}"
                )
        if self.simd not in ("ONE48", "TWO24", "FOUR12"):
            raise ConfigError(
                f'USE_SIMD must be "ONE48", "TWO24" or "FOUR12", '
                f"got {self.simd!r}"
            )
        if self.use_preadder and not self.use_mult:
            raise ConfigError(
                "the pre-adder feeds the multiplier; USE_MULT is required"
            )
        if self.use_mult and self.simd != "ONE48":
            raise ConfigError("SIMD mode requires the multiplier to be off")
        check_fits(self.pattern, DSP_WIDTH, "PATTERN")
        check_fits(self.mask, DSP_WIDTH, "MASK")
        check_fits(self.rnd, DSP_WIDTH, "RND")

    def with_mask(self, mask: int) -> "Dsp48Attributes":
        """Copy with a different pattern-detector MASK."""
        return replace(self, mask=mask)

    def with_pattern(self, pattern: int) -> "Dsp48Attributes":
        """Copy with a different pattern-detector PATTERN."""
        return replace(self, pattern=pattern)

    @property
    def input_latency(self) -> int:
        """Cycles from the A/B ports to the ALU input."""
        return max(self.areg, self.breg)

    @property
    def search_latency(self) -> int:
        """Cycles from the C port to a registered match output.

        One cycle through CREG (if present) plus one through PREG (if
        present); with both enabled this is the paper's 2-cycle cell
        search latency (Table V).
        """
        return self.creg + self.preg


def cam_cell_attributes(mask: int = 0) -> Dsp48Attributes:
    """The attribute set used by the paper's CAM cell.

    Single A/B/C input registers, registered output, no multiplier, and
    the pattern detector comparing the (masked) XOR result against zero:
    a stored-word/key match makes the XOR output all-zeros, so PATTERN
    stays 0 and MASK encodes the CAM type per Table II.
    """
    return Dsp48Attributes(
        areg=1,
        breg=1,
        creg=1,
        mreg=0,
        preg=1,
        use_mult=False,
        use_pattern_detect=True,
        pattern=0,
        mask=mask,
    )
