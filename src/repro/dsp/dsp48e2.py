"""Register-accurate functional model of the Xilinx DSP48E2 slice.

The model reproduces the dataflow of UG579 figure 1-1 at cycle
granularity:

- A/B input register chains (AREG/BREG in 0..2) feeding both the
  multiplier and the 48-bit ``A:B`` concatenation,
- the C input register (CREG),
- a 27x18 multiplier with optional MREG,
- the X/Y/Z/W multiplexers decoded from OPMODE,
- the 48-bit ALU (arithmetic add/sub and the two-input logic unit),
- the output register PREG and the pattern detector
  (``PATTERNDETECT = ((P ^ PATTERN) & ~MASK) == 0``), which is what the
  CAM cell uses as its match bit.

Clock enables (``ce_a`` etc.) gate each register chain, exactly like the
silicon CE pins; the CAM cell uses ``ce_a/ce_b`` as its *update* strobe
so a stored word is held until explicitly rewritten.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigError
from repro.dsp.attributes import Dsp48Attributes
from repro.dsp.opmode import (
    ALL_ONES,
    AluMode,
    WMux,
    XMux,
    YMux,
    ZMux,
    apply_logic,
    is_logic_mode,
    logic_function,
    unpack_opmode,
)
from repro.dsp.primitives import (
    A_WIDTH,
    B_WIDTH,
    DSP_WIDTH,
    concat_ab,
    mask_for,
    masked_equal,
    truncate,
)
from repro.sim.component import Component

#: The multiplier consumes A[26:0] (27 bits) and B[17:0] (18 bits).
MULT_A_WIDTH = 27


class DSP48E2(Component):
    """One DSP48E2 slice as a synchronous component.

    Input ports (assign before each cycle): :attr:`a`, :attr:`b`,
    :attr:`c`, :attr:`pcin`, :attr:`carry_in`, :attr:`opmode`,
    :attr:`alumode`, and the clock enables :attr:`ce_a`, :attr:`ce_b`,
    :attr:`ce_c`, :attr:`ce_m`, :attr:`ce_p`.

    Output ports (read after a cycle): :attr:`p`, :attr:`pcout`,
    :attr:`patterndetect`, :attr:`patternbdetect`, :attr:`carryout`.
    """

    def __init__(
        self,
        attributes: Optional[Dsp48Attributes] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.attributes = attributes if attributes is not None else Dsp48Attributes()
        self.reset_state()

    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        attrs = self.attributes
        # Input ports.
        self.a = 0
        self.b = 0
        self.c = 0
        self.d = 0
        self.pcin = 0
        self.carry_in = 0
        self.opmode = 0
        self.alumode = int(AluMode.ADD)
        self.ce_a = True
        self.ce_b = True
        self.ce_c = True
        self.ce_d = True
        self.ce_m = True
        self.ce_p = True
        # Register chains (index 0 = closest to the port).
        self._a_pipe: List[int] = [0] * attrs.areg
        self._b_pipe: List[int] = [0] * attrs.breg
        self._c_pipe: List[int] = [0] * attrs.creg
        self._m_pipe: List[int] = [0] * attrs.mreg
        self._d_pipe: List[int] = [0] * attrs.dreg
        self._ad_pipe: List[int] = [0] * attrs.adreg
        # Output ports.
        self.p = 0
        self.pcout = 0
        self.carryout = 0
        self.patterndetect = False
        self.patternbdetect = False
        # ALU memo (see compute()).
        self._alu_key = None
        self._alu_result = (0, 0, False, False)

    # ------------------------------------------------------------------
    # register-chain helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _chain_output(pipe: List[int], port_value: int) -> int:
        """Value presented to downstream logic by a register chain."""
        return pipe[-1] if pipe else port_value

    @staticmethod
    def _shifted(pipe: List[int], port_value: int, enable: bool) -> List[int]:
        """Next state of a register chain after one clock edge."""
        if not pipe:
            return pipe
        if not enable:
            return list(pipe)
        return [port_value] + pipe[:-1]

    # ------------------------------------------------------------------
    def compute(self) -> None:
        attrs = self.attributes
        a_port = truncate(self.a, A_WIDTH)
        b_port = truncate(self.b, B_WIDTH)
        c_port = truncate(self.c, DSP_WIDTH)

        a_reg = self._chain_output(self._a_pipe, a_port)
        b_reg = self._chain_output(self._b_pipe, b_port)
        c_reg = self._chain_output(self._c_pipe, c_port)

        # Pre-adder path (D + A, 27-bit wrap) feeding the multiplier
        # when AMULTSEL = "AD".
        d_port = truncate(self.d, MULT_A_WIDTH)
        d_reg = self._chain_output(self._d_pipe, d_port)
        ad_sum = truncate(d_reg + truncate(a_reg, MULT_A_WIDTH), MULT_A_WIDTH)
        ad_reg = self._chain_output(self._ad_pipe, ad_sum)

        # Multiplier path (27x18, unsigned model).
        if attrs.use_mult:
            mult_a = ad_reg if attrs.use_preadder else truncate(a_reg, MULT_A_WIDTH)
            product = mult_a * b_reg
            m_value = self._chain_output(self._m_pipe, truncate(product, DSP_WIDTH))
        else:
            product = 0
            m_value = 0

        # The ALU is a pure function of its sampled inputs; memoise the
        # last evaluation so quiescent cycles (no port changes) skip the
        # mux decode entirely -- a large win for big CAM simulations.
        alu_key = (
            a_reg, b_reg, c_reg, m_value, self.p,
            self.opmode, self.alumode, self.carry_in, self.pcin,
        )
        if alu_key == self._alu_key:
            alu_out, carry, pd, pbd = self._alu_result
        else:
            alu_out, carry, pd, pbd = self._evaluate_alu(
                a_reg=a_reg, b_reg=b_reg, c_reg=c_reg, m_value=m_value
            )
            self._alu_key = alu_key
            self._alu_result = (alu_out, carry, pd, pbd)

        updates = {
            "_a_pipe": self._shifted(self._a_pipe, a_port, self.ce_a),
            "_b_pipe": self._shifted(self._b_pipe, b_port, self.ce_b),
            "_c_pipe": self._shifted(self._c_pipe, c_port, self.ce_c),
            "_d_pipe": self._shifted(self._d_pipe, d_port, self.ce_d),
            "_ad_pipe": self._shifted(self._ad_pipe, ad_sum, True),
        }
        if attrs.use_mult:
            updates["_m_pipe"] = self._shifted(
                self._m_pipe, truncate(product, DSP_WIDTH), self.ce_m
            )
        if attrs.preg:
            if self.ce_p:
                updates.update(
                    p=alu_out,
                    pcout=alu_out,
                    carryout=carry,
                    patterndetect=pd,
                    patternbdetect=pbd,
                )
            self.schedule(**updates)
        else:
            # Combinational P output: visible within the same cycle.
            self.schedule(**updates)
            self.p = alu_out
            self.pcout = alu_out
            self.carryout = carry
            self.patterndetect = pd
            self.patternbdetect = pbd
        self.emit(p=alu_out, patterndetect=pd)

    # ------------------------------------------------------------------
    def _evaluate_alu(self, a_reg: int, b_reg: int, c_reg: int, m_value: int):
        """Decode OPMODE/ALUMODE and produce (P, carry, PD, PBD)."""
        attrs = self.attributes
        x_sel, y_sel, z_sel, w_sel = unpack_opmode(self.opmode)
        try:
            alumode = AluMode(self.alumode)
        except ValueError:
            raise ConfigError(f"unsupported ALUMODE {self.alumode:#06b}")

        ab = concat_ab(a_reg, b_reg)
        x = {
            XMux.ZERO: 0,
            XMux.M: m_value,
            XMux.P: self.p,
            XMux.AB: ab,
        }[x_sel]
        y = {
            YMux.ZERO: 0,
            YMux.M: m_value,
            YMux.ALL_ONES: ALL_ONES,
            YMux.C: c_reg,
        }[y_sel]
        z = {
            ZMux.ZERO: 0,
            ZMux.PCIN: truncate(self.pcin, DSP_WIDTH),
            ZMux.P: self.p,
            ZMux.C: c_reg,
            ZMux.P_MACC: self.p,
            ZMux.PCIN_SHIFT17: truncate(self.pcin, DSP_WIDTH) >> 17,
            ZMux.P_SHIFT17: self.p >> 17,
        }[z_sel]
        w = {
            WMux.ZERO: 0,
            WMux.P: self.p,
            WMux.RND: attrs.rnd,
            WMux.C: c_reg,
        }[w_sel]

        carry = 0
        if is_logic_mode(alumode):
            if (x_sel, y_sel) == (XMux.M, YMux.M):
                raise ConfigError(
                    "logic-unit mode cannot select the multiplier on X and Y"
                )
            function = logic_function(alumode, y_sel)
            alu_out = apply_logic(function, x, z)
        elif attrs.simd == "ONE48":
            operand = w + x + y + self.carry_in
            total = self._arith(alumode, z, operand)
            carry = (total >> DSP_WIDTH) & 1 if total >= 0 else 0
            alu_out = total & mask_for(DSP_WIDTH)
        else:
            # SIMD: independent lanes with no cross-lane carries. The
            # carry-in only reaches lane 0 (UG579: CARRYIN per segment
            # is tied to the single CARRYIN for simple adds).
            lanes = 2 if attrs.simd == "TWO24" else 4
            lane_width = DSP_WIDTH // lanes
            lane_mask = mask_for(lane_width)
            alu_out = 0
            for lane in range(lanes):
                shift = lane * lane_width
                z_lane = (z >> shift) & lane_mask
                operand = (
                    ((w >> shift) & lane_mask)
                    + ((x >> shift) & lane_mask)
                    + ((y >> shift) & lane_mask)
                    + (self.carry_in if lane == 0 else 0)
                )
                total = self._arith(alumode, z_lane, operand)
                if total >= 0 and (total >> lane_width) & 1:
                    carry |= 1 << lane
                alu_out |= (total & lane_mask) << shift

        if attrs.use_pattern_detect:
            pd = masked_equal(alu_out, attrs.pattern, attrs.mask)
            pbd = masked_equal(alu_out, ~attrs.pattern & ALL_ONES, attrs.mask)
        else:
            pd = False
            pbd = False
        return alu_out, carry, pd, pbd

    @staticmethod
    def _arith(alumode: AluMode, z: int, operand: int) -> int:
        """One ALU arithmetic evaluation (full-width or one SIMD lane)."""
        if alumode == AluMode.ADD:
            return z + operand
        if alumode == AluMode.SUB:
            return z - operand
        if alumode == AluMode.NOT_ADD:
            return -z + operand - 1
        return -(z + operand) - 1  # AluMode.NOT_SUB

    # ------------------------------------------------------------------
    # inspection helpers used by the CAM cell and by tests
    # ------------------------------------------------------------------
    @property
    def stored_ab(self) -> int:
        """Current 48-bit A:B register contents (the CAM stored word)."""
        a_reg = self._chain_output(self._a_pipe, truncate(self.a, A_WIDTH))
        b_reg = self._chain_output(self._b_pipe, truncate(self.b, B_WIDTH))
        return concat_ab(a_reg, b_reg)

    @property
    def held_c(self) -> int:
        """Current C register contents (the last latched search key)."""
        return self._chain_output(self._c_pipe, truncate(self.c, DSP_WIDTH))
