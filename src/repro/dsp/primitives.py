"""Bit-level helpers shared by the DSP48E2 model and the CAM core.

All values are plain non-negative Python integers interpreted as
fixed-width bit vectors; helpers here keep widths explicit so that the
48-bit DSP datapath behaves exactly like the silicon (wrap-around
arithmetic, masked comparisons, field packing).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import ConfigError

#: Width of the DSP48E2 ALU datapath and of the A:B / C operands.
DSP_WIDTH = 48
#: Width of the A input port (upper part of the A:B concatenation).
A_WIDTH = 30
#: Width of the B input port (lower part of the A:B concatenation).
B_WIDTH = 18


def mask_for(width: int) -> int:
    """All-ones mask of ``width`` bits."""
    if width < 0:
        raise ConfigError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Keep the low ``width`` bits of ``value`` (hardware wrap-around)."""
    return value & mask_for(width)


def check_fits(value: int, width: int, what: str = "value") -> int:
    """Validate that ``value`` is representable in ``width`` unsigned bits."""
    if value < 0:
        raise ConfigError(f"{what} must be non-negative, got {value}")
    if value >> width:
        raise ConfigError(
            f"{what} 0x{value:x} does not fit in {width} bits"
        )
    return value


def concat_ab(a: int, b: int) -> int:
    """Form the 48-bit A:B concatenation used as the X-mux input."""
    return (truncate(a, A_WIDTH) << B_WIDTH) | truncate(b, B_WIDTH)


def split_ab(value: int) -> "tuple[int, int]":
    """Split a 48-bit word into the (A, B) register pair."""
    value = truncate(value, DSP_WIDTH)
    return value >> B_WIDTH, value & mask_for(B_WIDTH)


def bit(value: int, index: int) -> int:
    """Extract a single bit."""
    return (value >> index) & 1


def popcount(value: int) -> int:
    """Number of set bits."""
    return bin(value).count("1")


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def clog2(value: int) -> int:
    """Ceiling log2, i.e. address bits needed for ``value`` entries."""
    if value <= 0:
        raise ConfigError(f"clog2 needs a positive value, got {value}")
    return (value - 1).bit_length()


def pack_words(words: Iterable[int], word_width: int) -> int:
    """Pack words little-endian (first word in the low bits) into one int."""
    packed = 0
    for index, word in enumerate(words):
        check_fits(word, word_width, f"word[{index}]")
        packed |= word << (index * word_width)
    return packed


def unpack_words(value: int, word_width: int, count: int) -> List[int]:
    """Inverse of :func:`pack_words`; returns ``count`` words."""
    word_mask = mask_for(word_width)
    return [(value >> (i * word_width)) & word_mask for i in range(count)]


def masked_equal(lhs: int, rhs: int, ignore_mask: int) -> bool:
    """Compare two words ignoring the bits set in ``ignore_mask``.

    This is exactly the DSP48E2 pattern-detector condition
    ``((lhs XOR rhs) AND NOT mask) == 0`` that the CAM cell relies on.
    """
    return ((lhs ^ rhs) & ~ignore_mask & mask_for(DSP_WIDTH)) == 0
