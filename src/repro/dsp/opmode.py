"""OPMODE / ALUMODE encodings of the DSP48E2 slice (UG579).

The DSP48E2 ALU computes, in arithmetic mode::

    P = Z (+/-) (W + X + Y + CIN)

and in logic mode a bitwise function of ``X`` and ``Z`` selected by
ALUMODE with the Y multiplexer forced to all-zeros or all-ones. The CAM
cell uses exactly one configuration -- ``X = A:B``, ``Z = C``,
``ALUMODE = XOR`` -- but the full mux/ALU decode is modelled so the
slice is reusable (and testable) beyond the CAM.

Field layout (UG579 v1.9.1):

- ``OPMODE[1:0]``  -- X multiplexer
- ``OPMODE[3:2]``  -- Y multiplexer
- ``OPMODE[6:4]``  -- Z multiplexer
- ``OPMODE[8:7]``  -- W multiplexer
- ``ALUMODE[3:0]`` -- ALU function
"""

from __future__ import annotations

import enum
import functools

from repro.errors import ConfigError
from repro.dsp.primitives import DSP_WIDTH, mask_for

ALL_ONES = mask_for(DSP_WIDTH)


class XMux(enum.IntEnum):
    """OPMODE[1:0] -- X multiplexer selection."""

    ZERO = 0b00
    M = 0b01
    P = 0b10
    AB = 0b11  # the A:B concatenation


class YMux(enum.IntEnum):
    """OPMODE[3:2] -- Y multiplexer selection."""

    ZERO = 0b00
    M = 0b01
    ALL_ONES = 0b10
    C = 0b11


class ZMux(enum.IntEnum):
    """OPMODE[6:4] -- Z multiplexer selection."""

    ZERO = 0b000
    PCIN = 0b001
    P = 0b010
    C = 0b011
    P_MACC = 0b100
    PCIN_SHIFT17 = 0b101
    P_SHIFT17 = 0b110


class WMux(enum.IntEnum):
    """OPMODE[8:7] -- W multiplexer selection."""

    ZERO = 0b00
    P = 0b01
    RND = 0b10
    C = 0b11


class AluMode(enum.IntEnum):
    """ALUMODE[3:0] -- ALU function (UG579 table 2-7 / 2-8).

    Arithmetic codes:

    - ``ADD``  : ``P = Z + (W + X + Y + CIN)``
    - ``SUB``  : ``P = Z - (W + X + Y + CIN)``

    Logic codes (require ``Y = ZERO`` or ``Y = ALL_ONES``); the resulting
    function of X and Z is given by :func:`logic_function`.
    """

    ADD = 0b0000
    SUB = 0b0011
    NOT_ADD = 0b0001  # -Z + (W+X+Y+CIN) - 1
    NOT_SUB = 0b0010  # -(Z + W + X + Y + CIN) - 1
    XOR = 0b0100
    XNOR = 0b0101
    AND = 0b1100
    NAND = 0b1110


#: (ALUMODE, YMux) -> two-input logic function name, per UG579 Table 2-8.
_LOGIC_TABLE = {
    (AluMode.XOR, YMux.ZERO): "xor",
    (AluMode.XOR, YMux.ALL_ONES): "xnor",
    (AluMode.XNOR, YMux.ZERO): "xnor",
    (AluMode.XNOR, YMux.ALL_ONES): "xor",
    (AluMode.AND, YMux.ZERO): "and",
    (AluMode.AND, YMux.ALL_ONES): "or",
    (AluMode.NAND, YMux.ZERO): "nand",
    (AluMode.NAND, YMux.ALL_ONES): "nor",
}


def pack_opmode(x: XMux, y: YMux, z: ZMux, w: WMux = WMux.ZERO) -> int:
    """Assemble the 9-bit OPMODE word from its mux fields."""
    return (int(w) << 7) | (int(z) << 4) | (int(y) << 2) | int(x)


@functools.lru_cache(maxsize=512)
def unpack_opmode(opmode: int) -> "tuple[XMux, YMux, ZMux, WMux]":
    """Split a 9-bit OPMODE word into mux fields, validating each.

    Cached: the decode is pure and called once per slice per cycle.
    """
    if not 0 <= opmode < (1 << 9):
        raise ConfigError(f"OPMODE must be a 9-bit value, got {opmode:#x}")
    try:
        x = XMux(opmode & 0b11)
        y = YMux((opmode >> 2) & 0b11)
        z = ZMux((opmode >> 4) & 0b111)
        w = WMux((opmode >> 7) & 0b11)
    except ValueError as exc:
        raise ConfigError(f"OPMODE {opmode:#05x} has a reserved field: {exc}")
    return x, y, z, w


def is_logic_mode(alumode: AluMode) -> bool:
    """True when ALUMODE selects the two-input logic unit."""
    return alumode in (AluMode.XOR, AluMode.XNOR, AluMode.AND, AluMode.NAND)


def logic_function(alumode: AluMode, y: YMux) -> str:
    """Name of the X-op-Z logic function for a logic-mode ALUMODE."""
    try:
        return _LOGIC_TABLE[(alumode, y)]
    except KeyError:
        raise ConfigError(
            f"ALUMODE {alumode.name} with Y mux {y.name} is not a valid "
            "logic-unit configuration (Y must be ZERO or ALL_ONES)"
        )


def apply_logic(function: str, x: int, z: int) -> int:
    """Evaluate a named two-input logic function over 48-bit vectors."""
    if function == "xor":
        return (x ^ z) & ALL_ONES
    if function == "xnor":
        return ~(x ^ z) & ALL_ONES
    if function == "and":
        return x & z & ALL_ONES
    if function == "or":
        return (x | z) & ALL_ONES
    if function == "nand":
        return ~(x & z) & ALL_ONES
    if function == "nor":
        return ~(x | z) & ALL_ONES
    raise ConfigError(f"unknown logic function {function!r}")


#: OPMODE used by the CAM cell: X = A:B, Y = 0, Z = C, W = 0.
CAM_OPMODE = pack_opmode(XMux.AB, YMux.ZERO, ZMux.C, WMux.ZERO)
#: ALUMODE used by the CAM cell: bitwise XOR.
CAM_ALUMODE = AluMode.XOR
