"""Functional model of the Xilinx DSP48E2 slice (UG579).

The CAM architecture of the paper repurposes DSP slices as
storage-plus-compare cells; this package provides the slice model that
:mod:`repro.core` builds on, plus the OPMODE/ALUMODE encodings and
bit-vector primitives.
"""

from repro.dsp.attributes import Dsp48Attributes, cam_cell_attributes
from repro.dsp.dsp48e2 import DSP48E2, MULT_A_WIDTH
from repro.dsp.opmode import (
    ALL_ONES,
    CAM_ALUMODE,
    CAM_OPMODE,
    AluMode,
    WMux,
    XMux,
    YMux,
    ZMux,
    pack_opmode,
    unpack_opmode,
)
from repro.dsp.primitives import (
    A_WIDTH,
    B_WIDTH,
    DSP_WIDTH,
    clog2,
    concat_ab,
    is_power_of_two,
    mask_for,
    masked_equal,
    pack_words,
    popcount,
    split_ab,
    truncate,
    unpack_words,
)

__all__ = [
    "ALL_ONES",
    "A_WIDTH",
    "AluMode",
    "B_WIDTH",
    "CAM_ALUMODE",
    "CAM_OPMODE",
    "DSP48E2",
    "DSP_WIDTH",
    "Dsp48Attributes",
    "MULT_A_WIDTH",
    "WMux",
    "XMux",
    "YMux",
    "ZMux",
    "cam_cell_attributes",
    "clog2",
    "concat_ab",
    "is_power_of_two",
    "mask_for",
    "masked_equal",
    "pack_opmode",
    "pack_words",
    "popcount",
    "split_ab",
    "truncate",
    "unpack_opmode",
    "unpack_words",
]
