"""Wide-word CAM: entries wider than one DSP slice (extension).

A DSP48E2 stores at most 48 bits, which caps the paper's entry width.
Real workloads want more -- IPv6 five-tuples, 128-bit hashes -- and the
architecture composes naturally: a W-bit entry is split into
``k = ceil(W / 48)`` fragments held at the *same address* in ``k``
parallel lanes (each lane a full CAM unit); a search broadcasts each
key fragment to its lane and a W-bit match is the AND of the per-lane
match vectors. Latency is unchanged (lanes run in lockstep), resource
cost is ``k`` times one lane, and every lane reuses the verified
cell/block/unit machinery.

This module is an extension beyond the paper (DESIGN.md section 5);
its lanes are real cycle-accurate :class:`repro.core.CamSession`
instances, so wide searches still cost genuine simulated cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.batch import open_session
from repro.core.config import unit_for_entries
from repro.core.mask import CamEntry
from repro.core.session import CamSession
from repro.core.types import CamType, Encoding, SearchResult
from repro.dsp.primitives import DSP_WIDTH, check_fits, mask_for
from repro.errors import ConfigError
from repro.fabric.resources import ResourceVector, total

#: Fragment width: one DSP slice's storage.
LANE_WIDTH = DSP_WIDTH


@dataclass(frozen=True)
class WideEntry:
    """One wide stored word: value plus ignore-mask, both ``width`` bits."""

    value: int
    mask: int
    width: int

    def matches(self, key: int) -> bool:
        full = mask_for(self.width)
        return ((self.value ^ key) & ~self.mask & full) == 0


def wide_binary(value: int, width: int) -> WideEntry:
    """Exact-match wide entry."""
    check_fits(value, width, "wide value")
    return WideEntry(value=value, mask=0, width=width)


def wide_ternary(value: int, dont_care: int, width: int) -> WideEntry:
    """Wide entry with don't-care bits."""
    check_fits(value, width, "wide value")
    check_fits(dont_care, width, "wide don't-care mask")
    return WideEntry(value=value, mask=dont_care, width=width)


class WideCamSession:
    """A CAM for keys wider than 48 bits, built from parallel lanes."""

    def __init__(
        self,
        capacity: int,
        key_width: int,
        *,
        block_size: int = 64,
        bus_width: int = 512,
        default_groups: int = 1,
        engine: str = "cycle",
        **session_kwargs,
    ) -> None:
        if key_width <= LANE_WIDTH:
            raise ConfigError(
                f"key width {key_width} fits one DSP slice; use CamSession"
            )
        self.key_width = key_width
        self.num_lanes = -(-key_width // LANE_WIDTH)
        self._lane_widths = self._fragment_widths(key_width)
        self.lanes: List[CamSession] = [
            open_session(
                unit_for_entries(
                    capacity,
                    block_size=block_size,
                    data_width=lane_width,
                    bus_width=bus_width,
                    cam_type=CamType.TERNARY,
                    default_groups=default_groups,
                ),
                name=f"lane{index}",
                engine=engine,
                **session_kwargs,
            )
            for index, lane_width in enumerate(self._lane_widths)
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def _fragment_widths(key_width: int) -> List[int]:
        widths = []
        remaining = key_width
        while remaining > 0:
            widths.append(min(LANE_WIDTH, remaining))
            remaining -= LANE_WIDTH
        return widths

    def _fragments(self, value: int) -> List[int]:
        out = []
        for width in self._lane_widths:
            out.append(value & mask_for(width))
            value >>= width
        return out

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.lanes[0].capacity

    @property
    def occupancy(self) -> int:
        return self.lanes[0].occupancy

    @property
    def search_latency(self) -> int:
        return max(lane.search_latency for lane in self.lanes)

    @property
    def cycle(self) -> int:
        """Lockstep cycle counter (all lanes tick together)."""
        return self.lanes[0].cycle

    def resources(self) -> ResourceVector:
        """Cost of all lanes together (k x one unit)."""
        return total(lane.resources() for lane in self.lanes)

    # ------------------------------------------------------------------
    def _coerce(self, word: Union[int, WideEntry]) -> WideEntry:
        if isinstance(word, WideEntry):
            if word.width != self.key_width:
                raise ConfigError(
                    f"entry width {word.width} != CAM key width "
                    f"{self.key_width}"
                )
            return word
        return wide_binary(int(word), self.key_width)

    def update(self, words: Sequence[Union[int, WideEntry]]) -> None:
        """Store wide words (same address in every lane)."""
        entries = [self._coerce(word) for word in words]
        for lane_index, lane in enumerate(self.lanes):
            lane_width = self._lane_widths[lane_index]
            lane_entries = []
            for entry in entries:
                value_fragment = self._fragments(entry.value)[lane_index]
                mask_fragment = self._fragments(entry.mask)[lane_index]
                lane_entries.append(CamEntry(
                    value=value_fragment,
                    mask=mask_fragment | (mask_for(DSP_WIDTH)
                                          ^ mask_for(lane_width)),
                    width=lane_width,
                ))
            lane.update(lane_entries)

    def search(self, keys: Sequence[int]) -> List[SearchResult]:
        """Search wide keys; a hit requires every lane to agree."""
        keys = [int(key) for key in keys]
        for key in keys:
            check_fits(key, self.key_width, "wide key")
        per_lane: List[List[SearchResult]] = []
        for lane_index, lane in enumerate(self.lanes):
            lane_keys = [self._fragments(key)[lane_index] for key in keys]
            per_lane.append(lane.search(lane_keys))
        merged = []
        for key_index, key in enumerate(keys):
            vector = None
            for lane_results in per_lane:
                lane_vector = lane_results[key_index].match_vector
                vector = lane_vector if vector is None else vector & lane_vector
            merged.append(SearchResult.from_vector(
                key, vector or 0, Encoding.PRIORITY
            ))
        return merged

    def search_one(self, key: int) -> SearchResult:
        return self.search([key])[0]

    def contains(self, key: int) -> bool:
        return self.search_one(key).hit

    def reset(self) -> None:
        for lane in self.lanes:
            lane.reset()

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self):
        """Capture all lanes as one ``wide`` snapshot (children are the
        per-lane unit snapshots, in lane order)."""
        from repro.service.snapshot import CamSnapshot

        return CamSnapshot(
            kind="wide",
            meta={
                "key_width": self.key_width,
                "capacity": self.capacity,
                "lane_widths": list(self._lane_widths),
            },
            children=[lane.snapshot() for lane in self.lanes],
        )

    def restore(self, snapshot) -> None:
        """Restore every lane from a compatible ``wide`` snapshot."""
        from repro.errors import SnapshotError

        if snapshot.kind != "wide":
            raise SnapshotError(
                f"cannot restore a {snapshot.kind!r} snapshot into a "
                "wide CAM"
            )
        if snapshot.meta.get("key_width") != self.key_width:
            raise SnapshotError(
                f"snapshot key width {snapshot.meta.get('key_width')} != "
                f"CAM key width {self.key_width}"
            )
        if len(snapshot.children) != self.num_lanes:
            raise SnapshotError(
                f"snapshot carries {len(snapshot.children)} lanes, "
                f"this CAM has {self.num_lanes}"
            )
        for lane, child in zip(self.lanes, snapshot.children):
            lane.restore(child)
