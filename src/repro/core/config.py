"""Parameterisation of the CAM architecture (paper Table III).

Three nested configuration levels mirror the hardware hierarchy:

- :class:`CellConfig` -- CAM type and storage data width (cell level),
- :class:`BlockConfig` -- block size, block bus width, result encoding
  and the optional encoder output buffer (block level),
- :class:`UnitConfig` -- number of blocks, unit bus width, update
  replication mode and the default group count (unit level).

All parameters are validated eagerly so an impossible configuration
fails at construction, not mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.dsp.primitives import DSP_WIDTH, is_power_of_two
from repro.errors import ConfigError
from repro.core.types import CamType, Encoding

#: Block size at or above which the encoder output buffer is inserted
#: for timing (paper: "when the size of the block reaches 256, we added
#: an additional buffer at the Encoder output").
BUFFER_BLOCK_THRESHOLD = 256
#: Unit size at or above which the buffer is inserted even for smaller
#: blocks (Table VIII: search latency steps from 7 to 8 at 2K entries).
BUFFER_UNIT_THRESHOLD = 2048


@dataclass(frozen=True)
class CellConfig:
    """Cell-level parameters: CAM type and storage data width."""

    cam_type: CamType = CamType.BINARY
    data_width: int = 32

    def __post_init__(self) -> None:
        if not isinstance(self.cam_type, CamType):
            raise ConfigError(f"cam_type must be a CamType, got {self.cam_type!r}")
        if not 1 <= self.data_width <= DSP_WIDTH:
            raise ConfigError(
                f"storage data width must be in 1..{DSP_WIDTH} bits "
                f"(one DSP48E2 A:B register pair), got {self.data_width}"
            )


@dataclass(frozen=True)
class BlockConfig:
    """Block-level parameters: size, bus width, encoding, buffering."""

    cell: CellConfig = field(default_factory=CellConfig)
    block_size: int = 128
    bus_width: int = 512
    encoding: Encoding = Encoding.PRIORITY
    #: None selects the automatic policy (see :meth:`buffered_in_unit`).
    output_buffer: Optional[bool] = None

    def __post_init__(self) -> None:
        if not is_power_of_two(self.block_size):
            raise ConfigError(
                f"block size must be a power of two, got {self.block_size}"
            )
        if self.block_size < 2:
            raise ConfigError(f"block size must be >= 2, got {self.block_size}")
        if self.bus_width < self.cell.data_width:
            raise ConfigError(
                f"block bus width ({self.bus_width}) must be at least the "
                f"data width ({self.cell.data_width})"
            )
        if not isinstance(self.encoding, Encoding):
            raise ConfigError(f"encoding must be an Encoding, got {self.encoding!r}")

    # ------------------------------------------------------------------
    @property
    def data_width(self) -> int:
        return self.cell.data_width

    @property
    def words_per_beat(self) -> int:
        """Stored words carried by one input-bus beat during updates."""
        return max(1, self.bus_width // self.cell.data_width)

    @property
    def buffered(self) -> bool:
        """Whether the encoder output buffer is present (standalone)."""
        if self.output_buffer is not None:
            return self.output_buffer
        return self.block_size >= BUFFER_BLOCK_THRESHOLD

    def buffered_in_unit(self, total_entries: int) -> bool:
        """Buffer policy when instantiated inside a unit of given size."""
        if self.output_buffer is not None:
            return self.output_buffer
        return (
            self.block_size >= BUFFER_BLOCK_THRESHOLD
            or total_entries >= BUFFER_UNIT_THRESHOLD
        )

    @property
    def update_latency(self) -> int:
        """Cycles for a standalone block update (always 1, Table VI)."""
        return 1

    @property
    def search_latency(self) -> int:
        """Cycles for a standalone block search (3, or 4 buffered)."""
        return 3 + (1 if self.buffered else 0)

    def with_buffer(self, buffered: bool) -> "BlockConfig":
        return replace(self, output_buffer=buffered)


#: Pipeline stages ahead of the blocks on the unit's search path:
#: input interface, routing compute, key replication, post-router.
UNIT_SEARCH_OVERHEAD = 4
#: Pipeline stages ahead of the blocks on the unit's update path: the
#: search-path stages plus the per-group block address controller.
UNIT_UPDATE_OVERHEAD = 5


@dataclass(frozen=True)
class UnitConfig:
    """Unit-level parameters: block count, bus width, grouping policy."""

    block: BlockConfig = field(default_factory=BlockConfig)
    num_blocks: int = 16
    bus_width: Optional[int] = None
    #: Initial number of CAM groups (runtime reconfigurable).
    default_groups: int = 1
    #: True (paper default): updates replicate into every group so each
    #: group holds the full content and serves an independent query.
    #: False: groups are independent CAMs addressed by group id.
    replicate_updates: bool = True

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ConfigError(f"num_blocks must be >= 1, got {self.num_blocks}")
        if self.default_groups < 1:
            raise ConfigError(
                f"default_groups must be >= 1, got {self.default_groups}"
            )
        if self.num_blocks % self.default_groups:
            raise ConfigError(
                f"group count ({self.default_groups}) must divide the number "
                f"of blocks ({self.num_blocks})"
            )
        if self.unit_bus_width < self.block.bus_width:
            raise ConfigError(
                f"unit bus width ({self.unit_bus_width}) must be at least "
                f"the block bus width ({self.block.bus_width})"
            )

    # ------------------------------------------------------------------
    @property
    def unit_bus_width(self) -> int:
        return self.bus_width if self.bus_width is not None else self.block.bus_width

    @property
    def total_entries(self) -> int:
        """Total CAM capacity in stored words (also the DSP count)."""
        return self.num_blocks * self.block.block_size

    @property
    def data_width(self) -> int:
        return self.block.cell.data_width

    @property
    def words_per_beat(self) -> int:
        """Stored words per update beat on the unit bus."""
        return max(1, self.unit_bus_width // self.data_width)

    @property
    def block_buffered(self) -> bool:
        """Resolved encoder-buffer policy for blocks inside this unit."""
        return self.block.buffered_in_unit(self.total_entries)

    @property
    def block_search_latency(self) -> int:
        return 3 + (1 if self.block_buffered else 0)

    @property
    def search_latency(self) -> int:
        """End-to-end unit search latency in cycles (Table VIII: 7-8)."""
        return UNIT_SEARCH_OVERHEAD + self.block_search_latency

    @property
    def update_latency(self) -> int:
        """End-to-end unit update latency in cycles (Table VIII: 6)."""
        return UNIT_UPDATE_OVERHEAD + self.block.update_latency

    def group_sizes(self, num_groups: int) -> int:
        """Blocks per group for a runtime group count; validates it."""
        if num_groups < 1 or self.num_blocks % num_groups:
            raise ConfigError(
                f"group count {num_groups} must be a positive divisor of "
                f"{self.num_blocks} blocks"
            )
        return self.num_blocks // num_groups

    def group_capacity(self, num_groups: int) -> int:
        """Entries available to each logical CAM group."""
        return self.group_sizes(num_groups) * self.block.block_size

    def with_groups(self, num_groups: int) -> "UnitConfig":
        self.group_sizes(num_groups)
        return replace(self, default_groups=num_groups)


def unit_for_entries(
    total_entries: int,
    block_size: int = 256,
    data_width: int = 48,
    bus_width: int = 512,
    cam_type: CamType = CamType.BINARY,
    encoding: Encoding = Encoding.PRIORITY,
    default_groups: int = 1,
) -> UnitConfig:
    """Convenience constructor used by the benches and examples.

    Builds a unit with ``total_entries`` capacity out of ``block_size``
    blocks (``total_entries`` must divide evenly).
    """
    if total_entries % block_size:
        raise ConfigError(
            f"total entries ({total_entries}) must be a multiple of the "
            f"block size ({block_size})"
        )
    cell = CellConfig(cam_type=cam_type, data_width=data_width)
    block = BlockConfig(
        cell=cell, block_size=block_size, bus_width=bus_width, encoding=encoding
    )
    return UnitConfig(
        block=block,
        num_blocks=total_entries // block_size,
        bus_width=bus_width,
        default_groups=default_groups,
    )
