"""The CAM unit (paper section III-C, figure 4).

A unit composes ``num_blocks`` CAM blocks with a Routing Compute stage
(owning the runtime Routing Table), a Post-Router crossbar, and
input/output interfaces. Blocks are partitioned into ``M`` logical
groups, reconfigurable at runtime:

- **Update** (replicated mode, the paper's default): every beat is
  replicated into all ``M`` groups and written round-robin within each
  group, so each group holds the full content.
- **Search**: up to ``M`` keys per cycle, one per group; each key is
  broadcast to every block of its group and the per-block results are
  merged combinationally at the output interface.
- **Independent mode**: groups act as separate CAMs; updates and
  searches carry explicit group IDs.

Measured end-to-end latency (Table VIII): update 6 cycles, search
7 cycles (8 once the encoder output buffer engages at >= 2K entries).
Both paths sustain one beat per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.block import CamBlock
from repro.core.config import UnitConfig
from repro.core.group import BlockAddressController
from repro.core.mask import CamEntry
from repro.core.routing import PostRouter, RoutingCompute, RoutingTable
from repro.core.types import SearchResult
from repro.errors import CapacityError, ConfigError, RoutingError
from repro.fabric.area import unit_resources
from repro.fabric.resources import ResourceVector
from repro.sim.component import Component
from repro.sim.pipeline import ValidPipe


@dataclass(frozen=True)
class _UpdateBeat:
    words: Tuple[CamEntry, ...]
    group: Optional[int]  # None = replicate to every group


@dataclass(frozen=True)
class _SearchBeat:
    #: (query_index, group_id, key) triples.
    queries: Tuple[Tuple[int, int, int], ...]


@dataclass(frozen=True)
class _DeleteBeat:
    """Delete-by-content: one key, applied to every replica group."""

    key: int


@dataclass(frozen=True)
class _ResetBeat:
    pass


@dataclass(frozen=True)
class _RemapBeat:
    num_groups: int
    mapping: Optional[Tuple[int, ...]]


class CamUnit(Component):
    """The top-level configurable multi-query CAM.

    Drive with :meth:`issue_update`, :meth:`issue_search`,
    :meth:`issue_reset` or :meth:`issue_regroup` (one beat per cycle),
    step the simulator, and read :attr:`search_output` /
    :attr:`update_done`. For a transaction-level API that hides the
    cycle driving, use :class:`repro.core.session.CamSession`.
    """

    def __init__(self, config: UnitConfig, name: Optional[str] = None) -> None:
        super().__init__(name or "cam_unit")
        self.config = config
        self.table = RoutingTable(config.num_blocks, config.default_groups)
        self.routing = self.add_child(RoutingCompute(self.table))
        self.post_router = self.add_child(PostRouter())
        buffered = config.block_buffered
        self.blocks: List[CamBlock] = [
            self.add_child(
                CamBlock(
                    config.block,
                    block_id=i,
                    buffered=buffered,
                    name=f"{self.name}.block{i}",
                )
            )
            for i in range(config.num_blocks)
        ]
        self._result_pipe = self.add_child(
            ValidPipe(self.block_search_latency, name=f"{self.name}.results")
        )
        self._init_control_state()
        self.reset_state()

    # ------------------------------------------------------------------
    # static properties
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return self.config.num_blocks

    @property
    def block_size(self) -> int:
        return self.config.block.block_size

    @property
    def total_entries(self) -> int:
        return self.config.total_entries

    @property
    def block_search_latency(self) -> int:
        return self.config.block_search_latency

    @property
    def search_latency(self) -> int:
        return self.config.search_latency

    @property
    def update_latency(self) -> int:
        return self.config.update_latency

    @property
    def words_per_beat(self) -> int:
        return self.config.words_per_beat

    # ------------------------------------------------------------------
    # runtime-configurable grouping
    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return self.table.num_groups

    @property
    def blocks_per_group(self) -> int:
        return self.table.blocks_per_group

    @property
    def group_capacity(self) -> int:
        """Entries each logical CAM group can hold."""
        return self.blocks_per_group * self.block_size

    def _init_control_state(self) -> None:
        self._controllers: Dict[int, BlockAddressController] = {
            g: BlockAddressController(self.blocks_per_group, self.block_size)
            for g in range(self.num_groups)
        }
        self._stored: Dict[int, int] = {g: 0 for g in range(self.num_groups)}

    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        self.in_beat: Optional[object] = None
        self.update_done = False
        self._init_control_state()

    # ------------------------------------------------------------------
    # issue interface (one beat per cycle)
    # ------------------------------------------------------------------
    def _stage_beat(self, beat: object) -> None:
        if self.in_beat is not None:
            raise ConfigError(
                f"{self.name}: one operation beat per cycle; a "
                f"{type(self.in_beat).__name__} is already staged"
            )
        self.in_beat = beat

    def issue_update(
        self, words: Sequence[CamEntry], group: Optional[int] = None
    ) -> None:
        """Stage an update beat of up to ``words_per_beat`` stored words.

        In replicated mode (``group=None``) the beat is written into
        every group; in independent mode ``group`` selects the target.
        Raises :class:`CapacityError` immediately when the content no
        longer fits (issue order equals apply order, so issue-time
        accounting is exact).
        """
        words = tuple(words)
        if not words:
            raise ConfigError(f"{self.name}: empty update beat")
        if len(words) > self.words_per_beat:
            raise CapacityError(
                f"{self.name}: beat carries {len(words)} words, bus fits "
                f"{self.words_per_beat}"
            )
        for word in words:
            if not isinstance(word, CamEntry):
                raise ConfigError(
                    f"{self.name}: update words must be CamEntry, got "
                    f"{type(word).__name__}"
                )
        targets = self._update_targets(group)
        for g in targets:
            if self._stored[g] + len(words) > self.group_capacity:
                raise CapacityError(
                    f"{self.name}: group {g} cannot take {len(words)} more "
                    f"words ({self._stored[g]}/{self.group_capacity} used)"
                )
        for g in targets:
            self._stored[g] += len(words)
        self._stage_beat(_UpdateBeat(words=words, group=group))
        obs.inc("cam_unit_update_beats_total",
                help="update beats issued to the unit pipeline")

    def _update_targets(self, group: Optional[int]) -> List[int]:
        if self.config.replicate_updates:
            if group is not None:
                raise RoutingError(
                    f"{self.name}: replicated mode updates every group; "
                    "do not pass a group id"
                )
            return list(range(self.num_groups))
        if group is None:
            raise RoutingError(
                f"{self.name}: independent mode requires a target group"
            )
        if not 0 <= group < self.num_groups:
            raise RoutingError(
                f"{self.name}: group {group} out of range "
                f"(0..{self.num_groups - 1})"
            )
        return [group]

    def issue_search(
        self,
        keys: Sequence[int],
        groups: Optional[Sequence[int]] = None,
    ) -> None:
        """Stage up to ``num_groups`` concurrent search keys.

        In replicated mode key *i* is routed to group *i* (any group
        holds the full content, so the assignment is free); explicit
        ``groups`` may be given in independent mode and must be
        distinct.
        """
        keys = tuple(int(k) for k in keys)
        if not keys:
            raise ConfigError(f"{self.name}: empty search beat")
        if len(keys) > self.num_groups:
            raise RoutingError(
                f"{self.name}: {len(keys)} concurrent queries exceed the "
                f"current group count M={self.num_groups}"
            )
        if groups is None:
            group_ids = list(range(len(keys)))
        else:
            group_ids = [int(g) for g in groups]
            if len(group_ids) != len(keys):
                raise RoutingError(
                    f"{self.name}: {len(keys)} keys but {len(group_ids)} "
                    "group ids"
                )
            if len(set(group_ids)) != len(group_ids):
                raise RoutingError(
                    f"{self.name}: each query needs a distinct group"
                )
            for g in group_ids:
                if not 0 <= g < self.num_groups:
                    raise RoutingError(
                        f"{self.name}: group {g} out of range "
                        f"(0..{self.num_groups - 1})"
                    )
        queries = tuple(
            (index, group_ids[index], key) for index, key in enumerate(keys)
        )
        self._stage_beat(_SearchBeat(queries=queries))
        obs.inc("cam_unit_search_beats_total",
                help="multi-query search beats issued to the unit pipeline")

    def issue_delete(self, key: int) -> None:
        """Stage a delete-by-content beat (extension beyond the paper).

        The key is broadcast to every block of every group, so all
        replicas invalidate the same entries. Freed cells are reclaimed
        only by reset; ``stored_words`` keeps counting consumed cells.
        """
        self._stage_beat(_DeleteBeat(key=int(key)))
        obs.inc("cam_unit_delete_beats_total",
                help="delete-by-content beats issued to the unit pipeline")

    def issue_reset(self) -> None:
        """Stage a full-content reset."""
        self._stage_beat(_ResetBeat())
        self._stored = {g: 0 for g in range(self.num_groups)}

    def issue_regroup(
        self, num_groups: int, mapping: Optional[Sequence[int]] = None
    ) -> None:
        """Stage a runtime group-count reconfiguration.

        Regrouping changes the replication layout, so the content is
        flushed as part of the beat (the paper's user kernel reloads
        data after regrouping).
        """
        if num_groups < 1 or self.num_blocks % num_groups:
            raise RoutingError(
                f"{self.name}: group count {num_groups} must divide "
                f"{self.num_blocks} blocks"
            )
        beat = _RemapBeat(
            num_groups=num_groups,
            mapping=None if mapping is None else tuple(mapping),
        )
        self._stage_beat(beat)

    # ------------------------------------------------------------------
    # pipeline
    # ------------------------------------------------------------------
    def compute(self) -> None:
        # Stage 0: accept the staged beat into the routing pipeline.
        beat = self.in_beat
        self.in_beat = None
        if beat is not None:
            self.routing.send(beat)

        # Stage 2 (after RoutingCompute): dispatch to the post-router.
        valid, routed = self.routing.tail()
        if valid:
            if isinstance(routed, (_SearchBeat, _DeleteBeat)):
                self.post_router.send_search(routed)
            else:
                self.post_router.send_update(routed)

        # Stage 4: apply searches / deletes to the blocks.
        valid, search_beat = self.post_router.search_tail()
        if valid:
            if isinstance(search_beat, _DeleteBeat):
                for block in self.blocks:
                    block.issue_delete(search_beat.key)
            else:
                self._apply_search(search_beat)
            self._result_pipe.send(search_beat)

        # Stage 5: apply updates / resets / regroups to the blocks.
        update_applied = False
        valid, update_beat = self.post_router.update_tail()
        if valid:
            if isinstance(update_beat, _UpdateBeat):
                self._apply_update(update_beat)
                update_applied = True
            elif isinstance(update_beat, _ResetBeat):
                self._apply_reset()
            elif isinstance(update_beat, _RemapBeat):
                self._apply_remap(update_beat)
            else:  # pragma: no cover - defensive
                raise ConfigError(f"unknown beat {update_beat!r}")
        self.schedule(update_done=update_applied)

    # ------------------------------------------------------------------
    def _apply_search(self, beat: _SearchBeat) -> None:
        for _index, group, key in beat.queries:
            for block_id in self.table.blocks_in_group(group):
                self.blocks[block_id].issue_search(key)

    def _apply_update(self, beat: _UpdateBeat) -> None:
        targets = self._update_targets(beat.group)
        shared_plan = None
        for g in targets:
            controller = self._controllers[g]
            block_ids = self.table.blocks_in_group(g)
            free = [self.blocks[b].free_cells for b in block_ids]
            plan = controller.plan(len(beat.words), free)
            if shared_plan is None:
                shared_plan = plan
            offset = 0
            for slot, count in plan.segments:
                block = self.blocks[block_ids[slot]]
                block.issue_update(beat.words[offset:offset + count])
                offset += count
            controller.commit(plan)

    def _apply_reset(self) -> None:
        for block in self.blocks:
            block.issue_reset()
        for controller in self._controllers.values():
            controller.reset()

    def _apply_remap(self, beat: _RemapBeat) -> None:
        if beat.mapping is not None:
            self.table.remap(list(beat.mapping))
            if self.table.num_groups != beat.num_groups:
                raise RoutingError(
                    f"{self.name}: mapping implies {self.table.num_groups} "
                    f"groups, requested {beat.num_groups}"
                )
        else:
            self.table.remap_contiguous(beat.num_groups)
        self._init_control_state()
        for block in self.blocks:
            block.issue_reset()

    # ------------------------------------------------------------------
    # output interface (combinational merge over block result registers)
    # ------------------------------------------------------------------
    @property
    def search_output(self) -> Optional[List[SearchResult]]:
        """Completed query results, or ``None`` when nothing finished.

        Valid for exactly one post-step window per search beat, ordered
        by query index. Addresses are group-content addresses
        (``block_slot * block_size + cell``), identical across groups
        in replicated mode.
        """
        valid, beat = self._result_pipe.tail()
        if not valid:
            return None
        if isinstance(beat, _DeleteBeat):
            # Every replica deleted the same entries; report group 0's
            # view (hit/vector describe what was invalidated).
            return [self._merge_group_results(0, beat.key)]
        results: List[SearchResult] = []
        for _index, group, key in beat.queries:
            results.append(self._merge_group_results(group, key))
        return results

    def _merge_group_results(self, group: int, key: int) -> SearchResult:
        merged: Optional[SearchResult] = None
        for slot, block_id in enumerate(self.table.blocks_in_group(group)):
            block = self.blocks[block_id]
            if not block.result_valid or block.result is None:
                raise ConfigError(
                    f"{self.name}: block {block_id} produced no result for "
                    f"an expected search (pipeline desync)"
                )
            local = block.result
            if local.key != key:  # pragma: no cover - defensive
                raise ConfigError(
                    f"{self.name}: block {block_id} answered key "
                    f"{local.key}, expected {key}"
                )
            rebased = local.offset(slot * self.block_size)
            if merged is None:
                merged = rebased
            else:
                merged = self._combine(merged, rebased)
        assert merged is not None
        return merged

    @staticmethod
    def _combine(first: SearchResult, second: SearchResult) -> SearchResult:
        vector = first.match_vector | second.match_vector
        return SearchResult.from_vector(first.key, vector, first.encoding)

    # ------------------------------------------------------------------
    # golden-model views
    # ------------------------------------------------------------------
    def stored_words(self, group: int = 0) -> int:
        """Words currently stored in ``group`` (issue-time accounting)."""
        return self._stored[group]

    def stored_entries(self, group: int = 0) -> List[CamEntry]:
        """Contents of one group in write order (golden view)."""
        entries: List[CamEntry] = []
        for block_id in self.table.blocks_in_group(group):
            entries.extend(self.blocks[block_id].stored_entries())
        return entries

    def resources(self) -> ResourceVector:
        """Estimated full-unit resource vector (calibrated model)."""
        return unit_resources(
            self.total_entries,
            block_size=self.block_size,
            bus_width=self.config.unit_bus_width,
        )
