"""The CAM block (paper section III-B, figure 3).

A block groups a configurable number of DSP-based cells with the
control logic that makes them an operational CAM:

- a **DeMUX** steering the input bus to the update or search logic,
- **update logic** with a cell-address controller that writes up to
  ``bus_width / data_width`` words into consecutive cells in a single
  cycle,
- **search logic** broadcasting one masked key to every cell,
- an **encoder** condensing the per-cell match bits into the configured
  output scheme, with an optional extra output buffer register that the
  paper inserts for timing on large blocks/units,
- a **reset** path clearing every cell.

Measured timing (Table VI): update latency 1 cycle for any beat;
search latency 3 cycles (cells 2 + encoder register 1) or 4 with the
output buffer. Both paths are fully pipelined (initiation interval 1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.config import BlockConfig
from repro.core.cell import CamCell
from repro.core.encoder import ResultEncoder
from repro.core.mask import CamEntry
from repro.core.types import SearchResult
from repro.errors import CapacityError, ConfigError
from repro.fabric.area import block_resources
from repro.fabric.resources import ResourceVector
from repro.sim.component import Component

#: Depth of the cell search path: C register + P register.
_CELL_PIPE_DEPTH = 2


class CamBlock(Component):
    """One CAM block: cells plus DeMUX, update/search logic, encoder.

    Input ports (drive during a compute phase, or before a testbench
    step; consumed and self-cleared each cycle). Updates and searches
    use *separate* paths into the cells (figure 3: the DeMUX feeds an
    update logic and a search logic) -- a write lands on the cells' A/B
    ports while a compare uses the C port -- so one block accepts an
    update beat and a search beat in the same cycle:

    - :attr:`in_update_valid` / :attr:`in_update` -- sequence of
      :class:`CamEntry` words (at most :attr:`words_per_beat`).
    - :attr:`in_search_valid` / :attr:`in_key` -- search key.
    - :attr:`in_delete` -- when asserted with a search, matching cells
      are invalidated when the comparison completes (delete-by-content;
      an extension beyond the paper, see DESIGN.md section 5).
    - :attr:`in_reset` -- clear all stored content.

    Registered outputs:

    - :attr:`result_valid` / :attr:`result` -- one
      :class:`SearchResult` per completed search.
    - :attr:`update_done` -- pulses the cycle after an update lands.
    """

    def __init__(
        self,
        config: BlockConfig,
        block_id: int = 0,
        buffered: Optional[bool] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"block{block_id}")
        self.config = config
        self.block_id = block_id
        self.buffered = config.buffered if buffered is None else buffered
        self.encoder = ResultEncoder(config.encoding, config.block_size)
        self.cells: List[CamCell] = [
            self.add_child(
                CamCell(
                    cam_type=config.cell.cam_type,
                    data_width=config.cell.data_width,
                    name=f"{self.name}.cell{i}",
                )
            )
            for i in range(config.block_size)
        ]
        self.reset_state()

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.config.block_size

    @property
    def words_per_beat(self) -> int:
        return self.config.words_per_beat

    @property
    def occupancy(self) -> int:
        """Number of cells consumed (the fill pointer; holes included)."""
        return self._fill

    @property
    def live_entries(self) -> int:
        """Stored words minus delete-by-content invalidations."""
        return self._fill - self._deleted

    @property
    def free_cells(self) -> int:
        return self.size - self._fill

    @property
    def full(self) -> bool:
        return self._fill >= self.size

    @property
    def search_latency(self) -> int:
        """Cycles from key-in to result-out for this instance."""
        return _CELL_PIPE_DEPTH + 1 + (1 if self.buffered else 0)

    @property
    def update_latency(self) -> int:
        return 1

    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        self.in_update_valid = False
        self.in_update: Sequence[CamEntry] = ()
        self.in_search_valid = False
        self.in_key = 0
        self.in_delete = False
        self.in_reset = False
        self.result_valid = False
        self.result: Optional[SearchResult] = None
        self.update_done = False
        self._fill = 0
        self._deleted = 0
        self._search_pipe: List[Optional[Tuple[int, bool]]] = (
            [None] * _CELL_PIPE_DEPTH
        )
        self._buffer: Tuple[bool, Optional[SearchResult]] = (False, None)

    # ------------------------------------------------------------------
    def compute(self) -> None:
        updates = {
            "in_update_valid": False,
            "in_search_valid": False,
            "in_delete": False,
            "in_reset": False,
            "update_done": False,
        }
        search_token: Optional[Tuple[int, bool]] = None

        if self.in_reset:
            if self.in_update_valid:
                raise ConfigError(
                    f"{self.name}: reset and update collide in one cycle"
                )
            for cell in self.cells:
                cell.clear = True
            updates["_fill"] = 0
            updates["_deleted"] = 0
        elif self.in_update_valid:
            updates["_fill"] = self._apply_update(self.in_update)
            updates["update_done"] = True

        if self.in_search_valid:
            search_token = (self.in_key, self.in_delete)
            self._broadcast(self.in_key)

        # Search pipeline: tokens track keys through the 2-cycle cell path.
        token_out = self._search_pipe[-1]
        updates["_search_pipe"] = [search_token] + self._search_pipe[:-1]

        if token_out is not None:
            key, delete = token_out
            match_bits = [cell.match_now() for cell in self.cells]
            encoded = self.encoder.encode(key, match_bits)
            if delete and encoded.hit:
                # Delete-by-content: invalidate every matching cell as
                # the comparison completes. Freed cells are reclaimed at
                # reset, not reused (the fill pointer stays monotone).
                for index, matched in enumerate(match_bits):
                    if matched:
                        self.cells[index].clear = True
                if "_deleted" not in updates:
                    updates["_deleted"] = self._deleted + encoded.match_count
        else:
            encoded = None

        if self.buffered:
            buffered_valid, buffered_result = self._buffer
            updates["_buffer"] = (encoded is not None, encoded)
            updates["result_valid"] = buffered_valid
            updates["result"] = buffered_result
        else:
            updates["result_valid"] = encoded is not None
            updates["result"] = encoded

        self.schedule(**updates)
        if encoded is not None:
            self.emit(match=encoded.hit, key=token_out)

    # ------------------------------------------------------------------
    def _apply_update(self, entries: Sequence[CamEntry]) -> int:
        """Demux an update beat onto consecutive cells; return new fill."""
        entries = tuple(entries)
        if not entries:
            raise ConfigError(f"{self.name}: empty update beat")
        if len(entries) > self.words_per_beat:
            raise CapacityError(
                f"{self.name}: beat carries {len(entries)} words but the "
                f"bus fits {self.words_per_beat}"
            )
        if self._fill + len(entries) > self.size:
            raise CapacityError(
                f"{self.name}: update of {len(entries)} words overflows "
                f"({self._fill}/{self.size} occupied)"
            )
        for offset, entry in enumerate(entries):
            if not isinstance(entry, CamEntry):
                raise ConfigError(
                    f"{self.name}: update words must be CamEntry, got "
                    f"{type(entry).__name__}"
                )
            cell = self.cells[self._fill + offset]
            cell.write_enable = True
            cell.write_entry = entry
        return self._fill + len(entries)

    def _broadcast(self, key: int) -> None:
        """Search logic: broadcast one key to every cell."""
        for cell in self.cells:
            cell.search_key = key

    # ------------------------------------------------------------------
    # testbench conveniences (drive ports, not state)
    # ------------------------------------------------------------------
    def issue_update(self, entries: Sequence[CamEntry]) -> None:
        """Present an update beat for the next cycle."""
        self.in_update_valid = True
        self.in_update = tuple(entries)

    def issue_search(self, key: int) -> None:
        """Present a search key for the next cycle."""
        self.in_search_valid = True
        self.in_key = key

    def issue_delete(self, key: int) -> None:
        """Present a delete-by-content key for the next cycle."""
        self.in_search_valid = True
        self.in_delete = True
        self.in_key = key

    def issue_reset(self) -> None:
        """Present a reset for the next cycle."""
        self.in_reset = True

    # ------------------------------------------------------------------
    def stored_entries(self) -> List[CamEntry]:
        """Golden-model view of the block contents, in fill order."""
        entries = []
        for cell in self.cells[: self._fill]:
            entry = cell.stored_entry
            if entry is not None:
                entries.append(entry)
        return entries

    def resources(self) -> ResourceVector:
        """Estimated resource cost (cells + calibrated control logic)."""
        return block_resources(
            self.size, self.config.bus_width, buffered=self.buffered
        )
