"""Transaction-level driver for a CAM unit.

:class:`CamSession` owns a :class:`repro.sim.Simulator` and a
:class:`repro.core.CamUnit` and exposes blocking update/search calls
that hide the cycle-level port driving. It is the integration surface
an accelerator kernel would use (the paper's "easy integration"
argument) and what the examples and most tests drive.

The session keeps issuing one beat per cycle, so a batch of keys is
searched at the full pipelined rate; the cycle counter is exposed so
callers can derive latency and throughput from real simulated cycles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro import obs
from repro.core.config import UnitConfig
from repro.core.mask import CamEntry, binary_entry
from repro.core.types import CamType, SearchResult
from repro.core.unit import CamUnit
from repro.errors import ConfigError, RoutingError, SimulationError
from repro.sim import Simulator, Trace

RawWord = Union[int, CamEntry]


@dataclass(frozen=True)
class UpdateStats:
    """Cycle accounting for one :meth:`CamSession.update` call."""

    words: int
    beats: int
    cycles: int


@dataclass(frozen=True)
class SearchStats:
    """Cycle accounting for one :meth:`CamSession.search` call."""

    keys: int
    beats: int
    cycles: int


# ----------------------------------------------------------------------
# telemetry publication (shared by every execution engine)
# ----------------------------------------------------------------------
def publish_update_metrics(session: "CamSession", stats: UpdateStats,
                           wall_s: Optional[float] = None) -> None:
    """Record one update transaction into the global metrics registry."""
    if not obs.enabled():
        return
    engine = session.engine_name
    obs.inc("cam_updates_total", 1,
            help="CAM update transactions", engine=engine)
    obs.inc("cam_update_words_total", stats.words, engine=engine)
    obs.inc("cam_update_beats_total", stats.beats, engine=engine)
    obs.inc("cam_update_cycles_total", stats.cycles, engine=engine)
    obs.observe("cam_update_latency_cycles", stats.cycles,
                help="per-update-call latency in simulated cycles",
                engine=engine)
    obs.set_gauge("cam_occupancy_entries", session.occupancy,
                  help="stored words per logical group", engine=engine)
    if wall_s is not None:
        obs.observe("cam_op_wall_seconds", wall_s,
                    help="host wall-time per CAM transaction",
                    buckets=obs.SECONDS_BUCKETS, op="update", engine=engine)


def publish_search_metrics(session: "CamSession", stats: SearchStats,
                           hits: int,
                           wall_s: Optional[float] = None) -> None:
    """Record one search transaction into the global metrics registry."""
    if not obs.enabled():
        return
    engine = session.engine_name
    obs.inc("cam_searches_total", 1,
            help="CAM search transactions", engine=engine)
    obs.inc("cam_search_keys_total", stats.keys, engine=engine)
    obs.inc("cam_search_beats_total", stats.beats, engine=engine)
    obs.inc("cam_search_cycles_total", stats.cycles, engine=engine)
    obs.inc("cam_search_hits_total", hits,
            help="keys that matched at least one entry", engine=engine)
    obs.observe("cam_search_latency_cycles", stats.cycles,
                help="per-search-call latency in simulated cycles",
                engine=engine)
    if wall_s is not None:
        obs.observe("cam_op_wall_seconds", wall_s,
                    buckets=obs.SECONDS_BUCKETS, op="search", engine=engine)


class CamSession:
    """Blocking transaction API over a cycle-accurate CAM unit.

    ``CamSession(config)`` drives the register-accurate simulator. Two
    alternative execution engines share this exact API (see
    :mod:`repro.core.batch`): ``CamSession(config, engine="batch")``
    returns a vectorized :class:`~repro.core.batch.BatchSession` and
    ``engine="audit"`` an :class:`~repro.core.batch.AuditSession` that
    differentially verifies the fast path against a cycle-accurate
    shadow. Both are subclasses, so ``isinstance(session, CamSession)``
    holds for every engine, and every engine conforms to the
    :class:`repro.core.CamBackend` protocol.
    """

    engine_name = "cycle"

    def __new__(cls, config=None, *args, **kwargs):
        # Deprecated dispatch shim: `engine` is the 4th parameter of
        # __init__ (config, trace, name, engine), so it can arrive
        # positionally as args[2] -- historically only the keyword
        # spelling dispatched and a positional engine was silently
        # dropped, returning a cycle session.
        engine = kwargs.get("engine")
        if engine is None and len(args) >= 3:
            engine = args[2]
        if cls is CamSession and engine not in (None, "cycle"):
            import warnings

            warnings.warn(
                "engine dispatch through CamSession(config, engine=...) is "
                "deprecated and will be removed in repro 0.6; construct "
                "sessions with repro.open_session(config, engine=...) "
                "instead",
                DeprecationWarning,
                stacklevel=2,
            )
            from repro.core.batch import session_class_for

            return super().__new__(session_class_for(engine))
        return super().__new__(cls)

    def __init__(
        self,
        config: UnitConfig,
        trace: bool = False,
        name: str = "cam_unit",
        engine: Optional[str] = None,
    ) -> None:
        self.config = config
        self.unit = CamUnit(config, name=name)
        self._trace = Trace() if trace else None
        self.sim = Simulator(self.unit, trace=self._trace)
        self.last_update_stats: Optional[UpdateStats] = None
        self.last_search_stats: Optional[SearchStats] = None

    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        """Total simulated cycles since construction/reset."""
        return self.sim.cycle

    @property
    def trace(self) -> Optional[Trace]:
        return self._trace

    @property
    def capacity(self) -> int:
        """Entries available per logical group."""
        return self.unit.group_capacity

    @property
    def occupancy(self) -> int:
        return self.unit.stored_words(0)

    @property
    def num_groups(self) -> int:
        """Current runtime group count M."""
        return self.unit.num_groups

    @property
    def search_latency(self) -> int:
        """End-to-end unit search latency in cycles (engine-agnostic)."""
        return self.unit.search_latency

    @property
    def update_latency(self) -> int:
        """End-to-end unit update latency in cycles (engine-agnostic)."""
        return self.unit.update_latency

    @property
    def words_per_beat(self) -> int:
        """Stored words carried per update beat (engine-agnostic)."""
        return self.unit.words_per_beat

    def resources(self):
        """Estimated resource vector of the modelled unit."""
        return self.unit.resources()

    # ------------------------------------------------------------------
    def _coerce(self, word: RawWord) -> CamEntry:
        if isinstance(word, CamEntry):
            return word
        if isinstance(word, int):
            if self.config.block.cell.cam_type is not CamType.BINARY:
                raise ConfigError(
                    "raw integers are only accepted for binary CAMs; build "
                    "CamEntry values for ternary/range configurations"
                )
            return binary_entry(word, self.config.data_width)
        raise ConfigError(
            f"update words must be int or CamEntry, got {type(word).__name__}"
        )

    # ------------------------------------------------------------------
    def update(
        self, words: Sequence[RawWord], group: Optional[int] = None
    ) -> UpdateStats:
        """Store ``words``, splitting them into full-bus beats.

        Blocks until the final beat has landed (its ``update_done``
        pulse), so content is searchable when this returns.
        """
        entries = [self._coerce(word) for word in words]
        if not entries:
            raise ConfigError("update needs at least one word")
        t0 = time.perf_counter() if obs.enabled() else 0.0
        with obs.span("session.update", engine=self.engine_name,
                      words=len(entries)):
            start = self.cycle
            per_beat = self.unit.words_per_beat
            beats = 0
            landed = 0
            with obs.span("unit.update") as unit_span:
                for offset in range(0, len(entries), per_beat):
                    self.unit.issue_update(
                        entries[offset:offset + per_beat], group=group
                    )
                    self.sim.step()
                    beats += 1
                    if self.unit.update_done:
                        landed += 1
                # Drain every beat through the 6-cycle update pipeline.
                budget = self.unit.update_latency + 4
                for _ in range(budget):
                    if landed >= beats:
                        break
                    self.sim.step()
                    if self.unit.update_done:
                        landed += 1
                unit_span.set(beats=beats, cycles=self.cycle - start)
            if landed < beats:
                raise SimulationError(
                    f"update pipeline failed to drain ({beats - landed} beats "
                    "pending)"
                )
            stats = UpdateStats(
                words=len(entries), beats=beats, cycles=self.cycle - start
            )
        self.last_update_stats = stats
        if obs.enabled():
            publish_update_metrics(self, stats,
                                   wall_s=time.perf_counter() - t0)
        return stats

    def search(
        self,
        keys: Sequence[int],
        groups: Optional[Sequence[int]] = None,
    ) -> List[SearchResult]:
        """Search ``keys`` at the pipelined rate; returns results in order.

        Keys are packed ``M`` per beat (the multi-query width); explicit
        ``groups`` only make sense in independent mode and then apply to
        every beat.
        """
        keys = list(keys)
        if not keys:
            raise ConfigError("search needs at least one key")
        t0 = time.perf_counter() if obs.enabled() else 0.0
        with obs.span("session.search", engine=self.engine_name,
                      keys=len(keys)):
            start = self.cycle
            per_beat = self.unit.num_groups if groups is None else len(groups)
            pending = 0
            results: List[SearchResult] = []
            offset = 0
            budget = len(keys) + self.unit.search_latency + 16
            with obs.span("unit.search") as unit_span:
                for _ in range(budget):
                    if offset < len(keys):
                        chunk = keys[offset:offset + per_beat]
                        chunk_groups = (None if groups is None
                                        else groups[: len(chunk)])
                        self.unit.issue_search(chunk, groups=chunk_groups)
                        offset += len(chunk)
                        pending += 1
                    elif pending == 0:
                        break
                    self.sim.step()
                    out = self.unit.search_output
                    if out is not None:
                        results.extend(out)
                        pending -= 1
                unit_span.set(cycles=self.cycle - start)
            if pending:
                raise SimulationError(
                    f"search pipeline failed to drain ({pending} beats pending)"
                )
            stats = SearchStats(
                keys=len(keys),
                beats=(len(keys) + per_beat - 1) // per_beat,
                cycles=self.cycle - start,
            )
        self.last_search_stats = stats
        if obs.enabled():
            publish_search_metrics(
                self, stats, hits=sum(1 for r in results if r.hit),
                wall_s=time.perf_counter() - t0,
            )
        return results

    def search_one(self, key: int, group: Optional[int] = None) -> SearchResult:
        """Search a single key (optionally in a specific group)."""
        groups = None if group is None else [group]
        return self.search([key], groups=groups)[0]

    def contains(self, key: int) -> bool:
        """Convenience membership test."""
        return self.search_one(key).hit

    def delete(self, key: int) -> SearchResult:
        """Delete-by-content (extension): invalidate entries matching
        ``key`` in every replica; returns what was invalidated."""
        with obs.span("session.delete", engine=self.engine_name):
            self.unit.issue_delete(key)
            cycles = self.unit.search_latency + 4
            for _ in range(cycles):
                self.sim.step()
                out = self.unit.search_output
                if out is not None:
                    obs.inc("cam_deletes_total",
                            help="delete-by-content transactions",
                            engine=self.engine_name)
                    return out[0]
        raise SimulationError("delete beat produced no result")

    # ------------------------------------------------------------------
    def set_groups(self, num_groups: int) -> None:
        """Reconfigure the runtime group count (flushes content)."""
        with obs.span("session.set_groups", engine=self.engine_name,
                      groups=num_groups):
            self.unit.issue_regroup(num_groups)
            self.sim.step(self.unit.update_latency + 2)
        obs.inc("cam_regroups_total", help="runtime group reconfigurations",
                engine=self.engine_name)

    def reset(self) -> None:
        """Clear all stored content."""
        with obs.span("session.reset", engine=self.engine_name):
            self.unit.issue_reset()
            self.sim.step(self.unit.update_latency + 2)
        obs.inc("cam_episodes_total",
                help="reset-bounded content episodes completed",
                engine=self.engine_name)

    def idle(self, cycles: int = 1) -> None:
        """Let the clock run without issuing operations."""
        self.sim.step(cycles)

    def stored_entries(self, group: int = 0):
        """Golden-model view of one group's content, in write order
        (deleted holes preserved as ``None``)."""
        if not 0 <= group < self.num_groups:
            raise RoutingError(
                f"group {group} out of range (0..{self.num_groups - 1})"
            )
        return self._group_slots(group)

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def _group_slots(self, group: int):
        """Stored slots of one group in address order, holes as None.

        Reads the cell registers directly rather than
        ``unit.stored_entries`` (which drops deleted holes): the slot
        *positions* are part of the architectural state -- the fill
        pointer never rewinds, so hole placement decides which address
        a future insert lands on.
        """
        slots = []
        for block_id in self.unit.table.blocks_in_group(group):
            block = self.unit.blocks[block_id]
            for cell in block.cells[: block.occupancy]:
                slots.append(cell.stored_entry)
        return slots

    def snapshot(self):
        """Capture stored content (holes included) as a
        :class:`~repro.service.snapshot.CamSnapshot`."""
        from repro.service.snapshot import (
            CamSnapshot,
            SnapshotEntry,
            unit_meta,
        )

        group_ids = ([0] if self.config.replicate_updates
                     else range(self.num_groups))
        groups = [
            [SnapshotEntry.from_entry(slot) for slot in self._group_slots(g)]
            for g in group_ids
        ]
        return CamSnapshot(
            kind="unit",
            meta=unit_meta(self.config, self.engine_name, self.num_groups),
            groups=groups,
        )

    def restore(self, snapshot) -> None:
        """Replace this session's content with a compatible snapshot.

        Implemented as real transactions: a regroup flush, then one
        bulk update per group with zero-valued placeholders standing in
        for dead slots. The placeholders are then invalidated directly
        at the cell registers (a delete-by-content replay could not
        target a single slot: for ternary content the dead entry's
        value may still match *live* final entries). The replay leaves
        the fill pointers, hole positions and priority order
        bit-identical to the snapshotted unit.
        """
        from repro.service.snapshot import (
            check_unit_compatible,
            restore_payload,
        )

        check_unit_compatible(snapshot, self.config,
                              getattr(self.unit, "name", "cam_unit"))
        num_groups = int(snapshot.meta.get("num_groups", 1))
        self.set_groups(num_groups)
        replicated = self.config.replicate_updates
        block_size = self.unit.block_size
        for index, slots in enumerate(snapshot.groups):
            if not slots:
                continue
            entries, dead = restore_payload(slots, self.config.data_width)
            self.update(entries, group=None if replicated else index)
            if not dead:
                continue
            poke_groups = range(num_groups) if replicated else [index]
            for g in poke_groups:
                block_ids = self.unit.table.blocks_in_group(g)
                for address in dead:
                    block = self.unit.blocks[block_ids[address // block_size]]
                    block.cells[address % block_size].occupied = False
                    block._deleted += 1
        obs.inc("cam_restores_total", help="snapshot restores applied",
                engine=self.engine_name)
