"""The DSP-based CAM cell (paper section III-A, figure 2).

One cell is one DSP48E2 slice in logic mode computing
``O = (A:B) XOR C``: the A:B register pair holds the stored word, the C
register latches the broadcast search key, and the pattern detector
reports a (masked) all-zero XOR result as a match. A per-entry ignore
mask register alongside the slice realises the TCAM/RMCAM behaviour of
Table II; an occupancy flip-flop gates matches so empty cells never hit.

Timing (Table V): update latency 1 cycle, search latency 2 cycles
(C register, then ALU result into the P register), cost exactly 1 DSP.
"""

from __future__ import annotations

from typing import Optional

from repro.core.mask import CamEntry, width_mask
from repro.core.types import CamType
from repro.dsp import (
    CAM_ALUMODE,
    CAM_OPMODE,
    DSP48E2,
    cam_cell_attributes,
    mask_for,
    split_ab,
)
from repro.dsp.primitives import DSP_WIDTH
from repro.errors import ConfigError
from repro.fabric.resources import ResourceVector
from repro.sim.component import Component


class CamCell(Component):
    """One CAM storage-and-compare cell backed by a DSP48E2 slice.

    Input ports (driven by the parent block during its compute phase):

    - :attr:`write_enable` / :attr:`write_entry` -- store a
      :class:`repro.core.mask.CamEntry` at the next edge.
    - :attr:`search_key` -- broadcast key; latched into C every cycle.
    - :attr:`clear` -- invalidate the stored entry.

    Combinational outputs (valid during the next compute phases):

    - :meth:`match_now` -- match bit computed from the registered XOR
      result and the per-entry mask; reflects the key latched two
      edges earlier.
    - :attr:`occupied` -- the occupancy flip-flop.
    """

    def __init__(
        self,
        cam_type: CamType = CamType.BINARY,
        data_width: int = 32,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if not 1 <= data_width <= DSP_WIDTH:
            raise ConfigError(
                f"data width must be 1..{DSP_WIDTH}, got {data_width}"
            )
        self.cam_type = cam_type
        self.data_width = data_width
        self.dsp = self.add_child(
            DSP48E2(cam_cell_attributes(mask=width_mask(data_width)),
                    name=f"{self.name}.dsp")
        )
        self.reset_state()

    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        self.write_enable = False
        self.write_entry: Optional[CamEntry] = None
        self.search_key = 0
        self.clear = False
        self.occupied = False
        self._entry_mask = width_mask(self.data_width)

    def compute(self) -> None:
        dsp = self.dsp
        dsp.opmode = CAM_OPMODE
        dsp.alumode = int(CAM_ALUMODE)
        dsp.c = self.search_key & mask_for(DSP_WIDTH)
        dsp.ce_c = True
        dsp.ce_p = True
        if self.clear:
            self.schedule(occupied=False, clear=False,
                          write_enable=False, write_entry=None)
            dsp.ce_a = False
            dsp.ce_b = False
            return
        if self.write_enable:
            entry = self.write_entry
            if entry is None:
                raise ConfigError(f"{self.name}: write asserted without an entry")
            a, b = split_ab(entry.value)
            dsp.a = a
            dsp.b = b
            dsp.ce_a = True
            dsp.ce_b = True
            self.schedule(
                occupied=True,
                _entry_mask=entry.mask,
                write_enable=False,
                write_entry=None,
            )
        else:
            dsp.ce_a = False
            dsp.ce_b = False

    # ------------------------------------------------------------------
    def match_now(self) -> bool:
        """Match bit for the key latched two edges ago (combinational).

        Reads the registered XOR result (the DSP P output) and applies
        the stored entry's ignore mask -- the "post-processing after the
        XOR operation" of section III-A. Empty cells never match.
        """
        if not self.occupied:
            return False
        residue = self.dsp.p & ~self._entry_mask & mask_for(DSP_WIDTH)
        return residue == 0

    @property
    def stored_value(self) -> int:
        """The word currently held in the A:B registers."""
        return self.dsp.stored_ab

    @property
    def stored_entry(self) -> Optional[CamEntry]:
        """Golden-model view of the stored entry, if occupied."""
        if not self.occupied:
            return None
        return CamEntry(
            value=self.stored_value,
            mask=self._entry_mask,
            width=self.data_width,
        )

    @staticmethod
    def resources() -> ResourceVector:
        """Cell cost (Table V): exactly one DSP, no LUT/BRAM.

        The occupancy/mask flip-flops are absorbed into the block
        control-logic cost model, matching how the paper accounts them.
        """
        return ResourceVector(dsp=1)

    #: Cycles from presenting a write to the data being stored.
    UPDATE_LATENCY = 1
    #: Cycles from presenting a key to the registered match bit.
    SEARCH_LATENCY = 2
