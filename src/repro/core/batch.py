"""Vectorized batch execution engine for the CAM unit.

The cycle-accurate :class:`repro.core.CamSession` drives every beat
through the event simulator, which is exact but spends nearly all of
its wall-clock time in Python component dispatch. For bulk workloads
(the Table IX triangle-counting runs, the ablation sweeps, large joins)
this module provides :class:`BatchSession`: the same transaction API,
the same results bit for bit, and the same reported cycle counts --
but executed directly against NumPy arrays of stored ``(value, mask)``
pairs, with the cycle accounting computed analytically from the
pipeline structure instead of simulated.

The analytic model is *derived*, not guessed: every formula below
mirrors a structural fact of the unit pipeline
(:mod:`repro.core.routing`, :mod:`repro.core.block`) and is enforced
against the simulator by the differential test suite
(``tests/core/test_batch_equivalence.py``) and by the audit engine:

- an update of ``B`` beats costs ``B + update_latency - 1`` cycles
  (one issue slot per beat at initiation interval 1, plus the pipeline
  drain of the final beat);
- a search of ``B`` beats costs ``B + search_latency - 1`` cycles
  (same shape; the latency term is 7 or 8 depending on the encoder
  output buffer);
- a delete-by-content beat costs ``search_latency`` cycles (it rides
  the search path);
- ``reset`` and ``set_groups`` cost ``update_latency + 2`` cycles
  (the fixed flush window :class:`CamSession` waits out).

Three engines are exposed through :func:`open_session` (the legacy
``CamSession(config, engine=...)`` spelling is deprecated):

- ``"cycle"``  -- the register-accurate simulator (default),
- ``"batch"``  -- this module's vectorized fast path,
- ``"audit"``  -- the fast path *plus* a differential audit: a seeded
  sample of reset-bounded episodes is replayed, operation by
  operation, through a shadow cycle-accurate session, and every
  result and cycle count is asserted bit-exact. Running a benchmark
  under ``engine="audit"`` turns it into a continuous equivalence
  test of the batch engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Type, Union

import numpy as np

from repro import obs
from repro.core.config import UnitConfig
from repro.core.mask import CamEntry, binary_entry
from repro.core.session import (
    CamSession,
    RawWord,
    SearchStats,
    UpdateStats,
    publish_search_metrics,
    publish_update_metrics,
)
from repro.core.types import CamType, SearchResult
from repro.dsp.primitives import DSP_WIDTH, mask_for
from repro.fabric.area import unit_resources
from repro.errors import (
    AuditError,
    CapacityError,
    ConfigError,
    RoutingError,
)

#: Full comparison width of one DSP cell (the pattern-detector window).
_FULL = mask_for(DSP_WIDTH)


class _GroupStore:
    """Content of one logical CAM group as flat NumPy arrays.

    Addresses are insertion order: the hardware's round-robin block
    fill advances to the next block only when the current one is full,
    so ``block_slot * block_size + cell`` equals the global insertion
    index. Deleted entries become dead slots (``live`` False); the fill
    pointer never rewinds, mirroring the block's invalidate-by-content
    behaviour.
    """

    __slots__ = ("capacity", "fill", "values", "cares", "live")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.fill = 0
        self.values = np.zeros(capacity, dtype=np.int64)
        self.cares = np.zeros(capacity, dtype=np.int64)
        self.live = np.zeros(capacity, dtype=bool)

    def append(self, values: np.ndarray, cares: np.ndarray) -> None:
        count = values.size
        stop = self.fill + count
        self.values[self.fill:stop] = values
        self.cares[self.fill:stop] = cares
        self.live[self.fill:stop] = True
        self.fill = stop

    def clear(self) -> None:
        self.fill = 0
        self.live[:] = False

    def match_matrix(self, keys: np.ndarray) -> np.ndarray:
        """Boolean (num_keys, fill) match matrix for masked keys."""
        n = self.fill
        if n == 0:
            return np.zeros((keys.size, 0), dtype=bool)
        diff = (keys[:, None] ^ self.values[None, :n]) & self.cares[None, :n]
        return (diff == 0) & self.live[None, :n]

    def entries(self) -> List[Optional[CamEntry]]:
        """Golden view (holes as ``None``), same order as the hardware."""
        out: List[Optional[CamEntry]] = []
        for index in range(self.fill):
            if not self.live[index]:
                out.append(None)
                continue
            care = int(self.cares[index])
            out.append(CamEntry(value=int(self.values[index]),
                                mask=_FULL ^ care, width=DSP_WIDTH))
        return out


def _vector_from_row(row: np.ndarray) -> int:
    """Pack one boolean match row into the integer match vector."""
    if row.size == 0:
        return 0
    packed = np.packbits(row, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


class BatchSession(CamSession):
    """Vectorized drop-in replacement for :class:`CamSession`.

    Exposes the identical transaction API (both engines conform to the
    :class:`repro.core.CamBackend` protocol) and produces bit-identical
    :class:`SearchResult` values and identical cycle accounting, but
    executes updates/searches/deletes as NumPy array operations. No
    simulator is constructed; ``cycle`` is an analytic counter.
    """

    engine_name = "batch"

    def __init__(
        self,
        config: UnitConfig,
        trace: bool = False,
        name: str = "cam_unit",
        engine: Optional[str] = None,
    ) -> None:
        if trace:
            raise ConfigError(
                "waveform tracing needs the cycle-accurate engine; "
                "construct CamSession(config, trace=True) instead"
            )
        self.config = config
        self.name = name
        self._cycle = 0
        self._num_groups = config.default_groups
        self._init_stores()
        self.last_update_stats: Optional[UpdateStats] = None
        self.last_search_stats: Optional[SearchStats] = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _init_stores(self) -> None:
        capacity = self.config.group_capacity(self._num_groups)
        if self.config.replicate_updates:
            # Every group holds the same content: share one store.
            shared = _GroupStore(capacity)
            self._stores = [shared] * self._num_groups
        else:
            self._stores = [_GroupStore(capacity) for _ in range(self._num_groups)]

    @property
    def cycle(self) -> int:
        return self._cycle

    @property
    def trace(self):
        return None

    @property
    def num_groups(self) -> int:
        return self._num_groups

    @property
    def capacity(self) -> int:
        return self.config.group_capacity(self._num_groups)

    @property
    def occupancy(self) -> int:
        return self._stores[0].fill

    @property
    def search_latency(self) -> int:
        return self.config.search_latency

    @property
    def update_latency(self) -> int:
        return self.config.update_latency

    @property
    def words_per_beat(self) -> int:
        return self.config.words_per_beat

    def resources(self):
        """Resource vector of the unit this engine models (same
        calibrated estimate the cycle engine reports)."""
        return unit_resources(
            self.config.total_entries,
            block_size=self.config.block.block_size,
            bus_width=self.config.unit_bus_width,
        )

    def stored_entries(self, group: int = 0) -> List[Optional[CamEntry]]:
        """Golden-model view of one group's content, in write order."""
        if not 0 <= group < self._num_groups:
            raise RoutingError(
                f"{self.name}: group {group} out of range "
                f"(0..{self._num_groups - 1})"
            )
        return self._stores[group].entries()

    # ------------------------------------------------------------------
    # word coercion (vectorized fast path for raw binary integers)
    # ------------------------------------------------------------------
    def _coerce_arrays(self, words: Sequence[RawWord]):
        """Return (values, cares) int64 arrays for an update batch."""
        width = self.config.data_width
        if all(isinstance(word, (int, np.integer)) for word in words):
            if self.config.block.cell.cam_type is not CamType.BINARY:
                raise ConfigError(
                    "raw integers are only accepted for binary CAMs; build "
                    "CamEntry values for ternary/range configurations"
                )
            values = np.asarray([int(word) for word in words], dtype=np.int64)
            bad = (values < 0) | (values >> width != 0)
            if bad.any():
                # Reproduce the exact scalar-path error for the first
                # offending word.
                binary_entry(int(values[np.argmax(bad)]), width)
            cares = np.full(values.shape, mask_for(width), dtype=np.int64)
            return values, cares
        values = np.empty(len(words), dtype=np.int64)
        cares = np.empty(len(words), dtype=np.int64)
        for index, word in enumerate(words):
            entry = self._coerce(word)
            values[index] = entry.value & _FULL
            cares[index] = ~entry.mask & _FULL
        return values, cares

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def _update_targets(self, group: Optional[int]) -> List[int]:
        if self.config.replicate_updates:
            if group is not None:
                raise RoutingError(
                    f"{self.name}: replicated mode updates every group; "
                    "do not pass a group id"
                )
            return [0]  # shared store
        if group is None:
            raise RoutingError(
                f"{self.name}: independent mode requires a target group"
            )
        if not 0 <= group < self._num_groups:
            raise RoutingError(
                f"{self.name}: group {group} out of range "
                f"(0..{self._num_groups - 1})"
            )
        return [group]

    def update(
        self, words: Sequence[RawWord], group: Optional[int] = None
    ) -> UpdateStats:
        words = list(words)
        if not words:
            raise ConfigError("update needs at least one word")
        t0 = time.perf_counter() if obs.enabled() else 0.0
        with obs.span("session.update", engine=self.engine_name,
                      words=len(words)):
            stats = self._update_inner(words, group)
        self.last_update_stats = stats
        if obs.enabled():
            publish_update_metrics(self, stats,
                                   wall_s=time.perf_counter() - t0)
        return stats

    def _update_inner(
        self, words: List[RawWord], group: Optional[int]
    ) -> UpdateStats:
        targets = self._update_targets(group)
        values, cares = self._coerce_arrays(words)
        per_beat = self.config.words_per_beat
        beats = -(-len(words) // per_beat)
        capacity = self.capacity
        for store_index in targets:
            store = self._stores[store_index]
            if store.fill + len(words) > capacity:
                # Mirror the cycle engine's partial-failure semantics:
                # full beats that fit are issued (one cycle each) before
                # the overflowing beat raises at issue time.
                fitting_beats = (capacity - store.fill) // per_beat
                fitting_words = fitting_beats * per_beat
                for si in targets:
                    self._stores[si].append(values[:fitting_words],
                                            cares[:fitting_words])
                self._cycle += fitting_beats
                overflow = min(per_beat, len(words) - fitting_words)
                raise CapacityError(
                    f"{self.name}: group {store_index} cannot take "
                    f"{overflow} more words "
                    f"({store.fill}/{capacity} used)"
                )
        with obs.span("unit.update", beats=beats):
            for store_index in targets:
                self._stores[store_index].append(values, cares)
        cycles = beats + self.config.update_latency - 1
        self._cycle += cycles
        return UpdateStats(words=len(words), beats=beats, cycles=cycles)

    def _validate_groups(self, groups: Sequence[int]) -> List[int]:
        group_ids = [int(g) for g in groups]
        if len(group_ids) > self._num_groups:
            raise RoutingError(
                f"{self.name}: {len(group_ids)} concurrent queries exceed "
                f"the current group count M={self._num_groups}"
            )
        if len(set(group_ids)) != len(group_ids):
            raise RoutingError(f"{self.name}: each query needs a distinct group")
        for g in group_ids:
            if not 0 <= g < self._num_groups:
                raise RoutingError(
                    f"{self.name}: group {g} out of range "
                    f"(0..{self._num_groups - 1})"
                )
        return group_ids

    def search(
        self,
        keys: Sequence[int],
        groups: Optional[Sequence[int]] = None,
    ) -> List[SearchResult]:
        keys = list(keys)
        if not keys:
            raise ConfigError("search needs at least one key")
        t0 = time.perf_counter() if obs.enabled() else 0.0
        with obs.span("session.search", engine=self.engine_name,
                      keys=len(keys)):
            if groups is None:
                per_beat = self._num_groups
                group_ids = list(range(per_beat))
            else:
                group_ids = self._validate_groups(groups)
                per_beat = len(group_ids)
            raw_keys = [int(key) for key in keys]
            masked = np.asarray(raw_keys, dtype=np.int64) & _FULL
            encoding = self.config.block.encoding

            results: List[Optional[SearchResult]] = [None] * len(keys)
            with obs.span("unit.search", keys=len(keys)):
                if self.config.replicate_updates:
                    # Every group answers from the same content: one matrix.
                    matrix = self._stores[0].match_matrix(masked)
                    for index, key in enumerate(raw_keys):
                        results[index] = SearchResult.from_vector(
                            key, _vector_from_row(matrix[index]), encoding
                        )
                else:
                    key_groups = np.asarray(
                        [group_ids[index % per_beat]
                         for index in range(len(keys))]
                    )
                    for g in set(key_groups.tolist()):
                        picks = np.flatnonzero(key_groups == g)
                        matrix = self._stores[g].match_matrix(masked[picks])
                        for row, index in enumerate(picks):
                            results[index] = SearchResult.from_vector(
                                raw_keys[index], _vector_from_row(matrix[row]),
                                encoding,
                            )

            beats = -(-len(keys) // per_beat)
            cycles = beats + self.config.search_latency - 1
            self._cycle += cycles
            stats = SearchStats(keys=len(keys), beats=beats, cycles=cycles)
        self.last_search_stats = stats
        if obs.enabled():
            publish_search_metrics(
                self, stats,
                hits=sum(1 for r in results if r is not None and r.hit),
                wall_s=time.perf_counter() - t0,
            )
        return results  # type: ignore[return-value]

    def search_one(self, key: int, group: Optional[int] = None) -> SearchResult:
        """Search a single key (optionally in a specific group)."""
        groups = None if group is None else [group]
        return self.search([key], groups=groups)[0]

    def contains(self, key: int) -> bool:
        """Convenience membership test."""
        return self.search_one(key).hit

    def delete(self, key: int) -> SearchResult:
        """Delete-by-content: invalidate matches in every group."""
        with obs.span("session.delete", engine=self.engine_name):
            raw = int(key)
            masked = np.asarray([raw], dtype=np.int64) & _FULL
            encoding = self.config.block.encoding
            first = self._stores[0].match_matrix(masked)[0]
            result = SearchResult.from_vector(
                raw, _vector_from_row(first), encoding
            )
            seen = set()
            for store in self._stores:
                if id(store) in seen:
                    continue
                seen.add(id(store))
                row = store.match_matrix(masked)[0]
                store.live[: row.size][row] = False
            self._cycle += self.config.search_latency
        obs.inc("cam_deletes_total", help="delete-by-content transactions",
                engine=self.engine_name)
        return result

    # ------------------------------------------------------------------
    def set_groups(self, num_groups: int) -> None:
        if num_groups < 1 or self.config.num_blocks % num_groups:
            raise RoutingError(
                f"{self.name}: group count {num_groups} must divide "
                f"{self.config.num_blocks} blocks"
            )
        self._num_groups = num_groups
        self._init_stores()
        self._cycle += self.config.update_latency + 2
        obs.inc("cam_regroups_total", help="runtime group reconfigurations",
                engine=self.engine_name)

    def reset(self) -> None:
        seen = set()
        for store in self._stores:
            if id(store) not in seen:
                seen.add(id(store))
                store.clear()
        self._cycle += self.config.update_latency + 2
        obs.inc("cam_episodes_total",
                help="reset-bounded content episodes completed",
                engine=self.engine_name)

    def idle(self, cycles: int = 1) -> None:
        self._cycle += cycles

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def _distinct_stores(self) -> List[_GroupStore]:
        seen = set()
        out: List[_GroupStore] = []
        for store in self._stores:
            if id(store) not in seen:
                seen.add(id(store))
                out.append(store)
        return out

    def snapshot(self):
        """Capture stored content (holes included) as a
        :class:`~repro.service.snapshot.CamSnapshot`."""
        from repro.service.snapshot import (
            CamSnapshot,
            SnapshotEntry,
            unit_meta,
        )

        groups = [
            [SnapshotEntry.from_entry(entry) for entry in store.entries()]
            for store in self._distinct_stores()
        ]
        return CamSnapshot(
            kind="unit",
            meta=unit_meta(self.config, self.engine_name, self._num_groups),
            groups=groups,
        )

    def restore(self, snapshot) -> None:
        """Replace this session's content with a compatible snapshot.

        Costs exactly what the cycle engine's replay costs (one flush
        plus one bulk update per non-empty group), so audit-mode
        differential checks stay bit-exact across a restore.
        """
        from repro.service.snapshot import check_unit_compatible

        check_unit_compatible(snapshot, self.config, self.name)
        self._num_groups = int(snapshot.meta.get("num_groups", 1))
        self._init_stores()
        self._cycle += self.config.update_latency + 2
        per_beat = self.config.words_per_beat
        for store, slots in zip(self._distinct_stores(), snapshot.groups):
            if not slots:
                continue
            values = np.asarray([e.value for e in slots], dtype=np.int64)
            cares = np.asarray([e.care for e in slots], dtype=np.int64)
            store.append(values, cares)
            dead = [addr for addr, e in enumerate(slots) if not e.live]
            if dead:
                store.live[np.asarray(dead)] = False
            beats = -(-len(slots) // per_beat)
            self._cycle += beats + self.config.update_latency - 1
        obs.inc("cam_restores_total", help="snapshot restores applied",
                engine=self.engine_name)


# ----------------------------------------------------------------------
# differential audit engine
# ----------------------------------------------------------------------
@dataclass
class AuditDivergence:
    """One observed disagreement between the batch and cycle engines."""

    operation: str
    detail: str


@dataclass
class AuditReport:
    """Running tally of what the audit engine has proven equivalent."""

    episodes: int = 0
    episodes_audited: int = 0
    ops_audited: int = 0
    ops_fast_only: int = 0
    divergences: List[AuditDivergence] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        verdict = "PASS" if self.passed else (
            f"FAIL ({len(self.divergences)} divergences, first: "
            f"{self.divergences[0].operation}: {self.divergences[0].detail})"
        )
        return (
            f"{verdict}: {self.ops_audited} ops audited bit-exact, "
            f"{self.ops_fast_only} fast-only, "
            f"{self.episodes_audited}/{self.episodes} episodes sampled"
        )


class AuditSession(BatchSession):
    """The batch fast path with continuous differential verification.

    A seeded coin decides, at every content flush (construction,
    :meth:`reset`, :meth:`set_groups`), whether the upcoming *episode*
    is audited. Audited episodes replay every operation through a
    shadow cycle-accurate :class:`CamSession` and assert bit-exact
    result agreement plus identical per-operation cycle counts;
    unaudited episodes run at full batch speed. ``audit_sample=1.0``
    verifies everything (and is exactly as slow as the cycle engine);
    the default samples a fraction while keeping the workload itself
    on the fast path.
    """

    engine_name = "audit"

    def __init__(
        self,
        config: UnitConfig,
        trace: bool = False,
        name: str = "cam_unit",
        engine: Optional[str] = None,
        audit_sample: float = 0.1,
        audit_seed: int = 0,
        strict: bool = True,
    ) -> None:
        super().__init__(config, trace=trace, name=name)
        if not 0.0 <= audit_sample <= 1.0:
            raise ConfigError(
                f"audit_sample must be in [0, 1], got {audit_sample}"
            )
        self.audit_sample = audit_sample
        self.strict = strict
        self._audit_rng = np.random.default_rng(audit_seed)
        self.shadow = CamSession(config, name=f"{name}.shadow")
        self.audit_report = AuditReport()
        self._begin_episode()

    # ------------------------------------------------------------------
    def _begin_episode(self) -> None:
        self.audit_report.episodes += 1
        self._auditing = bool(self._audit_rng.random() < self.audit_sample)
        if self._auditing:
            self.audit_report.episodes_audited += 1

    def _diverge(self, operation: str, detail: str) -> None:
        self.audit_report.divergences.append(AuditDivergence(operation, detail))
        obs.inc("cam_audit_divergences_total",
                help="batch/cycle disagreements caught by the audit engine",
                op=operation)
        if self.strict:
            raise AuditError(
                f"{self.name}: batch/cycle divergence in {operation}: {detail}"
            )

    @staticmethod
    def _result_fields(result: SearchResult):
        return (result.key, result.hit, result.address,
                result.match_vector, result.match_count, result.encoding)

    def _compare_results(
        self,
        operation: str,
        fast: Sequence[SearchResult],
        slow: Sequence[SearchResult],
    ) -> None:
        if len(fast) != len(slow):
            self._diverge(operation, f"{len(fast)} vs {len(slow)} results")
            return
        for index, (f, s) in enumerate(zip(fast, slow)):
            if self._result_fields(f) != self._result_fields(s):
                self._diverge(
                    operation,
                    f"result {index}: batch hit={f.hit} addr={f.address} "
                    f"vec={f.match_vector:#x} / cycle hit={s.hit} "
                    f"addr={s.address} vec={s.match_vector:#x}",
                )

    # ------------------------------------------------------------------
    def update(
        self, words: Sequence[RawWord], group: Optional[int] = None
    ) -> UpdateStats:
        words = list(words)
        try:
            stats = super().update(words, group=group)
        except Exception:
            # The shadow never saw the failed beat; stop auditing this
            # episode rather than reporting a false divergence later.
            self._auditing = False
            raise
        if self._auditing:
            shadow_stats = self.shadow.update(words, group=group)
            self.audit_report.ops_audited += 1
            obs.inc("cam_audit_ops_total",
                    help="operations seen by the audit engine",
                    mode="audited")
            if (stats.words, stats.beats, stats.cycles) != (
                shadow_stats.words, shadow_stats.beats, shadow_stats.cycles
            ):
                self._diverge(
                    "update",
                    f"batch {stats} / cycle {shadow_stats}",
                )
        else:
            self.audit_report.ops_fast_only += 1
            obs.inc("cam_audit_ops_total", mode="fast_only")
        return stats

    def search(
        self,
        keys: Sequence[int],
        groups: Optional[Sequence[int]] = None,
    ) -> List[SearchResult]:
        keys = list(keys)
        results = super().search(keys, groups=groups)
        if self._auditing:
            shadow_results = self.shadow.search(keys, groups=groups)
            self.audit_report.ops_audited += 1
            obs.inc("cam_audit_ops_total",
                    help="operations seen by the audit engine",
                    mode="audited")
            self._compare_results("search", results, shadow_results)
            fast_stats = self.last_search_stats
            slow_stats = self.shadow.last_search_stats
            if (fast_stats.keys, fast_stats.beats, fast_stats.cycles) != (
                slow_stats.keys, slow_stats.beats, slow_stats.cycles
            ):
                self._diverge(
                    "search", f"batch {fast_stats} / cycle {slow_stats}"
                )
        else:
            self.audit_report.ops_fast_only += 1
            obs.inc("cam_audit_ops_total", mode="fast_only")
        return results

    def delete(self, key: int) -> SearchResult:
        before = self._cycle
        result = super().delete(key)
        if self._auditing:
            shadow_before = self.shadow.cycle
            shadow_result = self.shadow.delete(key)
            self.audit_report.ops_audited += 1
            obs.inc("cam_audit_ops_total",
                    help="operations seen by the audit engine",
                    mode="audited")
            self._compare_results("delete", [result], [shadow_result])
            if self._cycle - before != self.shadow.cycle - shadow_before:
                self._diverge(
                    "delete",
                    f"batch {self._cycle - before} cycles / cycle "
                    f"{self.shadow.cycle - shadow_before} cycles",
                )
        else:
            self.audit_report.ops_fast_only += 1
            obs.inc("cam_audit_ops_total", mode="fast_only")
        return result

    def set_groups(self, num_groups: int) -> None:
        super().set_groups(num_groups)
        # The shadow always tracks flushes so a later audited episode
        # starts from the same (empty, regrouped) state.
        self.shadow.set_groups(num_groups)
        self._begin_episode()

    def reset(self) -> None:
        super().reset()
        self.shadow.reset()
        self._begin_episode()

    def idle(self, cycles: int = 1) -> None:
        super().idle(cycles)
        if self._auditing:
            self.shadow.idle(cycles)

    def restore(self, snapshot) -> None:
        # Both halves replay the same snapshot at the same analytic
        # cost, so a following audited episode compares cleanly.
        super().restore(snapshot)
        self.shadow.restore(snapshot)
        self._begin_episode()


# ----------------------------------------------------------------------
# engine registry
# ----------------------------------------------------------------------
ENGINES = {
    "cycle": CamSession,
    "batch": BatchSession,
    "audit": AuditSession,
}


def session_class_for(engine: str) -> Type[CamSession]:
    """Resolve an engine name to its session class."""
    try:
        return ENGINES[engine]
    except KeyError:
        raise ConfigError(
            f"unknown execution engine {engine!r}; pick one of "
            f"{sorted(ENGINES)}"
        ) from None


def open_session(
    config: UnitConfig,
    engine: str = "cycle",
    *,
    shards: int = 1,
    policy="hash",
    replicas: int = 1,
    **kwargs,
):
    """Construct a session on the requested execution engine.

    The one front door for every execution backend (re-exported as
    :func:`repro.open_session`):

    - ``engine`` picks the per-unit backend: ``"cycle"`` (register
      accurate), ``"batch"`` (NumPy vectorized) or ``"audit"``
      (vectorized with a differential cycle-accurate shadow);
    - ``shards > 1`` returns a
      :class:`~repro.service.sharded.ShardedCam` that partitions the
      key space across that many independent ``engine`` sessions
      (``config`` describes one shard) under the given shard
      ``policy`` -- a name from
      :data:`repro.service.sharding.POLICIES` or a
      :class:`~repro.service.sharding.ShardPolicy` instance. With the
      default ``shards=1`` the ``policy`` argument is ignored;
    - ``replicas > 1`` backs every shard with that many replica
      sessions behind a :class:`~repro.service.replica.ReplicaSet`
      (fan-out writes, failover reads, divergence beats, live
      recovery); replication implies the sharded facade, so
      ``replicas=2`` with the default ``shards=1`` returns a
      one-shard :class:`~repro.service.sharded.ShardedCam`.

    Remaining ``kwargs`` are forwarded to the backend constructor
    (``trace`` and ``name`` everywhere; ``audit_sample`` /
    ``audit_seed`` / ``strict`` for the audit engine).
    """
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    if replicas < 1:
        raise ConfigError(f"replicas must be >= 1, got {replicas}")
    if shards > 1 or replicas > 1:
        from repro.service.sharded import ShardedCam

        return ShardedCam(config, shards=shards, policy=policy,
                          engine=engine, replicas=replicas, **kwargs)
    return session_class_for(engine)(config, **kwargs)
