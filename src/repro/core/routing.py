"""Routing Compute and Post-Router stages of the CAM unit (figure 4).

The unit's datapath ahead of the blocks is modelled by two pipeline
components that contribute exactly the register stages of the paper's
design:

- :class:`RoutingCompute` (2 stages: input interface register + routing
  table lookup register). It owns the **Routing Table**, the
  runtime-writable array mapping block IDs to group IDs; the table
  shares the update datapath, so remapping is just another beat kind.
- :class:`PostRouter` (2 stages on the search path: key replication +
  crossbar; 3 on the update path, the extra one being the per-group
  **Block Address Controller** that resolves the round-robin target).

Together with the block's own latency this yields the measured
end-to-end figures of Table VIII: 4 + 3/4 cycles for search, 5 + 1 for
update.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import RoutingError
from repro.sim.component import Component
from repro.sim.pipeline import ValidPipe


class RoutingTable:
    """The Block-ID -> Group-ID mapping array.

    Stored as a plain list indexed by block ID. The default layout
    assigns contiguous runs of blocks to each group; any surjective
    mapping with equal group populations is accepted, reflecting the
    paper's point that groups are *logical* and "not tied to the
    physical layout".
    """

    def __init__(self, num_blocks: int, num_groups: int = 1) -> None:
        if num_blocks < 1:
            raise RoutingError(f"num_blocks must be >= 1, got {num_blocks}")
        self._num_blocks = num_blocks
        self._mapping: List[int] = [0] * num_blocks
        self.remap_contiguous(num_groups)

    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def num_groups(self) -> int:
        return self._num_groups

    @property
    def blocks_per_group(self) -> int:
        return self._num_blocks // self._num_groups

    def group_of(self, block_id: int) -> int:
        """Group that ``block_id`` currently belongs to."""
        return self._mapping[block_id]

    def blocks_in_group(self, group_id: int) -> List[int]:
        """Block IDs of one group, in ascending order."""
        if not 0 <= group_id < self._num_groups:
            raise RoutingError(
                f"group {group_id} out of range (0..{self._num_groups - 1})"
            )
        return [b for b, g in enumerate(self._mapping) if g == group_id]

    def as_list(self) -> List[int]:
        return list(self._mapping)

    # ------------------------------------------------------------------
    def remap_contiguous(self, num_groups: int) -> None:
        """Reinitialise to the default contiguous layout."""
        if num_groups < 1 or self._num_blocks % num_groups:
            raise RoutingError(
                f"group count {num_groups} must be a positive divisor of "
                f"{self._num_blocks} blocks"
            )
        per_group = self._num_blocks // num_groups
        self._mapping = [b // per_group for b in range(self._num_blocks)]
        self._num_groups = num_groups

    def remap(self, mapping: List[int]) -> None:
        """Install an explicit mapping (must partition blocks evenly)."""
        if len(mapping) != self._num_blocks:
            raise RoutingError(
                f"mapping covers {len(mapping)} blocks, expected "
                f"{self._num_blocks}"
            )
        groups = sorted(set(mapping))
        if groups != list(range(len(groups))):
            raise RoutingError("group IDs must be dense starting at 0")
        num_groups = len(groups)
        if self._num_blocks % num_groups:
            raise RoutingError(
                f"{num_groups} groups cannot evenly partition "
                f"{self._num_blocks} blocks"
            )
        per_group = self._num_blocks // num_groups
        for group in groups:
            population = mapping.count(group)
            if population != per_group:
                raise RoutingError(
                    f"group {group} has {population} blocks, expected "
                    f"{per_group}"
                )
        self._mapping = list(mapping)
        self._num_groups = num_groups


class RoutingCompute(Component):
    """Input interface + routing-table lookup (2 registered stages).

    The parent unit pushes raw operation beats with :meth:`send`; two
    cycles later the beat is readable at :meth:`tail` with group
    routing resolved (attached by the unit's mapping function).
    """

    DEPTH = 2

    def __init__(self, table: RoutingTable, name: Optional[str] = None) -> None:
        super().__init__(name or "routing_compute")
        self.table = table
        self._pipe = self.add_child(ValidPipe(self.DEPTH, name=f"{self.name}.pipe"))

    def send(self, beat) -> None:
        self._pipe.send(beat)

    def tail(self) -> Tuple[bool, object]:
        return self._pipe.tail()

    def reset_state(self) -> None:
        pass


class PostRouter(Component):
    """Replication + crossbar (+ block address controller for updates).

    Two parallel fixed-latency paths model the figure-4 Post-Router:
    searches take 2 stages (replicate, crossbar), updates take 3 (the
    crossbar hand-off to each group's block address controller adds a
    stage, which is why unit updates cost 6 cycles to a search's 7).
    """

    SEARCH_DEPTH = 2
    UPDATE_DEPTH = 3

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name or "post_router")
        self._search_pipe = self.add_child(
            ValidPipe(self.SEARCH_DEPTH, name=f"{self.name}.search")
        )
        self._update_pipe = self.add_child(
            ValidPipe(self.UPDATE_DEPTH, name=f"{self.name}.update")
        )

    def send_search(self, beat) -> None:
        self._search_pipe.send(beat)

    def send_update(self, beat) -> None:
        self._update_pipe.send(beat)

    def search_tail(self) -> Tuple[bool, object]:
        return self._search_pipe.tail()

    def update_tail(self) -> Tuple[bool, object]:
        return self._update_pipe.tail()

    def reset_state(self) -> None:
        pass
