"""CAM group abstraction and round-robin block filling (section III-C).

A *group* is the logical CAM a query executes against: a slice of the
unit's blocks holding (in the default replicated mode) a full copy of
the stored content. The :class:`BlockAddressController` implements the
paper's round-robin fill policy: updates land in the group's current
block until it is full, then advance to the next block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import CapacityError, RoutingError


@dataclass(frozen=True)
class Allocation:
    """Where one update beat lands inside a group.

    ``segments`` lists (block_slot, word_count) pairs in write order,
    where ``block_slot`` indexes the group's block list (not a global
    block ID). A beat larger than the current block's free space is
    split across consecutive blocks in the same cycle, which the
    block-level DeMUX supports because every word carries its own cell
    enable.
    """

    segments: Tuple[Tuple[int, int], ...]
    new_cursor: int


class BlockAddressController:
    """Round-robin allocator over the blocks of one CAM group."""

    def __init__(self, blocks_per_group: int, block_size: int) -> None:
        if blocks_per_group < 1:
            raise RoutingError(
                f"blocks_per_group must be >= 1, got {blocks_per_group}"
            )
        if block_size < 1:
            raise RoutingError(f"block_size must be >= 1, got {block_size}")
        self.blocks_per_group = blocks_per_group
        self.block_size = block_size
        self.cursor = 0

    @property
    def capacity(self) -> int:
        """Total entries addressable by this controller."""
        return self.blocks_per_group * self.block_size

    def reset(self) -> None:
        self.cursor = 0

    def plan(self, words: int, free_per_block: Sequence[int]) -> Allocation:
        """Plan where ``words`` new entries go, without mutating state.

        ``free_per_block`` gives the free-cell count of each block in
        group order. Raises :class:`CapacityError` when the group lacks
        space.
        """
        if words < 1:
            raise RoutingError(f"cannot allocate {words} words")
        if len(free_per_block) != self.blocks_per_group:
            raise RoutingError(
                f"expected {self.blocks_per_group} free counts, got "
                f"{len(free_per_block)}"
            )
        if words > sum(free_per_block):
            raise CapacityError(
                f"group is full: cannot place {words} words "
                f"(free: {list(free_per_block)})"
            )
        segments: List[Tuple[int, int]] = []
        free = list(free_per_block)
        cursor = self.cursor
        remaining = words
        visited = 0
        while remaining > 0:
            if visited > self.blocks_per_group:  # pragma: no cover - guard
                raise CapacityError(
                    f"group fill wedged placing {words} words "
                    f"(free: {list(free_per_block)})"
                )
            available = free[cursor]
            if available <= 0:
                cursor = (cursor + 1) % self.blocks_per_group
                visited += 1
                continue
            take = min(available, remaining)
            segments.append((cursor, take))
            free[cursor] -= take
            remaining -= take
            if take == available:
                cursor = (cursor + 1) % self.blocks_per_group
                visited += 1
        return Allocation(segments=tuple(segments), new_cursor=cursor)

    def commit(self, allocation: Allocation) -> None:
        """Advance the cursor after the planned beat has been issued."""
        self.cursor = allocation.new_cursor
