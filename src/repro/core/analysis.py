"""Measured evaluation of cells, blocks and units (paper section IV).

Latencies here are *measured* by driving the cycle-accurate models in a
simulator -- not asserted from the config -- so the benches regenerate
Tables V, VI and VIII the way the paper's authors did (hardware
counters), while resources and frequency come from the calibrated
fabric models (see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.block import CamBlock
from repro.core.cell import CamCell
from repro.core.config import BlockConfig, CellConfig, UnitConfig, unit_for_entries
from repro.core.mask import binary_entry, entry_for
from repro.core.session import CamSession
from repro.core.types import CamType
from repro.errors import SimulationError
from repro.fabric.area import block_resources, unit_resources
from repro.fabric.device import ALVEO_U250, Device
from repro.fabric.resources import ResourceVector
from repro.fabric.timing import (
    block_frequency_mhz,
    search_throughput_mops,
    unit_frequency_mhz,
    update_throughput_mops,
)
from repro.sim import Simulator


@dataclass(frozen=True)
class CellReport:
    """Table V row: one CAM cell's capacity, latency and cost."""

    cam_type: CamType
    data_width: int
    update_latency: int
    search_latency: int
    resources: ResourceVector


@dataclass(frozen=True)
class BlockReport:
    """Table VI column: one block size's measured behaviour."""

    size: int
    update_latency: int
    search_latency: int
    update_throughput_mops: float
    search_throughput_mops: float
    resources: ResourceVector
    frequency_mhz: float
    lut_utilisation: float
    dsp_utilisation: float


@dataclass(frozen=True)
class UnitScalingReport:
    """Table VII row: unit resource/frequency scaling."""

    total_entries: int
    data_width: int
    luts: int
    dsps: int
    frequency_mhz: float
    lut_utilisation: float
    dsp_utilisation: float


@dataclass(frozen=True)
class UnitPerfReport:
    """Table VIII column: unit end-to-end performance."""

    total_entries: int
    data_width: int
    update_latency: int
    search_latency: int
    update_throughput_mops: float
    search_throughput_mops: float
    frequency_mhz: float


# ----------------------------------------------------------------------
# cell level (Table V)
# ----------------------------------------------------------------------
_SAMPLE_ENTRIES = {
    CamType.BINARY: (0x1234,),
    CamType.TERNARY: (0x1234, 0x00FF),
    CamType.RANGE: (0x1200, 0x12FF),
}


def measure_cell(
    cam_type: CamType = CamType.BINARY, data_width: int = 48
) -> CellReport:
    """Drive one cell in a simulator and measure both latencies."""
    cell = CamCell(cam_type=cam_type, data_width=data_width)
    sim = Simulator(cell)
    entry = entry_for(cam_type, data_width, *_SAMPLE_ENTRIES[cam_type])

    control_key = (entry.value ^ (1 << (data_width - 1))) | 1
    if entry.matches(control_key):
        raise SimulationError("control key unexpectedly matches the entry")

    cell.write_enable = True
    cell.write_entry = entry
    # Keep a non-matching key on the compare port during the write so
    # the match line is demonstrably low before the real search (the
    # raw match line is only meaningful while a search is in flight;
    # the block's token pipeline provides that gating in normal use).
    cell.search_key = control_key
    update_latency = sim.run_until(
        lambda: cell.occupied and cell.stored_value == entry.value, 8
    )
    sim.step(2)
    if cell.match_now():
        raise SimulationError("cell matched a non-matching control key")

    cell.search_key = entry.value
    search_latency = sim.run_until(lambda: cell.match_now(), 8)

    return CellReport(
        cam_type=cam_type,
        data_width=data_width,
        update_latency=update_latency,
        search_latency=search_latency,
        resources=CamCell.resources(),
    )


# ----------------------------------------------------------------------
# block level (Table VI)
# ----------------------------------------------------------------------
def measure_block(
    block_size: int,
    data_width: int = 48,
    bus_width: int = 512,
    device: Device = ALVEO_U250,
) -> BlockReport:
    """Measure a standalone block of ``block_size`` cells."""
    config = BlockConfig(
        cell=CellConfig(cam_type=CamType.BINARY, data_width=data_width),
        block_size=block_size,
        bus_width=bus_width,
    )
    block = CamBlock(config)
    sim = Simulator(block)

    words = [binary_entry(v + 1, data_width) for v in range(config.words_per_beat)]
    block.issue_update(words[: min(len(words), block_size)])
    update_latency = sim.run_until(lambda: block.occupancy > 0, 8)

    target = words[-1].value if len(words) <= block_size else words[block_size - 1].value
    block.issue_search(target)
    search_latency = sim.run_until(
        lambda: block.result_valid and block.result.key == target, 12
    )
    if not block.result.hit:
        raise SimulationError("block search missed a stored word")

    frequency = block_frequency_mhz(block_size)
    resources = block_resources(block_size, bus_width, buffered=block.buffered)
    utilisation = device.utilisation(resources)
    words_per_beat = config.words_per_beat
    return BlockReport(
        size=block_size,
        update_latency=update_latency,
        search_latency=search_latency,
        update_throughput_mops=round(words_per_beat * frequency, 0),
        search_throughput_mops=round(frequency, 0),
        resources=resources,
        frequency_mhz=frequency,
        lut_utilisation=utilisation.get("lut", 0.0),
        dsp_utilisation=utilisation.get("dsp", 0.0),
    )


# ----------------------------------------------------------------------
# unit level (Tables VII and VIII)
# ----------------------------------------------------------------------
def unit_scaling(
    total_entries: int,
    block_size: int = 256,
    data_width: int = 48,
    bus_width: int = 512,
    device: Device = ALVEO_U250,
) -> UnitScalingReport:
    """Table VII row: resources and frequency for a unit size.

    Purely model-based (no simulation): these are Vivado quantities.
    """
    resources = unit_resources(total_entries, block_size, bus_width)
    utilisation = device.utilisation(resources)
    return UnitScalingReport(
        total_entries=total_entries,
        data_width=data_width,
        luts=resources.lut,
        dsps=resources.dsp,
        frequency_mhz=unit_frequency_mhz(total_entries, data_width),
        lut_utilisation=utilisation.get("lut", 0.0),
        dsp_utilisation=utilisation.get("dsp", 0.0),
    )


def measure_unit_performance(
    total_entries: int,
    block_size: int = 128,
    data_width: int = 32,
    bus_width: int = 512,
    session: Optional[CamSession] = None,
) -> UnitPerfReport:
    """Table VIII column: measured unit latencies plus model throughput.

    The paper's methodology: randomly update and search a single value
    in the unit and count cycles end-to-end. ``session`` may be passed
    to reuse an already-built unit (they are large).
    """
    if session is None:
        config = unit_for_entries(
            total_entries,
            block_size=block_size,
            data_width=data_width,
            bus_width=bus_width,
        )
        session = CamSession(config)
    unit = session.unit

    probe = (0x5A5A5A5A >> max(0, 32 - data_width)) | 1
    unit.issue_update([binary_entry(probe, data_width)])
    update_latency = session.sim.run_until(lambda: unit.update_done, 16)

    unit.issue_search([probe])
    search_latency = session.sim.run_until(
        lambda: unit.search_output is not None, 16
    )
    out = unit.search_output
    if not out or not out[0].hit:
        raise SimulationError("unit search missed the stored probe value")

    frequency = unit_frequency_mhz(total_entries, data_width)
    return UnitPerfReport(
        total_entries=total_entries,
        data_width=data_width,
        update_latency=update_latency,
        search_latency=search_latency,
        update_throughput_mops=update_throughput_mops(
            total_entries, data_width, bus_width
        ),
        search_throughput_mops=search_throughput_mops(total_entries, data_width),
        frequency_mhz=frequency,
    )


def our_survey_row(device: Device = ALVEO_U250) -> Dict[str, object]:
    """Our design's Table I row at maximum configuration (9728 x 48).

    Latencies use the configuration's measured values (update 6, search
    8 at this size -- verified by the Table VIII bench); resources come
    from the calibrated model.
    """
    total_entries = 9728
    resources = unit_resources(total_entries, block_size=256, bus_width=512)
    config = unit_for_entries(total_entries, block_size=256, data_width=48)
    return {
        "name": "Ours",
        "category": "DSP",
        "platform": device.name,
        "entries": total_entries,
        "width": 48,
        "frequency_mhz": unit_frequency_mhz(total_entries, 48),
        "lut": resources.lut + 26_934,  # system shell/interface logic share
        "bram": resources.bram,
        "dsp": resources.dsp,
        "update_latency": config.update_latency,
        "search_latency": config.search_latency,
    }
