"""Occupancy and balance introspection for CAM units.

A CAM embedded in an accelerator is managed blind -- the kernel only
sees update acknowledgements and search results. This module provides
the observability layer a system integrator needs: per-block fill,
per-group balance, invalidation holes from delete-by-content, and a
utilisation summary, all read from the golden-state side of the models
(no simulation cycles consumed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.unit import CamUnit


@dataclass(frozen=True)
class BlockStats:
    """One block's occupancy picture."""

    block_id: int
    group: int
    size: int
    fill: int
    live: int

    @property
    def holes(self) -> int:
        """Cells consumed but invalidated by delete-by-content."""
        return self.fill - self.live

    @property
    def utilisation(self) -> float:
        return self.fill / self.size if self.size else 0.0


@dataclass(frozen=True)
class UnitStats:
    """Whole-unit occupancy summary."""

    total_cells: int
    num_groups: int
    blocks: List[BlockStats]

    @property
    def consumed_cells(self) -> int:
        return sum(block.fill for block in self.blocks)

    @property
    def live_cells(self) -> int:
        return sum(block.live for block in self.blocks)

    @property
    def holes(self) -> int:
        return self.consumed_cells - self.live_cells

    @property
    def utilisation(self) -> float:
        return self.consumed_cells / self.total_cells if self.total_cells else 0.0

    def group_fill(self) -> Dict[int, int]:
        """Consumed cells per group."""
        out: Dict[int, int] = {}
        for block in self.blocks:
            out[block.group] = out.get(block.group, 0) + block.fill
        return out

    @property
    def balanced(self) -> bool:
        """True when every group holds the same amount of content.

        In replicated mode this is an invariant (updates mirror into
        every group); a False here indicates a desynchronised unit.
        """
        fills = set(self.group_fill().values())
        return len(fills) <= 1

    def render(self) -> str:
        """Human-readable occupancy report."""
        lines = [
            f"CAM unit: {self.consumed_cells}/{self.total_cells} cells "
            f"consumed ({self.utilisation:.1%}), {self.live_cells} live, "
            f"{self.holes} holes, {self.num_groups} groups "
            f"({'balanced' if self.balanced else 'UNBALANCED'})"
        ]
        for block in self.blocks:
            bar_width = 24
            filled = int(round(block.utilisation * bar_width))
            bar = "#" * filled + "." * (bar_width - filled)
            lines.append(
                f"  block {block.block_id:3d} (group {block.group}): "
                f"[{bar}] {block.fill:4d}/{block.size}"
                + (f"  ({block.holes} holes)" if block.holes else "")
            )
        return "\n".join(lines)


def collect_stats(unit: CamUnit) -> UnitStats:
    """Snapshot a unit's occupancy (golden state; zero cycles)."""
    blocks = [
        BlockStats(
            block_id=block.block_id,
            group=unit.table.group_of(block.block_id),
            size=block.size,
            fill=block.occupancy,
            live=block.live_entries,
        )
        for block in unit.blocks
    ]
    return UnitStats(
        total_cells=unit.total_entries,
        num_groups=unit.num_groups,
        blocks=blocks,
    )
