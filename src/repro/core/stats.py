"""Occupancy and balance introspection for CAM units.

A CAM embedded in an accelerator is managed blind -- the kernel only
sees update acknowledgements and search results. This module provides
the observability layer a system integrator needs: per-block fill,
per-group balance, invalidation holes from delete-by-content, and a
utilisation summary, all read from the golden-state side of the models
(no simulation cycles consumed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs
from repro.core.unit import CamUnit


@dataclass(frozen=True)
class BlockStats:
    """One block's occupancy picture."""

    block_id: int
    group: int
    size: int
    fill: int
    live: int

    @property
    def holes(self) -> int:
        """Cells consumed but invalidated by delete-by-content."""
        return self.fill - self.live

    @property
    def utilisation(self) -> float:
        return self.fill / self.size if self.size else 0.0


@dataclass(frozen=True)
class UnitStats:
    """Whole-unit occupancy summary."""

    total_cells: int
    num_groups: int
    blocks: List[BlockStats]

    @property
    def consumed_cells(self) -> int:
        return sum(block.fill for block in self.blocks)

    @property
    def live_cells(self) -> int:
        return sum(block.live for block in self.blocks)

    @property
    def holes(self) -> int:
        return self.consumed_cells - self.live_cells

    @property
    def utilisation(self) -> float:
        return self.consumed_cells / self.total_cells if self.total_cells else 0.0

    def group_fill(self) -> Dict[int, int]:
        """Consumed cells per group."""
        out: Dict[int, int] = {}
        for block in self.blocks:
            out[block.group] = out.get(block.group, 0) + block.fill
        return out

    @property
    def balanced(self) -> bool:
        """True when every group holds the same amount of content.

        In replicated mode this is an invariant (updates mirror into
        every group); a False here indicates a desynchronised unit.
        """
        fills = set(self.group_fill().values())
        return len(fills) <= 1

    def render(self) -> str:
        """Human-readable occupancy report."""
        lines = [
            f"CAM unit: {self.consumed_cells}/{self.total_cells} cells "
            f"consumed ({self.utilisation:.1%}), {self.live_cells} live, "
            f"{self.holes} holes, {self.num_groups} groups "
            f"({'balanced' if self.balanced else 'UNBALANCED'})"
        ]
        for block in self.blocks:
            bar_width = 24
            filled = int(round(block.utilisation * bar_width))
            bar = "#" * filled + "." * (bar_width - filled)
            lines.append(
                f"  block {block.block_id:3d} (group {block.group}): "
                f"[{bar}] {block.fill:4d}/{block.size}"
                + (f"  ({block.holes} holes)" if block.holes else "")
            )
        return "\n".join(lines)


def publish_stats(
    stats: UnitStats,
    registry: Optional["obs.MetricsRegistry"] = None,
) -> None:
    """Register a :class:`UnitStats` snapshot as occupancy gauges.

    Writes into ``registry`` (default: the global :func:`repro.obs.metrics`
    registry) unconditionally -- publishing a snapshot is an explicit
    request, not a hot path, so it works even while telemetry is
    disabled. This is the single code path ``repro metrics`` and the
    manifests use to report occupancy/holes/utilisation.
    """
    reg = registry if registry is not None else obs.metrics()
    reg.gauge("cam_unit_cells_total",
              help="total CAM cells in the unit").set(stats.total_cells)
    reg.gauge("cam_unit_groups",
              help="current runtime group count M").set(stats.num_groups)
    reg.gauge("cam_unit_consumed_cells",
              help="cells consumed by stored or deleted entries").set(
                  stats.consumed_cells)
    reg.gauge("cam_unit_live_cells",
              help="cells holding live (searchable) entries").set(
                  stats.live_cells)
    reg.gauge("cam_unit_holes",
              help="cells invalidated by delete-by-content").set(stats.holes)
    reg.gauge("cam_unit_utilisation",
              help="consumed fraction of the unit's cells").set(
                  stats.utilisation)
    reg.gauge("cam_unit_balanced",
              help="1 when every group holds the same amount of content").set(
                  1 if stats.balanced else 0)
    fill_gauge = reg.gauge("cam_group_fill_cells",
                           help="consumed cells per logical group")
    for group, fill in sorted(stats.group_fill().items()):
        fill_gauge.set(fill, group=group)
    block_gauge = reg.gauge("cam_block_fill_cells",
                            help="consumed cells per block")
    for block in stats.blocks:
        block_gauge.set(block.fill, block=block.block_id, group=block.group)


def collect_stats(unit: CamUnit) -> UnitStats:
    """Snapshot a unit's occupancy (golden state; zero cycles)."""
    blocks = [
        BlockStats(
            block_id=block.block_id,
            group=unit.table.group_of(block.block_id),
            size=block.size,
            fill=block.occupancy,
            live=block.live_entries,
        )
        for block in unit.blocks
    ]
    return UnitStats(
        total_cells=unit.total_entries,
        num_groups=unit.num_groups,
        blocks=blocks,
    )
