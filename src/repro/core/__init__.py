"""The paper's primary contribution: the configurable DSP-based CAM.

Public surface:

- configuration: :class:`CellConfig`, :class:`BlockConfig`,
  :class:`UnitConfig`, :func:`unit_for_entries` (Table III),
- entry construction: :func:`binary_entry`, :func:`ternary_entry`,
  :func:`ternary_entry_from_pattern`, :func:`range_entry` (Table II),
- hardware models: :class:`CamCell`, :class:`CamBlock`,
  :class:`CamUnit` (figures 2-4),
- the transaction API: :class:`CamSession`,
- the golden model: :class:`ReferenceCam`,
- measurement: :func:`measure_cell`, :func:`measure_block`,
  :func:`unit_scaling`, :func:`measure_unit_performance` (section IV).
"""

from repro.core.batch import (
    ENGINES,
    AuditDivergence,
    AuditReport,
    AuditSession,
    BatchSession,
    open_session,
    session_class_for,
)
from repro.core.analysis import (
    BlockReport,
    CellReport,
    UnitPerfReport,
    UnitScalingReport,
    measure_block,
    measure_cell,
    measure_unit_performance,
    our_survey_row,
    unit_scaling,
)
from repro.core.block import CamBlock
from repro.core.cell import CamCell
from repro.core.config import (
    BUFFER_BLOCK_THRESHOLD,
    BUFFER_UNIT_THRESHOLD,
    BlockConfig,
    CellConfig,
    UnitConfig,
    unit_for_entries,
)
from repro.core.encoder import ResultEncoder, pack_match_bits
from repro.core.group import Allocation, BlockAddressController
from repro.core.mask import (
    CamEntry,
    binary_entry,
    entry_for,
    range_entry,
    ternary_entry,
    ternary_entry_from_pattern,
    width_mask,
)
from repro.core.reference import ReferenceCam
from repro.core.routing import PostRouter, RoutingCompute, RoutingTable
from repro.core.session import CamSession, SearchStats, UpdateStats
from repro.core.stats import BlockStats, UnitStats, collect_stats, publish_stats
from repro.core.types import (
    CamBackend,
    CamStore,
    CamType,
    Encoding,
    OpKind,
    SearchResult,
    UpdateReceipt,
)
from repro.core.unit import CamUnit
from repro.core.verification import (
    CheckReport,
    Divergence,
    ThreeWayReport,
    check_equivalence,
    check_three_way,
)
from repro.core.wide import WideCamSession, WideEntry, wide_binary, wide_ternary

__all__ = [
    "Allocation",
    "AuditDivergence",
    "AuditReport",
    "AuditSession",
    "BatchSession",
    "ENGINES",
    "open_session",
    "session_class_for",
    "BUFFER_BLOCK_THRESHOLD",
    "BUFFER_UNIT_THRESHOLD",
    "BlockAddressController",
    "BlockConfig",
    "BlockReport",
    "BlockStats",
    "CamBackend",
    "CamBlock",
    "CamCell",
    "CamEntry",
    "CamSession",
    "CamStore",
    "CamType",
    "CamUnit",
    "CellConfig",
    "CellReport",
    "CheckReport",
    "Divergence",
    "check_equivalence",
    "Encoding",
    "OpKind",
    "PostRouter",
    "ReferenceCam",
    "ResultEncoder",
    "RoutingCompute",
    "RoutingTable",
    "SearchResult",
    "SearchStats",
    "ThreeWayReport",
    "check_three_way",
    "UnitConfig",
    "UnitPerfReport",
    "UnitStats",
    "UnitScalingReport",
    "UpdateReceipt",
    "UpdateStats",
    "WideCamSession",
    "WideEntry",
    "wide_binary",
    "wide_ternary",
    "binary_entry",
    "collect_stats",
    "entry_for",
    "measure_block",
    "measure_cell",
    "measure_unit_performance",
    "our_survey_row",
    "pack_match_bits",
    "publish_stats",
    "range_entry",
    "ternary_entry",
    "ternary_entry_from_pattern",
    "unit_for_entries",
    "unit_scaling",
    "width_mask",
]
