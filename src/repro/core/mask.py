"""MASK semantics for the three CAM types (paper Table II).

A CAM entry is a ``(value, mask)`` pair where mask bit 1 means *ignore
this bit during comparison* -- the DSP48E2 pattern-detector convention.
Bits above the configured data width are always masked out ("the mask is
also used for the data bit width control").

- **BCAM**: all data bits compared; mask covers only the unused width.
- **TCAM**: "don't care" positions are additionally masked.
- **RMCAM**: an aligned power-of-two range ``[base, base + 2^k)`` is
  encoded by masking the low ``k`` bits; the paper notes the DSP mask
  can only express ranges whose extent and alignment are powers of two,
  and :func:`range_entry` enforces exactly that restriction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsp.primitives import DSP_WIDTH, check_fits, is_power_of_two, mask_for
from repro.errors import MaskError


def width_mask(data_width: int) -> int:
    """Mask (ignore) every bit at or above ``data_width``."""
    if not 1 <= data_width <= DSP_WIDTH:
        raise MaskError(f"data width must be in 1..{DSP_WIDTH}, got {data_width}")
    return mask_for(DSP_WIDTH) ^ mask_for(data_width)


@dataclass(frozen=True)
class CamEntry:
    """One stored CAM word: a value plus its ignore-mask.

    ``mask`` always includes the unused-width bits; use the
    constructors (:func:`binary_entry`, :func:`ternary_entry`,
    :func:`range_entry`) rather than building instances by hand.
    """

    value: int
    mask: int
    width: int

    def matches(self, key: int) -> bool:
        """Golden-model comparison: masked equality against ``key``."""
        full = mask_for(DSP_WIDTH)
        return ((self.value ^ key) & ~self.mask & full) == 0

    @property
    def care_bits(self) -> int:
        """Bit positions actually compared (within the data width)."""
        return ~self.mask & mask_for(self.width)


def binary_entry(value: int, data_width: int) -> CamEntry:
    """Exact-match (BCAM) entry: every data bit is compared."""
    check_fits(value, data_width, "BCAM value")
    return CamEntry(value=value, mask=width_mask(data_width), width=data_width)


def ternary_entry(value: int, dont_care: int, data_width: int) -> CamEntry:
    """TCAM entry: bits set in ``dont_care`` match anything."""
    check_fits(value, data_width, "TCAM value")
    check_fits(dont_care, data_width, "TCAM don't-care mask")
    return CamEntry(
        value=value,
        mask=width_mask(data_width) | dont_care,
        width=data_width,
    )


def ternary_entry_from_pattern(pattern: str, data_width: int) -> CamEntry:
    """TCAM entry from a string like ``"10XX1"`` (MSB first).

    Characters: ``0``/``1`` are compared bits, ``x``/``X`` are don't
    cares, ``_`` is an ignored separator.
    """
    cleaned = pattern.replace("_", "")
    if not cleaned:
        raise MaskError("empty TCAM pattern")
    if len(cleaned) > data_width:
        raise MaskError(
            f"pattern {pattern!r} is wider ({len(cleaned)}) than the data "
            f"width ({data_width})"
        )
    value = 0
    dont_care = 0
    for char in cleaned:
        value <<= 1
        dont_care <<= 1
        if char == "1":
            value |= 1
        elif char in ("x", "X"):
            dont_care |= 1
        elif char != "0":
            raise MaskError(f"invalid TCAM pattern character {char!r}")
    return ternary_entry(value, dont_care, data_width)


def range_entry(start: int, end: int, data_width: int) -> CamEntry:
    """RMCAM entry matching keys in the inclusive range [start, end].

    The hardware restriction (paper section III-A): the range extent
    must be a power of two and the start must be aligned to it, because
    the match is expressed purely by masking low bits.
    """
    check_fits(start, data_width, "range start")
    check_fits(end, data_width, "range end")
    if end < start:
        raise MaskError(f"range end ({end}) below start ({start})")
    extent = end - start + 1
    if not is_power_of_two(extent):
        raise MaskError(
            f"range [{start}, {end}] has extent {extent}, which is not a "
            "power of two; the DSP MASK cannot express it"
        )
    if start % extent:
        raise MaskError(
            f"range start {start} is not aligned to the range extent {extent}"
        )
    low_bits = extent.bit_length() - 1
    return CamEntry(
        value=start,
        mask=width_mask(data_width) | mask_for(low_bits),
        width=data_width,
    )


def entry_for(cam_type, data_width: int, *args) -> CamEntry:
    """Dispatch an entry constructor by :class:`repro.core.CamType`."""
    from repro.core.types import CamType

    if cam_type is CamType.BINARY:
        (value,) = args
        return binary_entry(value, data_width)
    if cam_type is CamType.TERNARY:
        value, dont_care = args
        return ternary_entry(value, dont_care, data_width)
    if cam_type is CamType.RANGE:
        start, end = args
        return range_entry(start, end, data_width)
    raise MaskError(f"unknown CAM type {cam_type!r}")
