"""Golden (non-cycle) reference model of the CAM semantics.

Used by the property-based tests: any sequence of updates and searches
applied both to :class:`repro.core.CamSession` and to
:class:`ReferenceCam` must produce identical hit/address answers. The
reference is deliberately the most boring possible implementation -- a
list scanned in insertion order -- because the hardware's content
address equals insertion order (sequential fill within a block,
round-robin across the blocks of a group).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.mask import CamEntry
from repro.core.types import Encoding, SearchResult
from repro.errors import CapacityError


class ReferenceCam:
    """List-backed CAM with the paper's priority-match semantics.

    Deleted entries become ``None`` holes: addresses of surviving
    entries never shift and holes are only reclaimed by :meth:`reset`,
    mirroring the hardware's invalidate-by-content behaviour.  Conforms
    to the minimal :class:`repro.core.CamStore` protocol (not the full
    :class:`repro.core.CamBackend` engine surface).
    """

    def __init__(self, capacity: int, encoding: Encoding = Encoding.PRIORITY) -> None:
        if capacity < 1:
            raise CapacityError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.encoding = encoding
        self._entries: List[Optional[CamEntry]] = []

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def entries(self) -> List[CamEntry]:
        return list(self._entries)

    # ------------------------------------------------------------------
    def update(self, words: Sequence[CamEntry]) -> None:
        """Append entries in order (the hardware fill order)."""
        words = list(words)
        if len(self._entries) + len(words) > self.capacity:
            raise CapacityError(
                f"reference CAM overflow: {len(self._entries)} + "
                f"{len(words)} > {self.capacity}"
            )
        self._entries.extend(words)

    def reset(self) -> None:
        self._entries.clear()

    def search(self, key: int) -> SearchResult:
        """Match ``key`` against every live entry; build the full result."""
        vector = 0
        for address, entry in enumerate(self._entries):
            if entry is not None and entry.matches(key):
                vector |= 1 << address
        return SearchResult.from_vector(key, vector, self.encoding)

    def delete(self, key: int) -> SearchResult:
        """Invalidate every entry matching ``key``; return what matched."""
        result = self.search(key)
        for address, entry in enumerate(self._entries):
            if entry is not None and entry.matches(key):
                self._entries[address] = None
        return result

    def search_many(self, keys: Sequence[int]) -> List[SearchResult]:
        return [self.search(key) for key in keys]

    def first_match(self, key: int) -> Optional[int]:
        """Address of the first matching entry, or None."""
        return self.search(key).address

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self):
        """Capture content (holes included) as a
        :class:`~repro.service.snapshot.CamSnapshot`."""
        from repro.service.snapshot import CamSnapshot, SnapshotEntry

        return CamSnapshot(
            kind="reference",
            meta={"capacity": self.capacity,
                  "encoding": self.encoding.value},
            groups=[[SnapshotEntry.from_entry(entry)
                     for entry in self._entries]],
        )

    def restore(self, snapshot, data_width: int = 48) -> None:
        """Replace content with a snapshot's slots.

        Accepts ``reference`` snapshots and single-group ``unit``
        snapshots interchangeably (the reference is the golden model
        the unit engines are proven against). ``data_width`` sizes the
        rebuilt entries when the snapshot does not carry one.
        """
        from repro.errors import SnapshotError

        if snapshot.kind not in ("reference", "unit"):
            raise SnapshotError(
                f"cannot restore a {snapshot.kind!r} snapshot into a "
                "ReferenceCam"
            )
        if len(snapshot.groups) != 1:
            raise SnapshotError(
                f"ReferenceCam is single-group; snapshot carries "
                f"{len(snapshot.groups)} entry lists"
            )
        slots = snapshot.groups[0]
        if len(slots) > self.capacity:
            raise SnapshotError(
                f"snapshot holds {len(slots)} slots, reference capacity "
                f"is {self.capacity}"
            )
        width = int(snapshot.meta.get("data_width", data_width))
        self._entries = [slot.to_entry(width) for slot in slots]
