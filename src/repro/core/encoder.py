"""Result encoders for the CAM block output (Table III "Result Encoding").

The encoder is combinational logic that condenses the per-cell match
bits into a bus word; the block registers its output (and optionally
buffers it once more for timing). Four schemes are provided; the
triangle-counting accelerator uses PRIORITY, set-intersection style
workloads can use COUNT.
"""

from __future__ import annotations

from typing import List

from repro.core.types import Encoding, SearchResult
from repro.errors import ConfigError


def pack_match_bits(bits: List[bool]) -> int:
    """Fold a list of per-cell match booleans into a bit vector."""
    vector = 0
    for index, bit in enumerate(bits):
        if bit:
            vector |= 1 << index
    return vector


class ResultEncoder:
    """Combinational result encoder for one CAM block.

    Parameters
    ----------
    encoding:
        The output scheme; see :class:`repro.core.types.Encoding`.
    size:
        Number of cells in the block (determines address width).
    """

    def __init__(self, encoding: Encoding, size: int) -> None:
        if not isinstance(encoding, Encoding):
            raise ConfigError(f"encoding must be an Encoding, got {encoding!r}")
        if size < 1:
            raise ConfigError(f"encoder size must be >= 1, got {size}")
        self.encoding = encoding
        self.size = size

    def encode(self, key: int, match_bits: List[bool]) -> SearchResult:
        """Build the :class:`SearchResult` for one search."""
        if len(match_bits) != self.size:
            raise ConfigError(
                f"expected {self.size} match bits, got {len(match_bits)}"
            )
        vector = pack_match_bits(match_bits)
        return SearchResult.from_vector(key, vector, self.encoding)

    def bus_value(self, result: SearchResult) -> int:
        """Serialise a result for the block output bus."""
        return result.encoded(self.size)

    @property
    def output_width(self) -> int:
        """Width in bits of the encoded output."""
        if self.encoding is Encoding.ONE_HOT:
            return self.size
        address_bits = max(1, (self.size - 1).bit_length())
        if self.encoding is Encoding.COUNT:
            return address_bits + 1
        if self.encoding is Encoding.PRIORITY:
            return address_bits + 1  # address + hit flag
        return address_bits + 2  # BINARY: address + hit + multi-match
