"""Self-service equivalence checking for arbitrary CAM configurations.

The test suite proves the shipped configurations against the golden
model; a downstream user who builds a *custom* configuration (unusual
widths, encodings, group counts) can prove theirs the same way:

    report = check_equivalence(my_config, operations=400, seed=7)
    assert report.passed, report.summary()

The checker drives a random-but-reproducible interleaving of updates,
searches, deletes and resets against both the cycle-accurate
:class:`CamSession` and the :class:`ReferenceCam`, comparing every
result bit for bit. :func:`check_three_way` extends the same workload
to the vectorized batch engine (:mod:`repro.core.batch`), proving the
fast path equivalent to *both* the register-accurate model (results
and cycle counts) and the golden reference (results) in one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import UnitConfig
from repro.core.mask import (
    binary_entry,
    range_entry,
    ternary_entry,
)
from repro.core.reference import ReferenceCam
from repro.core.session import CamSession
from repro.core.types import CamType
from repro.dsp.primitives import mask_for
from repro.errors import ConfigError


@dataclass
class Divergence:
    """One observed mismatch between hardware and reference."""

    operation: int
    kind: str
    key: int
    hardware: str
    reference: str


@dataclass
class CheckReport:
    """Outcome of one equivalence run."""

    operations: int
    searches: int
    updates: int
    deletes: int
    resets: int
    simulated_cycles: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        verdict = "PASS" if self.passed else (
            f"FAIL ({len(self.divergences)} divergences, first: "
            f"{self.divergences[0]}"
        )
        return (
            f"{verdict}: {self.operations} ops "
            f"({self.updates} updates, {self.searches} searches, "
            f"{self.deletes} deletes, {self.resets} resets) in "
            f"{self.simulated_cycles} cycles"
        )


def _random_entry(rng: np.random.Generator, cam_type: CamType, width: int):
    value = int(rng.integers(0, 1 << width))
    if cam_type is CamType.BINARY:
        return binary_entry(value, width)
    if cam_type is CamType.TERNARY:
        dont_care = int(rng.integers(0, 1 << width))
        return ternary_entry(value & ~dont_care & mask_for(width),
                             dont_care, width)
    low_bits = int(rng.integers(0, width))
    extent = 1 << low_bits
    start = (value // extent) * extent
    return range_entry(start, start + extent - 1, width)


def check_equivalence(
    config: UnitConfig,
    operations: int = 200,
    seed: int = 0,
    session: Optional[CamSession] = None,
    engine: str = "cycle",
) -> CheckReport:
    """Drive a random workload against hardware and golden models.

    ``engine`` selects the execution engine under test ("cycle",
    "batch" or "audit"); the audit engine additionally self-checks
    against its cycle-accurate shadow while this checker compares it
    to the golden reference.
    """
    if operations < 1:
        raise ConfigError(f"operations must be >= 1, got {operations}")
    rng = np.random.default_rng(seed)
    if session is None:
        from repro.core.batch import open_session

        session = open_session(config, engine=engine)
    session.reset()
    capacity = session.capacity
    reference = ReferenceCam(capacity)
    cam_type = config.block.cell.cam_type
    width = config.data_width

    start_cycle = session.cycle
    report = CheckReport(operations=operations, searches=0, updates=0,
                         deletes=0, resets=0, simulated_cycles=0)

    def compare(index: int, kind: str, key: int, hardware, golden) -> None:
        if (hardware.hit, hardware.address, hardware.match_vector) != (
            golden.hit, golden.address, golden.match_vector
        ):
            report.divergences.append(Divergence(
                operation=index,
                kind=kind,
                key=key,
                hardware=f"hit={hardware.hit} addr={hardware.address} "
                         f"vec={hardware.match_vector:#x}",
                reference=f"hit={golden.hit} addr={golden.address} "
                          f"vec={golden.match_vector:#x}",
            ))

    for index in range(operations):
        free = capacity - reference.occupancy
        roll = rng.random()
        if roll < 0.35 and free > 0:
            batch = min(free, int(rng.integers(1, 5)))
            entries = [_random_entry(rng, cam_type, width)
                       for _ in range(batch)]
            session.update(entries)
            reference.update(entries)
            report.updates += 1
        elif roll < 0.85:
            key = int(rng.integers(0, 1 << width))
            compare(index, "search", key,
                    session.search_one(key), reference.search(key))
            report.searches += 1
        elif roll < 0.95 and reference.occupancy:
            key = int(rng.integers(0, 1 << width))
            compare(index, "delete", key,
                    session.delete(key), reference.delete(key))
            report.deletes += 1
        else:
            session.reset()
            reference.reset()
            report.resets += 1

    report.simulated_cycles = session.cycle - start_cycle
    return report


@dataclass
class ThreeWayReport:
    """Outcome of one batch/cycle/reference differential run."""

    operations: int
    searches: int
    updates: int
    deletes: int
    resets: int
    regroups: int
    simulated_cycles: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        verdict = "PASS" if self.passed else (
            f"FAIL ({len(self.divergences)} divergences, first: "
            f"{self.divergences[0]})"
        )
        return (
            f"{verdict}: {self.operations} ops "
            f"({self.updates} updates, {self.searches} searches, "
            f"{self.deletes} deletes, {self.resets} resets, "
            f"{self.regroups} regroups) in {self.simulated_cycles} cycles"
        )


def check_three_way(
    config: UnitConfig,
    operations: int = 120,
    seed: int = 0,
    regroup: bool = True,
) -> ThreeWayReport:
    """Drive one random workload through all three models at once.

    The cycle-accurate :class:`CamSession`, the vectorized
    :class:`~repro.core.batch.BatchSession` and the golden
    :class:`ReferenceCam` process the identical operation stream; every
    search/delete result is compared bit for bit across all three, and
    the two sessions' cycle counters must agree after every operation.
    This is the equivalence guarantee behind ``engine="batch"``.
    """
    from repro.core.batch import BatchSession

    if operations < 1:
        raise ConfigError(f"operations must be >= 1, got {operations}")
    rng = np.random.default_rng(seed)
    cycle_session = CamSession(config)
    batch_session = BatchSession(config)
    reference = ReferenceCam(cycle_session.capacity)
    cam_type = config.block.cell.cam_type
    width = config.data_width

    report = ThreeWayReport(operations=operations, searches=0, updates=0,
                            deletes=0, resets=0, regroups=0,
                            simulated_cycles=0)

    def fields(result):
        return (result.hit, result.address, result.match_vector,
                result.match_count)

    def compare(index: int, kind: str, key: int, cycle_r, batch_r,
                golden_r=None) -> None:
        if fields(cycle_r) != fields(batch_r):
            report.divergences.append(Divergence(
                operation=index, kind=f"{kind} (batch)", key=key,
                hardware=f"hit={cycle_r.hit} addr={cycle_r.address} "
                         f"vec={cycle_r.match_vector:#x}",
                reference=f"hit={batch_r.hit} addr={batch_r.address} "
                          f"vec={batch_r.match_vector:#x}",
            ))
        if golden_r is not None and fields(cycle_r) != fields(golden_r):
            report.divergences.append(Divergence(
                operation=index, kind=f"{kind} (golden)", key=key,
                hardware=f"hit={cycle_r.hit} addr={cycle_r.address} "
                         f"vec={cycle_r.match_vector:#x}",
                reference=f"hit={golden_r.hit} addr={golden_r.address} "
                          f"vec={golden_r.match_vector:#x}",
            ))

    def check_cycles(index: int, kind: str) -> None:
        if cycle_session.cycle != batch_session.cycle:
            report.divergences.append(Divergence(
                operation=index, kind=f"{kind} (cycles)", key=-1,
                hardware=f"cycle-engine at {cycle_session.cycle}",
                reference=f"batch-engine at {batch_session.cycle}",
            ))

    divisors = [d for d in range(1, config.num_blocks + 1)
                if config.num_blocks % d == 0]

    for index in range(operations):
        free = reference.capacity - reference.occupancy
        roll = rng.random()
        if roll < 0.35 and free > 0:
            batch = min(free, int(rng.integers(1, 5)))
            entries = [_random_entry(rng, cam_type, width)
                       for _ in range(batch)]
            cycle_stats = cycle_session.update(entries)
            batch_stats = batch_session.update(entries)
            reference.update(entries)
            if cycle_stats != batch_stats:
                report.divergences.append(Divergence(
                    operation=index, kind="update (stats)", key=-1,
                    hardware=str(cycle_stats), reference=str(batch_stats),
                ))
            report.updates += 1
        elif roll < 0.80:
            count = int(rng.integers(1, 2 * cycle_session.num_groups + 2))
            keys = [int(k) for k in rng.integers(0, 1 << width, count)]
            cycle_results = cycle_session.search(keys)
            batch_results = batch_session.search(keys)
            golden_results = reference.search_many(keys)
            for key, c_r, b_r, g_r in zip(keys, cycle_results,
                                          batch_results, golden_results):
                compare(index, "search", key, c_r, b_r, g_r)
            if cycle_session.last_search_stats != batch_session.last_search_stats:
                report.divergences.append(Divergence(
                    operation=index, kind="search (stats)", key=-1,
                    hardware=str(cycle_session.last_search_stats),
                    reference=str(batch_session.last_search_stats),
                ))
            report.searches += 1
        elif roll < 0.90 and reference.occupancy:
            key = int(rng.integers(0, 1 << width))
            compare(index, "delete", key,
                    cycle_session.delete(key), batch_session.delete(key),
                    reference.delete(key))
            report.deletes += 1
        elif roll < 0.95 and regroup and len(divisors) > 1:
            target = int(divisors[rng.integers(0, len(divisors))])
            cycle_session.set_groups(target)
            batch_session.set_groups(target)
            reference = ReferenceCam(cycle_session.capacity)
            report.regroups += 1
        else:
            cycle_session.reset()
            batch_session.reset()
            reference.reset()
            report.resets += 1
        check_cycles(index, "op")
        if cycle_session.occupancy != batch_session.occupancy:
            report.divergences.append(Divergence(
                operation=index, kind="occupancy", key=-1,
                hardware=str(cycle_session.occupancy),
                reference=str(batch_session.occupancy),
            ))

    report.simulated_cycles = cycle_session.cycle
    return report
