"""Self-service equivalence checking for arbitrary CAM configurations.

The test suite proves the shipped configurations against the golden
model; a downstream user who builds a *custom* configuration (unusual
widths, encodings, group counts) can prove theirs the same way:

    report = check_equivalence(my_config, operations=400, seed=7)
    assert report.passed, report.summary()

The checker drives a random-but-reproducible interleaving of updates,
searches, deletes and resets against both the cycle-accurate
:class:`CamSession` and the :class:`ReferenceCam`, comparing every
result bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import UnitConfig
from repro.core.mask import (
    binary_entry,
    range_entry,
    ternary_entry,
)
from repro.core.reference import ReferenceCam
from repro.core.session import CamSession
from repro.core.types import CamType
from repro.dsp.primitives import mask_for
from repro.errors import ConfigError


@dataclass
class Divergence:
    """One observed mismatch between hardware and reference."""

    operation: int
    kind: str
    key: int
    hardware: str
    reference: str


@dataclass
class CheckReport:
    """Outcome of one equivalence run."""

    operations: int
    searches: int
    updates: int
    deletes: int
    resets: int
    simulated_cycles: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        verdict = "PASS" if self.passed else (
            f"FAIL ({len(self.divergences)} divergences, first: "
            f"{self.divergences[0]}"
        )
        return (
            f"{verdict}: {self.operations} ops "
            f"({self.updates} updates, {self.searches} searches, "
            f"{self.deletes} deletes, {self.resets} resets) in "
            f"{self.simulated_cycles} cycles"
        )


def _random_entry(rng: np.random.Generator, cam_type: CamType, width: int):
    value = int(rng.integers(0, 1 << width))
    if cam_type is CamType.BINARY:
        return binary_entry(value, width)
    if cam_type is CamType.TERNARY:
        dont_care = int(rng.integers(0, 1 << width))
        return ternary_entry(value & ~dont_care & mask_for(width),
                             dont_care, width)
    low_bits = int(rng.integers(0, width))
    extent = 1 << low_bits
    start = (value // extent) * extent
    return range_entry(start, start + extent - 1, width)


def check_equivalence(
    config: UnitConfig,
    operations: int = 200,
    seed: int = 0,
    session: Optional[CamSession] = None,
) -> CheckReport:
    """Drive a random workload against hardware and golden models."""
    if operations < 1:
        raise ConfigError(f"operations must be >= 1, got {operations}")
    rng = np.random.default_rng(seed)
    session = session if session is not None else CamSession(config)
    session.reset()
    capacity = session.capacity
    reference = ReferenceCam(capacity)
    cam_type = config.block.cell.cam_type
    width = config.data_width

    start_cycle = session.cycle
    report = CheckReport(operations=operations, searches=0, updates=0,
                         deletes=0, resets=0, simulated_cycles=0)

    def compare(index: int, kind: str, key: int, hardware, golden) -> None:
        if (hardware.hit, hardware.address, hardware.match_vector) != (
            golden.hit, golden.address, golden.match_vector
        ):
            report.divergences.append(Divergence(
                operation=index,
                kind=kind,
                key=key,
                hardware=f"hit={hardware.hit} addr={hardware.address} "
                         f"vec={hardware.match_vector:#x}",
                reference=f"hit={golden.hit} addr={golden.address} "
                          f"vec={golden.match_vector:#x}",
            ))

    for index in range(operations):
        free = capacity - reference.occupancy
        roll = rng.random()
        if roll < 0.35 and free > 0:
            batch = min(free, int(rng.integers(1, 5)))
            entries = [_random_entry(rng, cam_type, width)
                       for _ in range(batch)]
            session.update(entries)
            reference.update(entries)
            report.updates += 1
        elif roll < 0.85:
            key = int(rng.integers(0, 1 << width))
            compare(index, "search", key,
                    session.search_one(key), reference.search(key))
            report.searches += 1
        elif roll < 0.95 and reference.occupancy:
            key = int(rng.integers(0, 1 << width))
            compare(index, "delete", key,
                    session.delete(key), reference.delete(key))
            report.deletes += 1
        else:
            session.reset()
            reference.reset()
            report.resets += 1

    report.simulated_cycles = session.cycle - start_cycle
    return report
