"""Shared types of the CAM core: CAM kinds, operations, results."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dsp.primitives import popcount


class CamType(enum.Enum):
    """The three CAM flavours the architecture can be configured as.

    All three use the same DSP cell datapath; only the MASK differs
    (paper Table II), which is why Table V reports identical cost and
    latency for each.
    """

    BINARY = "binary"
    TERNARY = "ternary"
    RANGE = "range"


class OpKind(enum.Enum):
    """Operations accepted on the CAM block/unit input bus."""

    UPDATE = "update"
    SEARCH = "search"
    RESET = "reset"
    CONFIGURE = "configure"


class Encoding(enum.Enum):
    """Result-encoding schemes of the block output encoder (Table III)."""

    #: Lowest matching cell address plus a hit flag (default).
    PRIORITY = "priority"
    #: Raw per-cell match bit vector.
    ONE_HOT = "one_hot"
    #: Binary address with a multi-match flag.
    BINARY = "binary"
    #: Number of matching cells (set-intersection friendly).
    COUNT = "count"


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one search operation.

    All derived views (first address, count, vector) are carried so
    that any encoder scheme can serialise the result onto the output
    bus via :meth:`encoded`.
    """

    key: int
    hit: bool
    address: Optional[int]
    match_vector: int
    match_count: int
    encoding: Encoding = Encoding.PRIORITY

    @classmethod
    def from_vector(
        cls, key: int, match_vector: int, encoding: Encoding = Encoding.PRIORITY
    ) -> "SearchResult":
        """Build a result from the raw per-cell match vector."""
        hit = match_vector != 0
        address = None
        if hit:
            address = (match_vector & -match_vector).bit_length() - 1
        return cls(
            key=key,
            hit=hit,
            address=address,
            match_vector=match_vector,
            match_count=popcount(match_vector),
            encoding=encoding,
        )

    def offset(self, base: int) -> "SearchResult":
        """Rebase cell-local addresses to unit-global addresses."""
        return SearchResult(
            key=self.key,
            hit=self.hit,
            address=None if self.address is None else self.address + base,
            match_vector=self.match_vector << base,
            match_count=self.match_count,
            encoding=self.encoding,
        )

    def encoded(self, size: int) -> int:
        """Serialise onto the output bus per the configured encoding."""
        if self.encoding is Encoding.ONE_HOT:
            return self.match_vector
        if self.encoding is Encoding.COUNT:
            return self.match_count
        address_bits = max(1, (max(size - 1, 1)).bit_length())
        hit_bit = 1 << address_bits
        if not self.hit:
            return 0
        if self.encoding is Encoding.PRIORITY:
            return hit_bit | (self.address or 0)
        # Encoding.BINARY: hit | multi-match flag | address.
        multi = 1 << (address_bits + 1) if self.match_count > 1 else 0
        return multi | hit_bit | (self.address or 0)


@dataclass(frozen=True)
class UpdateReceipt:
    """Outcome of one update beat: where each word was stored."""

    #: (block_id, cell_id) per stored word, in word order.
    locations: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)
    #: Number of words written by the beat.
    words_written: int = 0

    @classmethod
    def for_words(cls, locations: List[Tuple[int, int]]) -> "UpdateReceipt":
        return cls(locations=tuple(locations), words_written=len(locations))
