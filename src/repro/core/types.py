"""Shared types of the CAM core: CAM kinds, operations, results,
and the backend protocols every CAM implementation conforms to."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    Any,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.dsp.primitives import popcount


class CamType(enum.Enum):
    """The three CAM flavours the architecture can be configured as.

    All three use the same DSP cell datapath; only the MASK differs
    (paper Table II), which is why Table V reports identical cost and
    latency for each.
    """

    BINARY = "binary"
    TERNARY = "ternary"
    RANGE = "range"


class OpKind(enum.Enum):
    """Operations accepted on the CAM block/unit input bus."""

    UPDATE = "update"
    SEARCH = "search"
    RESET = "reset"
    CONFIGURE = "configure"


class Encoding(enum.Enum):
    """Result-encoding schemes of the block output encoder (Table III)."""

    #: Lowest matching cell address plus a hit flag (default).
    PRIORITY = "priority"
    #: Raw per-cell match bit vector.
    ONE_HOT = "one_hot"
    #: Binary address with a multi-match flag.
    BINARY = "binary"
    #: Number of matching cells (set-intersection friendly).
    COUNT = "count"


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one search operation.

    All derived views (first address, count, vector) are carried so
    that any encoder scheme can serialise the result onto the output
    bus via :meth:`encoded`.
    """

    key: int
    hit: bool
    address: Optional[int]
    match_vector: int
    match_count: int
    encoding: Encoding = Encoding.PRIORITY

    @classmethod
    def from_vector(
        cls, key: int, match_vector: int, encoding: Encoding = Encoding.PRIORITY
    ) -> "SearchResult":
        """Build a result from the raw per-cell match vector."""
        hit = match_vector != 0
        address = None
        if hit:
            address = (match_vector & -match_vector).bit_length() - 1
        return cls(
            key=key,
            hit=hit,
            address=address,
            match_vector=match_vector,
            match_count=popcount(match_vector),
            encoding=encoding,
        )

    def offset(self, base: int) -> "SearchResult":
        """Rebase cell-local addresses to unit-global addresses."""
        return SearchResult(
            key=self.key,
            hit=self.hit,
            address=None if self.address is None else self.address + base,
            match_vector=self.match_vector << base,
            match_count=self.match_count,
            encoding=self.encoding,
        )

    def encoded(self, size: int) -> int:
        """Serialise onto the output bus per the configured encoding."""
        if self.encoding is Encoding.ONE_HOT:
            return self.match_vector
        if self.encoding is Encoding.COUNT:
            return self.match_count
        address_bits = max(1, (max(size - 1, 1)).bit_length())
        hit_bit = 1 << address_bits
        if not self.hit:
            return 0
        if self.encoding is Encoding.PRIORITY:
            return hit_bit | (self.address or 0)
        # Encoding.BINARY: hit | multi-match flag | address.
        multi = 1 << (address_bits + 1) if self.match_count > 1 else 0
        return multi | hit_bit | (self.address or 0)


@runtime_checkable
class CamStore(Protocol):
    """Minimal content surface shared by every CAM model.

    This is the contract the golden :class:`~repro.core.ReferenceCam`
    satisfies: enough to fill a CAM, query it, wipe it, and carry its
    content across processes as a versioned snapshot.  Implementations
    are free to take richer signatures (the engines accept key batches
    where the reference takes one key); the protocol pins the *names*,
    which is what duck-typed call sites and the conformance suite in
    ``tests/core/test_backend_protocol.py`` rely on.

    Use ``isinstance(obj, CamStore)`` for runtime checks; ``issubclass``
    is unsupported because the protocol carries data members.
    """

    @property
    def capacity(self) -> int: ...

    @property
    def occupancy(self) -> int: ...

    def update(self, words: Sequence[Any], *args: Any, **kwargs: Any) -> Any: ...

    def search(self, *args: Any, **kwargs: Any) -> Any: ...

    def reset(self) -> None: ...

    def snapshot(self) -> Any: ...

    def restore(self, snapshot: Any, *args: Any, **kwargs: Any) -> None: ...


@runtime_checkable
class CamBackend(CamStore, Protocol):
    """Full engine surface that :class:`~repro.service.ShardedCam`,
    :class:`~repro.service.CamService`, :class:`~repro.service.ReplicaSet`
    and the :mod:`repro.apps` case studies program against.

    Everything constructed through :func:`repro.open_session` conforms:
    the cycle-accurate :class:`~repro.core.CamSession`, the vectorized
    :class:`~repro.core.BatchCamSession`, the differential audit
    session, the sharded facade itself, and replica sets -- which is
    what lets shards, replicas and single units substitute for each
    other behind the service layer.
    """

    @property
    def cycle(self) -> int: ...

    @property
    def num_groups(self) -> int: ...

    @property
    def engine_name(self) -> str: ...

    @property
    def search_latency(self) -> int: ...

    @property
    def update_latency(self) -> int: ...

    @property
    def words_per_beat(self) -> int: ...

    def search_one(self, key: int, group: Optional[int] = None) -> "SearchResult": ...

    def contains(self, key: int) -> bool: ...

    def delete(self, key: int) -> "SearchResult": ...

    def set_groups(self, num_groups: int) -> None: ...

    def idle(self, cycles: int = 1) -> None: ...

    def resources(self) -> Any: ...


@dataclass(frozen=True)
class UpdateReceipt:
    """Outcome of one update beat: where each word was stored."""

    #: (block_id, cell_id) per stored word, in word order.
    locations: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)
    #: Number of words written by the beat.
    words_written: int = 0

    @classmethod
    def for_words(cls, locations: List[Tuple[int, int]]) -> "UpdateReceipt":
        return cls(locations=tuple(locations), words_written=len(locations))
