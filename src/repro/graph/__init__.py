"""Graph substrate: CSR graphs, generators, datasets, triangle counts."""

from repro.graph.csr import CSRGraph, OrientedCSR
from repro.graph.datasets import (
    DATASETS,
    DatasetSpec,
    StandIn,
    dataset_names,
    get_dataset,
)
from repro.graph.generators import (
    erdos_renyi,
    power_law,
    preferential_attachment,
    road_network,
)
from repro.graph.io import load_edge_list, save_edge_list
from repro.graph.metrics import (
    DegreeProfile,
    degree_profile,
    estimate_tail_exponent,
    gini_coefficient,
    profile_report,
    sample_clustering_coefficient,
)
from repro.graph.triangles import (
    clustering_summary,
    count_triangles,
    count_triangles_matrix,
    per_edge_list_lengths,
)

__all__ = [
    "CSRGraph",
    "DATASETS",
    "DatasetSpec",
    "DegreeProfile",
    "degree_profile",
    "estimate_tail_exponent",
    "gini_coefficient",
    "profile_report",
    "sample_clustering_coefficient",
    "OrientedCSR",
    "StandIn",
    "clustering_summary",
    "count_triangles",
    "count_triangles_matrix",
    "dataset_names",
    "erdos_renyi",
    "get_dataset",
    "load_edge_list",
    "per_edge_list_lengths",
    "power_law",
    "preferential_attachment",
    "road_network",
    "save_edge_list",
]
