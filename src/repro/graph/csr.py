"""Compressed Sparse Row graph container.

The case study's graphs are stored exactly as the accelerator consumes
them: a CSR offset/length view per vertex over a flat neighbour column
array (paper section V-B). The container is numpy-backed so the
per-edge cost model can vectorise over millions of edges.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.errors import DatasetError


class CSRGraph:
    """An undirected simple graph in CSR form with sorted adjacency."""

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        num_vertices: Optional[int] = None,
    ) -> "CSRGraph":
        """Build from an edge list; dedupes, drops self-loops, symmetrises."""
        array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                           dtype=np.int64)
        if array.size == 0:
            n = num_vertices or 0
            return cls(np.zeros(n + 1, dtype=np.int64),
                       np.empty(0, dtype=np.int64))
        if array.ndim != 2 or array.shape[1] != 2:
            raise DatasetError(
                f"edge array must have shape (m, 2), got {array.shape}"
            )
        if array.min() < 0:
            raise DatasetError("vertex ids must be non-negative")
        array = array[array[:, 0] != array[:, 1]]  # drop self loops
        if array.size == 0:
            n = int(num_vertices or 0)
            return cls(np.zeros(n + 1, dtype=np.int64),
                       np.empty(0, dtype=np.int64))
        lo = np.minimum(array[:, 0], array[:, 1])
        hi = np.maximum(array[:, 0], array[:, 1])
        stride = int(hi.max()) + 1
        canon = np.unique(lo * stride + hi)
        lo = canon // stride
        hi = canon % stride
        n = int(max(stride, num_vertices or 0))
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`DatasetError`."""
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise DatasetError("indptr/indices must be 1-D")
        if self.indptr.size == 0:
            raise DatasetError("indptr must have at least one element")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise DatasetError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise DatasetError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_vertices
        ):
            raise DatasetError("neighbour index out of range")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Undirected edge count (each edge stored twice in CSR)."""
        return self.indices.size // 2

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def degree(self, vertex: int) -> int:
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def neighbors(self, vertex: int) -> np.ndarray:
        """Sorted neighbour view of one vertex."""
        return self.indices[self.indptr[vertex]:self.indptr[vertex + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return pos < nbrs.size and nbrs[pos] == v

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate each undirected edge once, as (low, high)."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All undirected edges once, shape (m, 2), low vertex first."""
        src = np.repeat(np.arange(self.num_vertices), self.degrees)
        mask = src < self.indices
        return np.column_stack([src[mask], self.indices[mask]])

    # ------------------------------------------------------------------
    # orientation (the forward/degree ordering used by triangle counting)
    # ------------------------------------------------------------------
    def oriented(self) -> "OrientedCSR":
        """Orient edges from lower (degree, id) to higher (degree, id).

        The standard forward orientation: each undirected edge becomes
        one directed edge toward the endpoint with the larger (degree,
        id) rank, which bounds out-degrees and makes the per-edge
        intersection count each triangle exactly once.
        """
        degrees = self.degrees
        rank = np.lexsort((np.arange(self.num_vertices), degrees))
        position = np.empty_like(rank)
        position[rank] = np.arange(self.num_vertices)

        src = np.repeat(np.arange(self.num_vertices), degrees)
        dst = self.indices
        forward = position[src] < position[dst]
        f_src, f_dst = src[forward], dst[forward]
        order = np.lexsort((position[f_dst], f_src))
        f_src, f_dst = f_src[order], f_dst[order]
        counts = np.bincount(f_src, minlength=self.num_vertices)
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return OrientedCSR(indptr, f_dst.astype(np.int64), position)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CSRGraph |V|={self.num_vertices} |E|={self.num_edges}>"
        )


class OrientedCSR:
    """Directed forward-oriented view produced by :meth:`CSRGraph.oriented`.

    Adjacency lists are sorted by the orientation rank, so two oriented
    lists can be merge-intersected directly -- exactly what both the
    merge baseline and the CAM accelerator consume.
    """

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, rank_position: np.ndarray
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.rank_position = rank_position

    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        return self.indices.size

    @property
    def out_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, vertex: int) -> np.ndarray:
        return self.indices[self.indptr[vertex]:self.indptr[vertex + 1]]

    def edge_endpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """(src, dst) arrays over every oriented edge."""
        src = np.repeat(np.arange(self.num_vertices), self.out_degrees)
        return src, self.indices
