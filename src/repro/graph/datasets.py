"""Registry of the Table IX graph datasets and their synthetic stand-ins.

The paper evaluates on ten SNAP graphs. The raw SNAP files are not
redistributable here, so each dataset carries (a) its published
statistics -- vertex/edge counts and the triangle count the paper
reports -- and (b) a deterministic synthetic generator whose structural
family matches (power-law social graph, road lattice, citation growth,
...). Stand-ins are scaled down by a recorded factor so the pure-Python
cost model stays laptop-fast; EXPERIMENTS.md reports both the scale and
the resulting numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import DatasetError
from repro.graph.csr import CSRGraph
from repro.graph import generators


@dataclass(frozen=True)
class DatasetSpec:
    """One Table IX dataset: published stats plus a stand-in recipe."""

    name: str
    kind: str  # social / copurchase / as / citation / road
    nodes: int
    edges: int
    #: Triangle count the paper reports (SNAP ground truth).
    triangles_published: int
    #: Paper's measured times (ms) -- CAM design and Vitis baseline.
    paper_time_cam_ms: float
    paper_time_baseline_ms: float
    #: Builds the stand-in at a given vertex count.
    builder: Callable[[int, int], CSRGraph]

    @property
    def paper_speedup(self) -> float:
        return self.paper_time_baseline_ms / self.paper_time_cam_ms

    @property
    def avg_degree(self) -> float:
        return 2.0 * self.edges / self.nodes

    def standin(
        self, max_edges: int = 120_000, seed: Optional[int] = None
    ) -> "StandIn":
        """Generate the synthetic stand-in, scaled to ``max_edges``."""
        scale = min(1.0, max_edges / self.edges)
        nodes = max(64, int(self.nodes * scale))
        graph = self.builder(nodes, 0 if seed is None else seed)
        return StandIn(spec=self, graph=graph, scale=scale)


@dataclass(frozen=True)
class StandIn:
    """A generated stand-in graph plus its provenance."""

    spec: DatasetSpec
    graph: CSRGraph
    scale: float


def _social(
    avg_degree: float,
    triangle_fraction: float,
    exponent: float = 2.2,
    hub_fraction: float = 0.25,
):
    """Power-law builder; ``hub_fraction`` = real max-degree / real nodes,
    so a scaled stand-in keeps the original's hub-to-graph ratio."""

    def build(nodes: int, seed: int) -> CSRGraph:
        # Wedge closing adds ~triangle_fraction more edges afterwards;
        # shrink the base so the final edge count tracks the target.
        edges = int(nodes * avg_degree / 2 / (1.0 + triangle_fraction))
        return generators.power_law(
            nodes, edges, exponent=exponent,
            triangle_fraction=triangle_fraction,
            max_degree=max(8, int(nodes * hub_fraction)),
            seed=seed,
        )
    return build


def _as_topology(hub_fraction: float = 0.225):
    def build(nodes: int, seed: int) -> CSRGraph:
        # AS graphs: extreme hubs, tree-like periphery.
        return generators.power_law(
            nodes, int(nodes * 2.05), exponent=1.9,
            triangle_fraction=0.05,
            max_degree=max(8, int(nodes * hub_fraction)),
            seed=seed,
        )
    return build


def _citation(edges_per_vertex: int):
    def build(nodes: int, seed: int) -> CSRGraph:
        return generators.preferential_attachment(
            nodes, edges_per_vertex, seed=seed
        )
    return build


def _road():
    def build(nodes: int, seed: int) -> CSRGraph:
        return generators.road_network(nodes, seed=seed)
    return build


#: The ten Table IX datasets, in the paper's row order.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("facebook_combined", "social", 4_039, 88_234,
                    1_612_010, 5.054, 18.7,
                    _social(43.7, 0.5, hub_fraction=1_045 / 4_039)),
        DatasetSpec("amazon0302", "copurchase", 262_111, 899_792,
                    717_719, 23.086, 89.5,
                    _social(6.9, 0.25, exponent=2.9,
                            hub_fraction=420 / 262_111)),
        DatasetSpec("amazon0601", "copurchase", 403_394, 2_443_408,
                    3_986_507, 71.210, 230.3,
                    _social(12.1, 0.3, exponent=2.7,
                            hub_fraction=2_752 / 403_394)),
        DatasetSpec("as20000102", "as", 6_474, 13_233,
                    6_584, 0.422, 7.4, _as_topology(1_458 / 6_474)),
        # cit-Patents is an unusually flat citation graph (max degree 793
        # over 3.7M vertices), which is why its paper speedup is the
        # lowest non-road row: a light-tailed configuration model
        # matches it better than preferential attachment.
        DatasetSpec("cit-Patents", "citation", 3_774_768, 16_518_948,
                    7_515_023, 415.808, 800.0,
                    _social(8.75, 0.10, exponent=3.4, hub_fraction=0.004)),
        DatasetSpec("ca-cit-HepPh", "citation", 28_093, 4_596_803,
                    195_758_685, 1_526.05, 5_361.1, _citation(160)),
        DatasetSpec("roadNet-CA", "road", 1_965_206, 2_766_607,
                    120_676, 62.058, 108.8, _road()),
        DatasetSpec("roadNet-PA", "road", 1_088_092, 1_541_898,
                    67_150, 34.559, 88.7, _road()),
        DatasetSpec("roadNet-TX", "road", 1_379_917, 1_921_660,
                    82_869, 42.323, 96.8, _road()),
        DatasetSpec("soc-Slashdot0811", "social", 77_360, 905_468,
                    551_724, 29.402, 259.7,
                    _social(23.4, 0.35, hub_fraction=2_539 / 77_360)),
    ]
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a Table IX dataset by name."""
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}")


def dataset_names() -> List[str]:
    """Names in the paper's row order."""
    return list(DATASETS)
