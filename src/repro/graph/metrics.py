"""Structural graph metrics for stand-in validation.

The Table IX stand-ins must match their originals where it matters to
the cost model: degree shape, hub weight, clustering. These metrics
quantify that (and are what the dataset tests assert against).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import DatasetError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class DegreeProfile:
    """Summary of a degree distribution."""

    vertices: int
    edges: int
    mean: float
    median: float
    p99: float
    maximum: int
    gini: float
    tail_exponent: Optional[float]

    @property
    def hub_ratio(self) -> float:
        """Max degree relative to the mean (hub weight indicator)."""
        return self.maximum / self.mean if self.mean else 0.0


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0 or values.sum() == 0:
        return 0.0
    n = values.size
    index = np.arange(1, n + 1)
    return float((2 * (index * values).sum() - (n + 1) * values.sum())
                 / (n * values.sum()))


def estimate_tail_exponent(degrees: np.ndarray, d_min: int = 4) -> Optional[float]:
    """Hill/MLE estimate of a power-law tail exponent.

    Returns None when fewer than 10 vertices exceed ``d_min`` (no
    meaningful tail). The continuous MLE
    ``alpha = 1 + n / sum(ln(d / d_min))`` is adequate for validating
    the generators (we only need "is it heavy-tailed, roughly like the
    original").
    """
    tail = degrees[degrees >= d_min].astype(np.float64)
    if tail.size < 10:
        return None
    logs = np.log(tail / (d_min - 0.5))
    if logs.sum() <= 0:
        return None
    return float(1.0 + tail.size / logs.sum())


def degree_profile(graph: CSRGraph) -> DegreeProfile:
    """Compute the full degree summary of a graph."""
    degrees = graph.degrees
    if degrees.size == 0:
        raise DatasetError("cannot profile an empty graph")
    return DegreeProfile(
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        p99=float(np.percentile(degrees, 99)),
        maximum=int(degrees.max()),
        gini=gini_coefficient(degrees),
        tail_exponent=estimate_tail_exponent(degrees),
    )


def sample_clustering_coefficient(
    graph: CSRGraph, samples: int = 200, seed: int = 0
) -> float:
    """Average local clustering coefficient over sampled vertices."""
    rng = np.random.default_rng(seed)
    candidates = np.flatnonzero(graph.degrees >= 2)
    if candidates.size == 0:
        return 0.0
    picks = rng.choice(candidates, size=min(samples, candidates.size),
                       replace=False)
    total = 0.0
    for vertex in picks:
        neighbors = graph.neighbors(int(vertex))
        degree = neighbors.size
        links = 0
        neighbor_set = set(neighbors.tolist())
        for u in neighbors:
            links += len(neighbor_set.intersection(
                graph.neighbors(int(u)).tolist()
            ))
        total += links / (degree * (degree - 1))
    return float(total / picks.size)


def profile_report(graph: CSRGraph) -> str:
    """Human-readable structural profile."""
    profile = degree_profile(graph)
    clustering = sample_clustering_coefficient(graph)
    tail = (f"{profile.tail_exponent:.2f}"
            if profile.tail_exponent is not None else "n/a")
    return (
        f"|V|={profile.vertices} |E|={profile.edges} "
        f"deg mean={profile.mean:.1f} median={profile.median:.0f} "
        f"p99={profile.p99:.0f} max={profile.maximum} "
        f"(hub ratio {profile.hub_ratio:.1f}) gini={profile.gini:.2f} "
        f"tail alpha={tail} clustering~{clustering:.3f}"
    )
