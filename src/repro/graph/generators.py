"""Synthetic graph generators for the dataset stand-ins.

The Table IX speedups are driven by the *shape* of each graph's
adjacency-list length distribution (see DESIGN.md), so one generator
per structural family is provided:

- :func:`power_law` -- configuration-model power-law graphs with
  optional triangle-closing passes (social networks, AS topologies),
- :func:`road_network` -- 2-D lattice with perturbations (road graphs:
  tiny, near-uniform degrees),
- :func:`preferential_attachment` -- Barabasi-Albert style growth
  (citation / co-purchase graphs),
- :func:`erdos_renyi` -- the unstructured control.

All generators are deterministic given a seed and return
:class:`repro.graph.CSRGraph`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DatasetError
from repro.graph.csr import CSRGraph


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(20250705 if seed is None else seed)


def erdos_renyi(num_vertices: int, num_edges: int, seed: Optional[int] = None) -> CSRGraph:
    """Uniform random graph with ~``num_edges`` distinct edges."""
    if num_vertices < 2:
        raise DatasetError("erdos_renyi needs at least 2 vertices")
    rng = _rng(seed)
    # Oversample to survive dedup/self-loop removal.
    m = int(num_edges * 1.15) + 8
    edges = rng.integers(0, num_vertices, size=(m, 2), dtype=np.int64)
    return CSRGraph.from_edges(edges, num_vertices=num_vertices)


def power_law(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.3,
    triangle_fraction: float = 0.0,
    max_degree: Optional[int] = None,
    seed: Optional[int] = None,
) -> CSRGraph:
    """Configuration-model power-law graph.

    Degrees are drawn from a truncated zipf with the given exponent and
    rescaled to hit ``num_edges``. ``max_degree`` truncates the tail so
    a stand-in can match a real dataset's hub size (the Table IX cost
    model is very sensitive to hub weight). ``triangle_fraction``
    closes that fraction of wedges into triangles afterwards, raising
    clustering to social-network levels without changing the degree
    shape much.
    """
    if num_vertices < 3:
        raise DatasetError("power_law needs at least 3 vertices")
    if not 1.5 <= exponent <= 4.0:
        raise DatasetError(f"exponent {exponent} outside the sane 1.5..4 range")
    rng = _rng(seed)
    cap = num_vertices / 4 if max_degree is None else max(4, max_degree)
    raw = rng.zipf(exponent, size=num_vertices).astype(np.float64)
    raw = np.minimum(raw, cap)
    scale = (2.0 * num_edges) / raw.sum()
    degrees = np.maximum(1, np.round(raw * scale)).astype(np.int64)
    degrees = np.minimum(degrees, int(cap))
    stubs = np.repeat(np.arange(num_vertices, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    if stubs.size % 2:
        stubs = stubs[:-1]
    edges = stubs.reshape(-1, 2)
    graph = CSRGraph.from_edges(edges, num_vertices=num_vertices)
    if triangle_fraction > 0:
        graph = _close_wedges(graph, triangle_fraction, rng)
    return graph


def _close_wedges(
    graph: CSRGraph, fraction: float, rng: np.random.Generator
) -> CSRGraph:
    """Add edges closing random wedges (u-w-v becomes a triangle)."""
    extra = []
    target = int(graph.num_edges * fraction)
    candidates = np.flatnonzero(graph.degrees >= 2)
    if candidates.size == 0 or target == 0:
        return graph
    centers = rng.choice(candidates, size=target)
    for w in centers:
        nbrs = graph.neighbors(int(w))
        pick = rng.choice(nbrs.size, size=2, replace=False)
        extra.append((int(nbrs[pick[0]]), int(nbrs[pick[1]])))
    combined = np.vstack([graph.edge_array(), np.asarray(extra, dtype=np.int64)])
    return CSRGraph.from_edges(combined, num_vertices=graph.num_vertices)


def road_network(
    num_vertices: int,
    extra_edge_fraction: float = 0.05,
    dropout: float = 0.08,
    seed: Optional[int] = None,
) -> CSRGraph:
    """Planar-ish road grid: 2-D lattice with dropout and shortcuts.

    Degrees concentrate around 2-4 exactly like the SNAP roadNet
    graphs, which is what starves the CAM accelerator of parallelism in
    Table IX (the paper's lowest speedups).
    """
    if num_vertices < 4:
        raise DatasetError("road_network needs at least 4 vertices")
    rng = _rng(seed)
    side = int(np.sqrt(num_vertices))
    rows, cols = side, (num_vertices + side - 1) // side

    def vid(r: int, c: int) -> int:
        return r * cols + c

    horiz_r, horiz_c = np.meshgrid(np.arange(rows), np.arange(cols - 1),
                                   indexing="ij")
    vert_r, vert_c = np.meshgrid(np.arange(rows - 1), np.arange(cols),
                                 indexing="ij")
    edges = np.concatenate([
        np.column_stack([
            (horiz_r * cols + horiz_c).ravel(),
            (horiz_r * cols + horiz_c + 1).ravel(),
        ]),
        np.column_stack([
            (vert_r * cols + vert_c).ravel(),
            ((vert_r + 1) * cols + vert_c).ravel(),
        ]),
    ])
    keep = rng.random(edges.shape[0]) >= dropout
    edges = edges[keep]
    shortcuts = int(edges.shape[0] * extra_edge_fraction)
    if shortcuts:
        r = rng.integers(0, rows - 1, size=shortcuts)
        c = rng.integers(0, cols - 1, size=shortcuts)
        extra = np.column_stack([vid(0, 0) + r * cols + c,
                                 (r + 1) * cols + (c + 1)])
        edges = np.vstack([edges, extra])
    edges = edges[(edges < rows * cols).all(axis=1)]
    return CSRGraph.from_edges(edges, num_vertices=rows * cols)


def preferential_attachment(
    num_vertices: int,
    edges_per_vertex: int,
    seed: Optional[int] = None,
) -> CSRGraph:
    """Barabasi-Albert growth: each new vertex attaches to ``m`` targets
    chosen proportionally to degree (hub-heavy, citation-like)."""
    if edges_per_vertex < 1:
        raise DatasetError("edges_per_vertex must be >= 1")
    if num_vertices <= edges_per_vertex:
        raise DatasetError("need more vertices than edges_per_vertex")
    rng = _rng(seed)
    m = edges_per_vertex
    # Repeated-nodes list trick: O(E) preferential attachment.
    targets = list(range(m))
    repeated: list = []
    edges = np.empty(((num_vertices - m) * m, 2), dtype=np.int64)
    k = 0
    for source in range(m, num_vertices):
        for t in targets:
            edges[k] = (source, t)
            k += 1
        repeated.extend(targets)
        repeated.extend([source] * m)
        picks = rng.integers(0, len(repeated), size=m)
        targets = list({repeated[p] for p in picks})
        while len(targets) < m:
            targets.append(int(rng.integers(0, source + 1)))
        targets = targets[:m]
    return CSRGraph.from_edges(edges[:k], num_vertices=num_vertices)
