"""Edge-list file IO in the SNAP text format.

SNAP files are whitespace-separated ``src dst`` pairs with ``#``
comment lines; this module reads/writes that format so users with the
real datasets can drop them in for the Table IX bench.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import DatasetError
from repro.graph.csr import CSRGraph

PathLike = Union[str, "os.PathLike[str]"]


def load_edge_list(path: PathLike) -> CSRGraph:
    """Read a SNAP-style edge list into a :class:`CSRGraph`."""
    if not os.path.exists(path):
        raise DatasetError(f"edge list not found: {path}")
    edges = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected 'src dst', got {line!r}"
                )
            try:
                edges.append((int(parts[0]), int(parts[1])))
            except ValueError:
                raise DatasetError(
                    f"{path}:{line_number}: non-integer vertex id in {line!r}"
                )
    if not edges:
        raise DatasetError(f"{path}: no edges found")
    return CSRGraph.from_edges(np.asarray(edges, dtype=np.int64))


def save_edge_list(graph: CSRGraph, path: PathLike, header: str = "") -> None:
    """Write each undirected edge once in SNAP text format."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        edge_array = graph.edge_array()
        for u, v in edge_array:
            handle.write(f"{u}\t{v}\n")
