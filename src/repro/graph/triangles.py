"""Exact triangle counting (the case study's golden results).

Two implementations:

- :func:`count_triangles` -- the forward (oriented) merge algorithm,
  vectorised with numpy; counts every triangle exactly once. This is
  also the *functional* specification both accelerator models must
  match.
- :func:`count_triangles_matrix` -- independent cross-check via the
  sparse adjacency-matrix identity ``trace(A^3) / 6`` (needs scipy).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, OrientedCSR


def _intersect_sorted_count(a: np.ndarray, b: np.ndarray) -> int:
    """Size of the intersection of two sorted arrays (merge count)."""
    if a.size == 0 or b.size == 0:
        return 0
    return int(np.intersect1d(a, b, assume_unique=True).size)


def count_triangles(graph: CSRGraph) -> int:
    """Exact triangle count via the forward algorithm.

    For every oriented edge (u, v), common oriented neighbours of u and
    v complete a triangle; orientation guarantees each triangle is
    found exactly once (at its lowest-ranked vertex).
    """
    oriented = graph.oriented()
    total = 0
    src, dst = oriented.edge_endpoints()
    for u, v in zip(src.tolist(), dst.tolist()):
        total += _intersect_sorted_count(
            oriented.neighbors(u), oriented.neighbors(v)
        )
    return total


def count_triangles_matrix(graph: CSRGraph) -> int:
    """Exact count via ``trace(A^3)/6`` on the sparse adjacency matrix."""
    from scipy import sparse

    n = graph.num_vertices
    if n == 0 or graph.indices.size == 0:
        return 0
    src = np.repeat(np.arange(n), graph.degrees)
    adjacency = sparse.csr_matrix(
        (np.ones(graph.indices.size, dtype=np.int64),
         (src, graph.indices)),
        shape=(n, n),
    )
    paths = (adjacency @ adjacency).multiply(adjacency)
    return int(paths.sum()) // 6


def per_edge_list_lengths(oriented: OrientedCSR) -> "tuple[np.ndarray, np.ndarray]":
    """(longer, shorter) oriented-list lengths per oriented edge.

    Used by the forward-algorithm analysis; see
    :func:`per_edge_full_lengths` for the accelerator cost model.
    """
    out_deg = oriented.out_degrees
    src, dst = oriented.edge_endpoints()
    len_src = out_deg[src]
    len_dst = out_deg[dst]
    longer = np.maximum(len_src, len_dst)
    shorter = np.minimum(len_src, len_dst)
    return longer, shorter


def id_oriented_out_degrees(graph: CSRGraph) -> np.ndarray:
    """Out-degree of each vertex under the standard id orientation.

    The Vitis-style triangle-count kernels (and the paper's CSR layout)
    keep, for vertex v, the neighbours with larger id -- each triangle
    is then found exactly once. Unlike the degree orientation this
    preserves hub asymmetry: a low-id hub keeps its long list, which is
    precisely the case where the CAM's parallel load/search pays off
    most (the as20000102 row of Table IX).
    """
    src = np.repeat(np.arange(graph.num_vertices), graph.degrees)
    forward = src < graph.indices
    return np.bincount(src[forward], minlength=graph.num_vertices)


def per_edge_full_lengths(graph: CSRGraph) -> "tuple[np.ndarray, np.ndarray]":
    """(longer, shorter) id-oriented list lengths per undirected edge.

    These two arrays drive the entire Table IX cost model: both kernels
    consume the same id-oriented CSR; per edge, the longer oriented
    list goes into the CAM (or one merge input), the shorter streams
    through as search keys (or the other merge input).
    """
    out_deg = id_oriented_out_degrees(graph)
    edges = graph.edge_array()
    len_u = out_deg[edges[:, 0]]
    len_v = out_deg[edges[:, 1]]
    longer = np.maximum(len_u, len_v)
    shorter = np.minimum(len_u, len_v)
    return longer, shorter


def clustering_summary(graph: CSRGraph) -> dict:
    """Quick structural profile used by dataset stand-in validation."""
    degrees = graph.degrees
    return {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "avg_degree": float(degrees.mean()) if degrees.size else 0.0,
        "max_degree": int(degrees.max()) if degrees.size else 0,
        "degree_p99": float(np.percentile(degrees, 99)) if degrees.size else 0.0,
    }
