"""Small Verilog writer helpers used by the template generator."""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Tuple

from repro.errors import HdlGenError

_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")

#: Verilog-2001 keywords we refuse to use as identifiers.
_KEYWORDS = frozenset(
    "module endmodule input output inout wire reg parameter localparam "
    "assign always begin end if else case endcase for generate endgenerate "
    "genvar integer function endfunction posedge negedge or and not xor".split()
)


def check_identifier(name: str) -> str:
    """Validate a Verilog identifier; returns it unchanged."""
    if not _IDENTIFIER.match(name):
        raise HdlGenError(f"invalid Verilog identifier: {name!r}")
    if name in _KEYWORDS:
        raise HdlGenError(f"Verilog keyword used as identifier: {name!r}")
    return name


def vbits(width: int, value: int) -> str:
    """Render a sized hexadecimal literal, e.g. ``48'h00000000beef``."""
    if width < 1:
        raise HdlGenError(f"literal width must be >= 1, got {width}")
    if value < 0 or value >> width:
        raise HdlGenError(f"value {value:#x} does not fit in {width} bits")
    digits = (width + 3) // 4
    return f"{width}'h{value:0{digits}x}"


def port_decl(direction: str, name: str, width: int = 1) -> str:
    """One ANSI port declaration line."""
    if direction not in ("input", "output", "inout"):
        raise HdlGenError(f"bad port direction {direction!r}")
    check_identifier(name)
    if width < 1:
        raise HdlGenError(f"port {name}: width must be >= 1")
    vector = "" if width == 1 else f"[{width - 1}:0] "
    return f"{direction} wire {vector}{name}"


def render_parameters(parameters: Dict[str, object]) -> str:
    """Render a ``#(...)`` parameter block body."""
    lines = []
    for name, value in parameters.items():
        check_identifier(name)
        if isinstance(value, str):
            rendered = f'"{value}"'
        else:
            rendered = str(value)
        lines.append(f"    parameter {name} = {rendered}")
    return ",\n".join(lines)


def instantiate(
    module: str,
    instance: str,
    parameters: Dict[str, object],
    connections: Iterable[Tuple[str, str]],
    indent: str = "  ",
) -> str:
    """Render one module instantiation."""
    check_identifier(module)
    check_identifier(instance)
    lines: List[str] = [f"{indent}{module} #("]
    params = []
    for name, value in parameters.items():
        check_identifier(name)
        rendered = f'"{value}"' if isinstance(value, str) else str(value)
        params.append(f"{indent}  .{name}({rendered})")
    lines.append(",\n".join(params))
    lines.append(f"{indent}) {instance} (")
    ports = []
    for port, signal in connections:
        check_identifier(port)
        ports.append(f"{indent}  .{port}({signal})")
    lines.append(",\n".join(ports))
    lines.append(f"{indent});")
    return "\n".join(lines)


def count_occurrences(source: str, token: str) -> int:
    """Whole-word occurrence count (used by generator self-checks/tests)."""
    return len(re.findall(rf"\b{re.escape(token)}\b", source))


def balanced_blocks(source: str) -> bool:
    """Cheap structural sanity: module/endmodule and begin/end balance."""
    return (
        count_occurrences(source, "module") == count_occurrences(source, "endmodule")
        and count_occurrences(source, "begin") == count_occurrences(source, "end")
        and count_occurrences(source, "case") == count_occurrences(source, "endcase")
    )
