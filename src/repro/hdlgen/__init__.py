"""Parameterised Verilog generation for the CAM templates."""

from repro.hdlgen.generator import (
    generate_block,
    generate_cell,
    generate_project,
    generate_unit,
    write_project,
)
from repro.hdlgen.testbench import (
    generate_block_testbench,
    generate_cell_testbench,
)
from repro.hdlgen.verilog import (
    balanced_blocks,
    check_identifier,
    count_occurrences,
    instantiate,
    port_decl,
    render_parameters,
    vbits,
)

__all__ = [
    "balanced_blocks",
    "check_identifier",
    "count_occurrences",
    "generate_block",
    "generate_block_testbench",
    "generate_cell",
    "generate_cell_testbench",
    "generate_project",
    "generate_unit",
    "instantiate",
    "port_decl",
    "render_parameters",
    "vbits",
    "write_project",
]
