"""Fill the Verilog templates from a validated Table III configuration.

``generate_unit`` takes the same :class:`repro.core.UnitConfig` the
simulator runs, so the emitted RTL and the Python model are
parameterised identically -- the "design stage" half of the paper's
configurability story.
"""

from __future__ import annotations

import os
from typing import Dict, Union

from repro.core.config import BlockConfig, CellConfig, UnitConfig
from repro.core.mask import width_mask
from repro.core.types import CamType
from repro.dsp import CAM_ALUMODE, CAM_OPMODE, clog2
from repro.errors import HdlGenError
from repro.hdlgen.templates import (
    CAM_BLOCK_TEMPLATE,
    CAM_CELL_TEMPLATE,
    CAM_UNIT_TEMPLATE,
)
from repro.hdlgen.verilog import balanced_blocks, vbits

PathLike = Union[str, "os.PathLike[str]"]


def _mask_literal(cell: CellConfig) -> str:
    """The static CELL_MASK parameter default for the CAM type.

    Binary cells mask only the unused width; ternary/range cells get
    the same default (their per-entry masks are written at runtime
    through the update datapath in the full design; the static
    parameter covers the width-control role of Table II).
    """
    return vbits(48, width_mask(cell.data_width))


def generate_cell(cell: CellConfig) -> str:
    """Emit ``cam_cell.v`` for a cell configuration."""
    source = CAM_CELL_TEMPLATE.format(
        data_width=cell.data_width,
        mask_literal=_mask_literal(cell),
        opmode_bits=format(CAM_OPMODE, "09b"),
        alumode_bits=format(int(CAM_ALUMODE), "04b"),
    )
    _self_check(source, "cam_cell")
    return source


def generate_block(block: BlockConfig, buffered: bool = None) -> str:
    """Emit ``cam_block.v`` for a block configuration."""
    resolved_buffer = block.buffered if buffered is None else buffered
    source = CAM_BLOCK_TEMPLATE.format(
        block_size=block.block_size,
        data_width=block.cell.data_width,
        bus_width=block.bus_width,
        words_per_beat=block.words_per_beat,
        addr_bits=max(1, clog2(block.block_size)),
        output_buffer=1 if resolved_buffer else 0,
        mask_literal=_mask_literal(block.cell),
    )
    _self_check(source, "cam_block")
    return source


def generate_unit(config: UnitConfig) -> str:
    """Emit ``cam_unit.v`` for a unit configuration."""
    block = config.block
    source = CAM_UNIT_TEMPLATE.format(
        num_blocks=config.num_blocks,
        block_size=block.block_size,
        data_width=block.cell.data_width,
        bus_width=config.unit_bus_width,
        group_bits=max(1, clog2(config.num_blocks)),
        addr_bits=max(1, clog2(block.block_size)),
        block_bits=max(1, clog2(config.num_blocks)),
        output_buffer=1 if config.block_buffered else 0,
        mask_literal=_mask_literal(block.cell),
    )
    _self_check(source, "cam_unit")
    return source


def generate_project(config: UnitConfig) -> Dict[str, str]:
    """All three sources keyed by file name."""
    return {
        "cam_cell.v": generate_cell(config.block.cell),
        "cam_block.v": generate_block(config.block, config.block_buffered),
        "cam_unit.v": generate_unit(config),
    }


def write_project(config: UnitConfig, out_dir: PathLike) -> Dict[str, str]:
    """Write the generated sources to ``out_dir``; returns paths."""
    os.makedirs(out_dir, exist_ok=True)
    written = {}
    for name, source in generate_project(config).items():
        path = os.path.join(os.fspath(out_dir), name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(source)
        written[name] = path
    return written


def _self_check(source: str, module: str) -> None:
    if f"module {module}" not in source:
        raise HdlGenError(f"generated source lost its module header ({module})")
    if not balanced_blocks(source):
        raise HdlGenError(f"generated {module} has unbalanced blocks")
    if "{" + "}" in source or "{0}" in source:  # unfilled placeholder
        raise HdlGenError(f"generated {module} has unfilled placeholders")
