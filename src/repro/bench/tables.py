"""ASCII table rendering and paper-vs-measured comparison helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def fmt(value: Cell, precision: int = 3) -> str:
    """Format one table cell (None renders as the paper's '-')."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class TableData:
    """One rendered exhibit: title, header row, body rows, footnotes."""

    title: str
    headers: List[str]
    rows: List[List[Cell]]
    notes: List[str] = field(default_factory=list)

    def render(self, precision: int = 3) -> str:
        """Render as an aligned ASCII table."""
        body = [[fmt(cell, precision) for cell in row] for row in self.rows]
        widths = [len(header) for header in self.headers]
        for row in body:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

        rule = "-+-".join("-" * width for width in widths)
        out = [self.title, "=" * len(self.title), line(self.headers), rule]
        out.extend(line(row) for row in body)
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)

    def to_markdown(self, precision: int = 3) -> str:
        """Render as a GitHub-flavoured markdown table."""
        body = [[fmt(cell, precision) for cell in row] for row in self.rows]
        out = [f"### {self.title}", ""]
        out.append("| " + " | ".join(self.headers) + " |")
        out.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in body:
            out.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            out.append(f"\n> {note}")
        return "\n".join(out)


def ratio(measured: float, paper: float) -> Optional[float]:
    """measured / paper, or None when the paper value is unusable."""
    if paper is None or paper == 0:
        return None
    return measured / paper


def within(measured: float, paper: float, tolerance: float) -> bool:
    """True when measured is within +/- tolerance (fraction) of paper."""
    if paper == 0:
        return measured == 0
    return abs(measured - paper) / abs(paper) <= tolerance


def compare_columns(
    headers: List[str],
    labels: Sequence[str],
    measured: Sequence[Cell],
    paper: Sequence[Cell],
    title: str,
) -> TableData:
    """Three-column comparison table: label, measured, paper."""
    rows: List[List[Cell]] = []
    for label, ours, theirs in zip(labels, measured, paper):
        rows.append([label, ours, theirs])
    return TableData(title=title, headers=headers, rows=rows)
