"""One function per paper exhibit, shared by the benches and the CLI.

Each function regenerates its table/figure from the models and returns
a :class:`repro.bench.tables.TableData` carrying measured values side
by side with the paper's published numbers (where the exhibit has
them). The benchmark files under ``benchmarks/`` time and print these;
the CLI prints them on demand; EXPERIMENTS.md records their output.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.baselines.survey import AXES, characteristics, full_survey
from repro.core.analysis import (
    measure_block,
    measure_cell,
    measure_unit_performance,
    unit_scaling,
)
from repro.core.types import CamType
from repro.apps.tc.runner import arithmetic_mean_speedup, run_all
from repro.bench.tables import TableData
from repro.fabric.area import provenance as area_provenance
from repro.fabric.timing import provenance as timing_provenance

#: Paper Table VI reference values, keyed by block size.
PAPER_TABLE_VI = {
    32: dict(update=1, search=3, up_tput=4800, se_tput=300, lut=694, freq=300),
    64: dict(update=1, search=3, up_tput=4800, se_tput=300, lut=745, freq=300),
    128: dict(update=1, search=3, up_tput=4800, se_tput=300, lut=808, freq=300),
    256: dict(update=1, search=4, up_tput=4800, se_tput=300, lut=1225, freq=300),
    512: dict(update=1, search=4, up_tput=4800, se_tput=300, lut=1371, freq=300),
}

#: Paper Table VII reference values, keyed by total entries.
PAPER_TABLE_VII = {
    512: dict(lut=2491, dsp=512, freq=300),
    1024: dict(lut=5072, dsp=1024, freq=300),
    2048: dict(lut=10167, dsp=2048, freq=300),
    4096: dict(lut=20330, dsp=4096, freq=265),
    6144: dict(lut=29385, dsp=6144, freq=252),
    8192: dict(lut=38191, dsp=8192, freq=240),
    9728: dict(lut=45244, dsp=9728, freq=235),
}

#: Paper Table VIII reference values, keyed by total entries.
PAPER_TABLE_VIII = {
    128: dict(update=6, search=7, up_tput=4800, se_tput=300),
    512: dict(update=6, search=7, up_tput=4800, se_tput=300),
    2048: dict(update=6, search=8, up_tput=4800, se_tput=300),
    4096: dict(update=6, search=8, up_tput=4064, se_tput=254),
    8192: dict(update=6, search=8, up_tput=3840, se_tput=240),
}


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------
def fig01_characteristics() -> TableData:
    """Radar-chart scores of the CAM design families (figure 1)."""
    scores = characteristics()
    order = ["LUT", "BRAM", "Hybrid", "DSP (prior)", "Ours"]
    headers = ["family"] + list(AXES)
    rows = [
        [family] + [scores[family][axis] for axis in AXES]
        for family in order
        if family in scores
    ]
    return TableData(
        title="Figure 1: characteristics of FPGA CAM design families (0..1)",
        headers=headers,
        rows=rows,
        notes=[
            "scalability/performance/frequency derived from Table I data; "
            "integration & multi-query follow the documented rubric "
            "(repro.baselines.survey)."
        ],
    )


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def table01_survey() -> TableData:
    """Survey of recent CAM designs on FPGA (Table I)."""
    headers = [
        "design", "category", "platform", "max CAM size", "MHz",
        "LUT", "BRAM", "DSP", "update (cy)", "search (cy)",
    ]
    rows: List[List[object]] = []
    for entry in full_survey():
        rows.append([
            entry.name,
            entry.category,
            entry.platform,
            f"{entry.entries} x {entry.width} bits",
            entry.frequency_mhz,
            entry.lut,
            entry.bram,
            entry.dsp,
            entry.update_latency,
            entry.search_latency,
        ])
    return TableData(
        title="Table I: survey of recent CAM designs on FPGA",
        headers=headers,
        rows=rows,
        notes=[
            "'Ours' row regenerated from the models (latency from the cycle "
            "simulator, resources/frequency from the calibrated fabric model).",
        ],
    )


# ----------------------------------------------------------------------
# Table V
# ----------------------------------------------------------------------
def table05_cell() -> TableData:
    """CAM cell evaluation (Table V), measured in the simulator."""
    headers = ["cell type", "capacity", "update (cy)", "search (cy)",
               "DSP", "LUT", "BRAM"]
    rows = []
    for cam_type in CamType:
        report = measure_cell(cam_type)
        rows.append([
            cam_type.value,
            "1 entry <= 48 bits",
            report.update_latency,
            report.search_latency,
            report.resources.dsp,
            report.resources.lut,
            report.resources.bram,
        ])
    return TableData(
        title="Table V: CAM cell evaluation (paper: update 1, search 2, 1 DSP)",
        headers=headers,
        rows=rows,
        notes=["identical for all three cell types, as the paper reports"],
    )


# ----------------------------------------------------------------------
# Table VI
# ----------------------------------------------------------------------
def table06_block(sizes: Sequence[int] = (32, 64, 128, 256, 512)) -> TableData:
    """CAM block evaluation with different sizes (Table VI).

    The paper's throughput rows (4800 / 300 Mop/s) correspond to
    16 words per 512-bit beat, i.e. 32-bit stored words, which is the
    width used here; cell capacity stays "<= 48 bits" as in Table V.
    """
    headers = ["metric"] + [str(size) for size in sizes]
    reports = [measure_block(size, data_width=32) for size in sizes]
    paper = [PAPER_TABLE_VI.get(size) for size in sizes]

    def row(label, ours, theirs):
        return ([label + " (measured)"] + ours,
                [label + " (paper)"] + theirs)

    rows: List[List[object]] = []
    for label, ours, theirs in [
        ("update latency", [r.update_latency for r in reports],
         [p["update"] if p else None for p in paper]),
        ("search latency", [r.search_latency for r in reports],
         [p["search"] if p else None for p in paper]),
        ("update tput (Mop/s)", [r.update_throughput_mops for r in reports],
         [p["up_tput"] if p else None for p in paper]),
        ("search tput (Mop/s)", [r.search_throughput_mops for r in reports],
         [p["se_tput"] if p else None for p in paper]),
        ("LUTs", [r.resources.lut for r in reports],
         [p["lut"] if p else None for p in paper]),
        ("DSPs", [r.resources.dsp for r in reports], list(sizes)),
        ("frequency (MHz)", [r.frequency_mhz for r in reports],
         [p["freq"] if p else None for p in paper]),
    ]:
        measured_row, paper_row = row(label, list(ours), list(theirs))
        rows.append(measured_row)
        rows.append(paper_row)
    return TableData(
        title="Table VI: CAM block evaluation with different size",
        headers=headers,
        rows=rows,
        notes=[area_provenance()],
    )


# ----------------------------------------------------------------------
# Table VII
# ----------------------------------------------------------------------
def table07_unit_scaling(
    sizes: Sequence[int] = (512, 1024, 2048, 4096, 6144, 8192, 9728),
) -> TableData:
    """CAM unit configuration and resource utilisation (Table VII)."""
    headers = ["CAM size (x48b)", "LUT", "LUT paper", "DSP",
               "freq MHz", "freq paper", "LUT util %", "DSP util %"]
    rows = []
    for size in sizes:
        report = unit_scaling(size)
        paper = PAPER_TABLE_VII.get(size, {})
        rows.append([
            size,
            report.luts,
            paper.get("lut"),
            report.dsps,
            report.frequency_mhz,
            paper.get("freq"),
            round(100 * report.lut_utilisation, 2),
            round(100 * report.dsp_utilisation, 2),
        ])
    return TableData(
        title="Table VII: CAM unit configuration and resource utilisation",
        headers=headers,
        rows=rows,
        notes=[area_provenance(), timing_provenance()],
    )


# ----------------------------------------------------------------------
# Table VIII
# ----------------------------------------------------------------------
def table08_unit_perf(
    sizes: Sequence[int] = (128, 512, 2048, 4096, 8192),
    block_size: int = 128,
) -> TableData:
    """CAM performance for 32-bit data with different sizes (Table VIII).

    Latencies are measured end-to-end in the cycle simulator; the
    throughputs combine the measured initiation interval (1) with the
    calibrated frequency.
    """
    headers = ["metric"] + [str(size) for size in sizes]
    reports = [
        measure_unit_performance(size, block_size=min(block_size, size))
        for size in sizes
    ]
    paper = [PAPER_TABLE_VIII.get(size) for size in sizes]
    rows = []
    for label, ours, theirs in [
        ("update latency", [r.update_latency for r in reports],
         [p["update"] if p else None for p in paper]),
        ("search latency", [r.search_latency for r in reports],
         [p["search"] if p else None for p in paper]),
        ("update tput (Mop/s)", [r.update_throughput_mops for r in reports],
         [p["up_tput"] if p else None for p in paper]),
        ("search tput (Mop/s)", [r.search_throughput_mops for r in reports],
         [p["se_tput"] if p else None for p in paper]),
    ]:
        rows.append([label + " (measured)"] + list(ours))
        rows.append([label + " (paper)"] + list(theirs))
    return TableData(
        title="Table VIII: CAM performance for 32-bit data with different sizes",
        headers=headers,
        rows=rows,
        notes=["latencies simulated cycle-accurately; " + timing_provenance()],
    )


# ----------------------------------------------------------------------
# Table IX
# ----------------------------------------------------------------------
def table09_triangle_counting(
    datasets: Optional[Iterable[str]] = None,
    max_edges: int = 120_000,
    seed: int = 0,
) -> TableData:
    """Triangle-counting execution time (Table IX) on the stand-ins."""
    rows_data = run_all(datasets, max_edges=max_edges, seed=seed)
    headers = ["dataset", "scale", "triangles", "ours (ms)", "baseline (ms)",
               "speedup", "paper speedup"]
    rows = []
    for row in rows_data:
        rows.append([
            row.dataset,
            round(row.scale, 4),
            row.triangles,
            round(row.cam_ms, 3),
            round(row.baseline_ms, 3),
            round(row.speedup, 2),
            round(row.paper_speedup, 2),
        ])
    average = arithmetic_mean_speedup(rows_data)
    rows.append(["average", None, None, None, None, round(average, 2), 4.92])
    return TableData(
        title="Table IX: execution time of merge-based vs CAM-based TC",
        headers=headers,
        rows=rows,
        notes=[
            "graphs are synthetic stand-ins scaled to <= "
            f"{max_edges} edges (see DESIGN.md); absolute ms are not "
            "comparable to the paper, per-dataset speedup shape is",
        ],
    )


#: Every exhibit, for the CLI's `--all` and the EXPERIMENTS.md generator.
ALL_EXHIBITS = {
    "fig1": fig01_characteristics,
    "table1": table01_survey,
    "table5": table05_cell,
    "table6": table06_block,
    "table7": table07_unit_scaling,
    "table8": table08_unit_perf,
    "table9": table09_triangle_counting,
}
