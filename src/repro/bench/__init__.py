"""Benchmark harness helpers: table rendering and exhibit generators."""

from repro.bench.experiments import (
    ALL_EXHIBITS,
    PAPER_TABLE_VI,
    PAPER_TABLE_VII,
    PAPER_TABLE_VIII,
    fig01_characteristics,
    table01_survey,
    table05_cell,
    table06_block,
    table07_unit_scaling,
    table08_unit_perf,
    table09_triangle_counting,
)
from repro.bench.tables import TableData, compare_columns, fmt, ratio, within

__all__ = [
    "ALL_EXHIBITS",
    "PAPER_TABLE_VI",
    "PAPER_TABLE_VII",
    "PAPER_TABLE_VIII",
    "TableData",
    "compare_columns",
    "fig01_characteristics",
    "fmt",
    "ratio",
    "table01_survey",
    "table05_cell",
    "table06_block",
    "table07_unit_scaling",
    "table08_unit_perf",
    "table09_triangle_counting",
    "within",
]
