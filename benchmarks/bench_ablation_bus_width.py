"""Ablation: input bus width vs update throughput.

The paper fixes the unit bus at 512 bits "to be compatible with the
interface width of the external DDR memory port". This bench sweeps
the bus width and measures (in the simulator) how many cycles a
fixed-size content load takes, confirming the linear words-per-beat
relationship behind Table VIII's 4800 Mop/s figure and quantifying what
a narrower integration bus would cost.
"""

from conftest import run_once

from repro.bench.tables import TableData
from repro.core import open_session, unit_for_entries

WORDS = 96
DATA_WIDTH = 32


def measure(bus_width: int):
    session = open_session(unit_for_entries(
        128, block_size=32, data_width=DATA_WIDTH, bus_width=bus_width
    ), "cycle")
    stats = session.update(list(range(WORDS)))
    return stats


def build_table() -> TableData:
    rows = []
    for bus_width in (32, 64, 128, 256, 512):
        stats = measure(bus_width)
        words_per_beat = bus_width // DATA_WIDTH
        rows.append([
            bus_width,
            words_per_beat,
            stats.beats,
            stats.cycles,
            round(words_per_beat * 300.0, 0),  # Mop/s at the 300 MHz target
        ])
    return TableData(
        title=f"Ablation: bus width vs update cost ({WORDS} words, 32-bit)",
        headers=["bus bits", "words/beat", "beats", "cycles",
                 "update Mop/s @300MHz"],
        rows=rows,
        notes=["the 512-bit choice matches the DDR interface and yields "
               "the paper's 4800 Mop/s update rate"],
    )


def test_ablation_bus_width(benchmark, record_exhibit):
    table = run_once(benchmark, build_table)
    record_exhibit("ablation_bus_width", table)

    beats = [row[2] for row in table.rows]
    assert beats == sorted(beats, reverse=True), "wider bus, fewer beats"
    # Exact beat arithmetic: ceil(96 / words_per_beat).
    for bus_bits, words_per_beat, beat_count, cycles, _ in table.rows:
        assert beat_count == -(-WORDS // words_per_beat)
        assert cycles >= beat_count
    # The paper's configuration point.
    assert table.rows[-1][0] == 512
    assert table.rows[-1][-1] == 4800
