"""Table VIII: CAM performance for 32-bit data with different sizes.

This is the paper's end-to-end performance measurement: randomly
update and search a single value in units of 128..8192 entries and
count cycles. The latencies here are *simulated cycle-accurately* on
the full unit (every DSP cell instantiated); the throughputs combine
the measured initiation interval of 1 with the calibrated frequency.
"""

import pytest
from conftest import run_once

from repro.bench.experiments import PAPER_TABLE_VIII, table08_unit_perf
from repro.core import measure_unit_performance

SIZES = (128, 512, 2048, 4096, 8192)


def test_table08_unit_perf(benchmark, record_exhibit):
    table = run_once(benchmark, lambda: table08_unit_perf(SIZES))
    record_exhibit("table08_unit_perf", table)

    for size in SIZES:
        report = measure_unit_performance(size, block_size=min(128, size))
        paper = PAPER_TABLE_VIII[size]
        assert report.update_latency == paper["update"], size
        assert report.search_latency == paper["search"], size
        assert report.update_throughput_mops == pytest.approx(paper["up_tput"]), size
        assert report.search_throughput_mops == pytest.approx(paper["se_tput"]), size


def test_pipelining_sustains_full_rate(benchmark):
    """Both paths are pipelined with initiation interval 1: a burst of
    back-to-back searches completes in burst + latency cycles."""
    from repro.core import open_session, unit_for_entries

    session = open_session(
        unit_for_entries(512, block_size=128, data_width=32, default_groups=1),
        "cycle",
    )
    session.update(list(range(64)))

    def burst():
        results = session.search(list(range(64)))
        return session.last_search_stats, results

    stats, results = run_once(benchmark, burst)
    assert all(result.hit for result in results)
    latency = session.unit.search_latency
    assert stats.cycles <= 64 + latency + 2, (
        f"64 searches took {stats.cycles} cycles; II=1 requires "
        f"<= {64 + latency + 2}"
    )
