"""Table VII: CAM unit configuration and resource utilisation.

Regenerates the resource/frequency scaling sweep (512..9728 x 48-bit
entries, block size 256, 512-bit bus) from the calibrated fabric model
and checks the paper's headline claims: linear LUT growth, 79.25% DSP
utilisation at the maximum configuration with under 3% of the LUTs,
and the frequency droop past 2K entries.
"""

import pytest
from conftest import run_once

from repro.bench.experiments import PAPER_TABLE_VII, table07_unit_scaling
from repro.core import unit_scaling
from repro.fabric import ALVEO_U250

SIZES = (512, 1024, 2048, 4096, 6144, 8192, 9728)


def test_table07_unit_scaling(benchmark, record_exhibit):
    table = run_once(benchmark, lambda: table07_unit_scaling(SIZES))
    record_exhibit("table07_unit_scaling", table)

    reports = {size: unit_scaling(size) for size in SIZES}
    for size, report in reports.items():
        paper = PAPER_TABLE_VII[size]
        assert report.luts == paper["lut"], size
        assert report.dsps == size
        assert report.frequency_mhz == pytest.approx(paper["freq"]), size

    # Headline: 9728 entries = 79.25% of the platform's DSPs, <3% LUTs.
    top = reports[9728]
    assert top.dsp_utilisation == pytest.approx(9728 / 12288, abs=1e-4)
    assert top.lut_utilisation < 0.03
    # LUT growth is close to linear in entries (slope ~4.6 LUT/entry).
    slopes = [
        (reports[b].luts - reports[a].luts) / (b - a)
        for a, b in zip(SIZES, SIZES[1:])
    ]
    assert all(3.0 < slope < 6.5 for slope in slopes), slopes
    # Frequency monotonically non-increasing, 300 MHz through 2K.
    freqs = [reports[size].frequency_mhz for size in SIZES]
    assert freqs == sorted(freqs, reverse=True)
    assert freqs[0] == freqs[2] == 300.0


def test_max_config_fits_device(benchmark):
    """The 9728-entry unit must actually fit the U250."""
    from repro.fabric import unit_resources

    usage = run_once(benchmark, lambda: unit_resources(9728))
    assert ALVEO_U250.fits(usage)
    assert not ALVEO_U250.fits(usage * 2), "double the design must not fit"
