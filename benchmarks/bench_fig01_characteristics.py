"""Figure 1: characteristics radar of FPGA CAM design families.

Regenerates the five normalised axis scores (scalability, performance,
frequency, integration, multi-query) per family from the Table I
survey data and the documented rubric, and checks the figure's
qualitative claims: our design dominates or ties every axis except raw
frequency, where the prior DSP design's short cascade clocks higher.
"""

from conftest import run_once

from repro.baselines.survey import AXES, characteristics
from repro.bench.experiments import fig01_characteristics


def test_fig01_characteristics(benchmark, record_exhibit):
    table = run_once(benchmark, fig01_characteristics)
    record_exhibit("fig01_characteristics", table)

    scores = characteristics()
    ours = scores["Ours"]
    # The paper's radar: only "Ours" fills the multi-query axis...
    for family, axis_scores in scores.items():
        if family != "Ours":
            assert axis_scores["multi_query"] < ours["multi_query"]
    # ...and integration/scalability/performance lead the field.
    for axis in ("integration", "scalability", "performance"):
        assert ours[axis] == max(s[axis] for s in scores.values()), axis
    # Frequency: LUT (Frac-TCAM) and prior-DSP designs clock higher at
    # small sizes -- the figure shows ours mid-field on that axis.
    assert ours["frequency"] < scores["DSP (prior)"]["frequency"]
    # All scores normalised.
    for axis_scores in scores.values():
        for axis in AXES:
            assert 0.0 <= axis_scores[axis] <= 1.0
