"""Ablation: update-heavy (dynamic) workloads across CAM families.

Section II's central complaint about prior FPGA CAMs is that they are
"optimized for read-intensive operations with infrequent updates".
This bench makes that quantitative with the streaming-DISTINCT
operator: every row searches, every unique row inserts, and the insert
sits on the dependency path. Per family the cost is

    rows x search_latency + uniques x update_latency          (cycles)

with each design's own latencies and clock. Ours is additionally
*executed* on the cycle-accurate model to confirm the analytic figure.
"""

from conftest import run_once

from repro.apps.db import CamDistinct, model_distinct_cycles
from repro.baselines import BramCam, DspCascadeCam, LutRamCam
from repro.bench.tables import TableData
from repro.core import unit_for_entries

ROWS = 2_000
UNIQUE_FRACTION = 0.4
UNIQUES = int(ROWS * UNIQUE_FRACTION)
CAPACITY = 1_024


def family_rows():
    rows = []
    for family in (LutRamCam, BramCam, DspCascadeCam):
        cost = family(CAPACITY, 32).cost()
        cycles = model_distinct_cycles(
            ROWS, UNIQUES, cost.search_latency, cost.update_latency
        )
        rows.append([
            family.__name__,
            cost.update_latency,
            cost.search_latency,
            cycles,
            round(cycles / (cost.frequency_mhz * 1e3), 3),
        ])
    ours = unit_for_entries(CAPACITY, block_size=128, data_width=32)
    cycles = model_distinct_cycles(
        ROWS, UNIQUES, ours.search_latency, ours.update_latency
    )
    rows.append([
        "DspCamUnit (ours)",
        ours.update_latency,
        ours.search_latency,
        cycles,
        round(cycles / (300.0 * 1e3), 3),
    ])
    return rows


def build_table() -> TableData:
    return TableData(
        title=(f"Ablation: streaming DISTINCT ({ROWS} rows, "
               f"{UNIQUES} unique) across CAM families"),
        headers=["design", "update cy", "search cy", "total cycles",
                 "time ms"],
        rows=family_rows(),
        notes=["cost = rows x search + uniques x update (insert on the "
               "dependency path); ours cross-checked on the simulator"],
    )


def test_ablation_dynamic_updates(benchmark, record_exhibit):
    table = run_once(benchmark, build_table)
    record_exhibit("ablation_dynamic_updates", table)

    cycles = {row[0]: row[3] for row in table.rows}
    times = {row[0]: row[4] for row in table.rows}
    ours_cycles = cycles["DspCamUnit (ours)"]
    # The paper's section II claim, quantified: slow-update designs
    # collapse under dynamic workloads (cycle counts, clock-neutral).
    assert cycles["LutRamCam"] > 1.5 * ours_cycles
    assert cycles["BramCam"] > 10 * ours_cycles
    # The prior DSP design updates fast but searches slowly; at this
    # mix it still loses on cycles by a wide margin.
    assert cycles["DspCascadeCam"] > 2 * ours_cycles
    # And in wall-clock terms ours is the fastest of all families.
    assert times["DspCamUnit (ours)"] == min(times.values())


def test_simulated_distinct_confirms_model(benchmark):
    """Execute a scaled-down DISTINCT on the real CAM and compare."""
    engine = CamDistinct(total_entries=128, block_size=32)
    values = [i % 50 for i in range(120)]

    def run():
        engine.reset()
        return engine.distinct(values)

    unique, stats = run_once(benchmark, run)
    assert len(unique) == 50
    modelled = model_distinct_cycles(
        120, 50, engine.config.search_latency, engine.config.update_latency
    )
    assert modelled * 0.8 < stats.cycles < modelled * 2.0
