"""Table IX: triangle-counting execution time, CAM vs merge baseline.

Runs both accelerator cost models over synthetic stand-ins of the ten
SNAP graphs (scaled; see DESIGN.md), prints the measured-vs-paper
table, and checks the claims that must survive the substitution:

- the CAM design wins on *every* dataset;
- road networks (tiny uniform adjacency lists, no parallelism to
  harvest) sit at the bottom of the speedup range, near the paper's
  1.75-2.57x;
- hub-heavy / dense graphs sit well above them;
- the overall average lands in the paper's low-single-digit regime.
"""

import time

import pytest

from conftest import engine_kwargs, run_once

from repro.apps.tc import (
    arithmetic_mean_speedup,
    run_all,
    verify_functional_equivalence,
)
from repro.apps.tc.intersect import CamIntersector
from repro.bench.experiments import table09_triangle_counting
from repro.graph import power_law

MAX_EDGES = 120_000


@pytest.mark.slow
def test_table09_triangle_counting(benchmark, record_exhibit):
    table = run_once(
        benchmark, lambda: table09_triangle_counting(max_edges=MAX_EDGES)
    )
    record_exhibit("table09_triangle_counting", table)

    rows = run_all(max_edges=MAX_EDGES, seed=0)
    by_name = {row.dataset: row for row in rows}

    # The CAM accelerator wins everywhere, as in the paper.
    for row in rows:
        assert row.speedup > 1.0, f"{row.dataset}: {row.speedup:.2f}"

    # Road networks are the weakest speedups (paper: 1.75-2.57x).
    road = [by_name[name].speedup
            for name in ("roadNet-CA", "roadNet-PA", "roadNet-TX")]
    non_road = [row.speedup for row in rows
                if not row.dataset.startswith("roadNet")]
    assert max(road) < max(non_road)
    for speedup in road:
        assert 1.2 < speedup < 3.5, speedup

    # Dense / hub-heavy graphs benefit most (paper: 3.5-17.5x).
    assert by_name["ca-cit-HepPh"].speedup > 4.0
    assert by_name["facebook_combined"].speedup > 3.0

    # Average speedup in the paper's regime (it reports 4.92x).
    average = arithmetic_mean_speedup(rows)
    assert 2.5 < average < 8.0, average


def test_functional_equivalence_on_real_cam(benchmark, cam_engine,
                                            audit_sample):
    """The CAM computes the same intersections as the merge baseline on
    sampled edges (the correctness half of Table IX).

    Runs on the engine selected with ``--cam-engine`` (default: the
    vectorized batch engine; ``audit`` additionally replays a sampled
    fraction of episodes through the cycle-accurate shadow and asserts
    bit-exact agreement)."""
    graph = power_law(500, 2000, triangle_fraction=0.4, seed=11)
    intersector = CamIntersector(
        **engine_kwargs(cam_engine, audit_sample)
    )
    verified = run_once(
        benchmark,
        lambda: verify_functional_equivalence(
            graph, sample_edges=8, intersector=intersector
        ),
    )
    assert verified >= 6
    if cam_engine == "audit":
        report = intersector.session.audit_report
        assert report.passed, report.summary()


def test_batch_engine_speedup(benchmark, record_text):
    """Wall-clock speedup of the batch engine over the cycle-accurate
    simulator on the Table IX functional-equivalence workload.

    Both engines run the identical sampled-edge intersection workload
    and (by the equivalence guarantee) report identical simulated cycle
    counts; only the wall-clock differs. The measured ratio is archived
    under benchmarks/results/ as the fast path's headline number."""
    graph = power_law(500, 2000, triangle_fraction=0.4, seed=11)

    def run(engine: str):
        intersector = CamIntersector(engine=engine)
        start = time.perf_counter()
        verified = verify_functional_equivalence(
            graph, sample_edges=8, intersector=intersector
        )
        elapsed = time.perf_counter() - start
        return verified, intersector.session.cycle, elapsed

    cycle_verified, cycle_cycles, cycle_s = run("cycle")
    batch_verified, batch_cycles, batch_s = benchmark.pedantic(
        lambda: run("batch"), iterations=1, rounds=1
    )
    assert batch_verified == cycle_verified
    assert batch_cycles == cycle_cycles
    speedup = cycle_s / batch_s
    record_text(
        "batch_engine_speedup",
        "\n".join([
            "batch engine vs cycle-accurate simulator",
            "(Table IX functional-equivalence workload: power_law(500, 2000),"
            " 8 sampled edges)",
            "",
            f"cycle engine : {cycle_s:8.3f} s  ({cycle_cycles} simulated cycles)",
            f"batch engine : {batch_s:8.3f} s  ({batch_cycles} simulated cycles)",
            f"speedup      : {speedup:8.1f} x  (identical results and cycle"
            " counts)",
        ]),
    )
    assert speedup >= 20.0, f"batch engine only {speedup:.1f}x faster"
