"""Table VI: CAM block evaluation with different sizes (32..512).

Measures update/search latency by simulating real blocks at every
paper size, combines the measured initiation interval with the
calibrated 300 MHz block clock for the throughput rows, and compares
LUT/DSP/frequency against the paper's columns.
"""

import pytest
from conftest import run_once

from repro.bench.experiments import PAPER_TABLE_VI, table06_block
from repro.core import measure_block

SIZES = (32, 64, 128, 256, 512)


def test_table06_block(benchmark, record_exhibit):
    table = run_once(benchmark, lambda: table06_block(SIZES))
    record_exhibit("table06_block", table)

    for size in SIZES:
        report = measure_block(size, data_width=32)
        paper = PAPER_TABLE_VI[size]
        # Latencies must match the paper exactly (cycle-accurate model).
        assert report.update_latency == paper["update"], size
        assert report.search_latency == paper["search"], size
        # Throughputs: 16 words per 512-bit beat at 300 MHz = 4800.
        assert report.update_throughput_mops == pytest.approx(paper["up_tput"])
        assert report.search_throughput_mops == pytest.approx(paper["se_tput"])
        assert report.frequency_mhz == pytest.approx(paper["freq"])
        # LUTs come from the calibrated model -- exact at anchors.
        assert report.resources.lut == paper["lut"], size
        assert report.resources.dsp == size
        assert report.resources.bram == 0
        # Utilisation stays tiny, the paper's headline.
        assert report.lut_utilisation < 0.001
