"""Figure 5 / section V-A: set-intersection complexity, measured.

The paper's analytical claim: merging two sorted lists of lengths n
and m costs O(n + m) sequential comparisons, while storing the longer
list in the CAM and streaming the shorter one costs O(n) searches
(answered in parallel across groups). This bench *measures* both on
real engines -- the merge step counter and the cycle-accurate CAM --
across a sweep of list-length ratios, and checks the crossover
structure: the CAM's advantage grows with the longer list's length and
is greatest for asymmetric pairs (the hub pattern of Table IX).
"""

import numpy as np
from conftest import run_once

from repro.apps.tc import CamIntersector, merge_intersect
from repro.bench.tables import TableData


def measure_pair(engine, rng, longer_len, shorter_len):
    longer = np.unique(rng.integers(0, 4 * longer_len, size=longer_len))
    shorter = np.unique(rng.integers(0, 4 * longer_len, size=shorter_len))
    expected, merge_steps = merge_intersect(
        sorted(longer.tolist()), sorted(shorter.tolist())
    )
    common, cam_cycles = engine.intersect(longer.tolist(), shorter.tolist())
    assert common == expected
    return merge_steps, cam_cycles


def build_table() -> TableData:
    engine = CamIntersector(total_entries=512, block_size=128)
    rng = np.random.default_rng(2025)
    rows = []
    for longer_len, shorter_len in [
        (32, 32), (128, 128), (384, 384),
        (384, 32), (384, 8), (448, 4),
    ]:
        merge_steps, cam_cycles = measure_pair(
            engine, rng, longer_len, shorter_len
        )
        rows.append([
            longer_len, shorter_len,
            merge_steps, cam_cycles,
            round(merge_steps / cam_cycles, 2),
        ])
    return TableData(
        title="Section V-A: merge O(n+m) vs CAM O(n), measured",
        headers=["longer n", "shorter m", "merge steps", "CAM cycles",
                 "ratio"],
        rows=rows,
        notes=["CAM cycles include regroup + load + parallel search on "
               "the cycle-accurate unit; merge steps are the baseline's "
               "II=1 comparison count"],
    )


def test_fig05_intersection_complexity(benchmark, record_exhibit):
    table = run_once(benchmark, build_table)
    record_exhibit("fig05_intersection_complexity", table)

    by_shape = {(row[0], row[1]): row[4] for row in table.rows}
    # The CAM wins at every shape.
    assert all(row[4] > 1.0 for row in table.rows)
    # Asymmetric (hub) pairs show the largest advantage: the long list
    # loads at 16 words/cycle while the merge walks it element-wise.
    assert by_shape[(448, 4)] > by_shape[(384, 384)]
    assert by_shape[(384, 8)] > by_shape[(128, 128)]
    # Structural subtlety the measurement exposes: a symmetric pair
    # whose lists span several blocks loses group parallelism (M drops
    # toward 1), so (384, 384) beats the merge by *less* than
    # (128, 128), which still enjoys M = 4. The paper's O(n) claim
    # assumes M groups remain available.
    assert by_shape[(128, 128)] > by_shape[(384, 384)]
