"""Shared helpers for the paper-exhibit benchmarks.

Each benchmark regenerates one table/figure of the paper, times it via
pytest-benchmark, prints the rendered rows, and archives the output
under ``benchmarks/results/`` so EXPERIMENTS.md can reference a
reproducible artefact.

Every benchmark module additionally emits a machine-readable manifest
(``benchmarks/results/BENCH_<module>.json``, schema
``repro.bench.manifest/v1``): per-test wall timings, the telemetry
metrics collected during the run, and version/git provenance. See
``docs/observability.md`` for the schema.
"""

from __future__ import annotations

import os
import time
from collections import defaultdict
from typing import Dict

import pytest

from repro import obs

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: module name -> {test name -> wall seconds}, filled by the autouse timer.
_MODULE_TIMINGS: Dict[str, Dict[str, float]] = defaultdict(dict)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running benchmark (deselect with -m 'not slow')"
    )
    # Collect metrics (not spans) across the whole benchmark run so the
    # manifests carry the telemetry the instrumented code paths report.
    obs.reset()
    obs.enable(tracing=False)


@pytest.fixture(autouse=True)
def _bench_timer(request):
    """Record per-test wall time for the module's run manifest."""
    start = time.perf_counter()
    yield
    module = getattr(request.module, "__name__", "unknown")
    _MODULE_TIMINGS[module][request.node.name] = time.perf_counter() - start


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<module>.json`` manifest per benchmark module."""
    if not _MODULE_TIMINGS:
        return
    config = {
        "cam_engine": session.config.getoption("--cam-engine", default=None),
        "audit_sample": session.config.getoption("--audit-sample",
                                                 default=None),
        "exitstatus": int(exitstatus),
    }
    # The registry is process-global, so every module manifest carries
    # the full run's metrics snapshot alongside its own timings.
    snapshot = obs.metrics().snapshot()
    for module, timings in sorted(_MODULE_TIMINGS.items()):
        name = module[len("bench_"):] if module.startswith("bench_") else module
        manifest = obs.build_manifest(
            name=name,
            config=dict(config, module=module),
            timings=timings,
            metrics=snapshot,
        )
        obs.write_manifest(manifest, RESULTS_DIR)
    obs.disable()


@pytest.fixture
def cam_engine(request) -> str:
    """Execution engine selected via ``--cam-engine`` (default: batch)."""
    return request.config.getoption("--cam-engine")


@pytest.fixture
def audit_sample(request) -> float:
    """Episode sampling rate selected via ``--audit-sample``."""
    return request.config.getoption("--audit-sample")


def engine_kwargs(engine: str, sample: float) -> dict:
    """Session keyword arguments for an engine-parameterised harness."""
    kwargs = {"engine": engine}
    if engine == "audit":
        kwargs.update(audit_sample=sample, audit_seed=0, strict=True)
    return kwargs


@pytest.fixture
def record_text(capsys):
    """Archive free-form text under benchmarks/results and echo it."""

    def _record(name: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text.rstrip("\n") + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _record


@pytest.fixture
def record_exhibit(capsys):
    """Print an exhibit and archive its text under benchmarks/results."""

    def _record(name: str, table) -> None:
        text = table.render()
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _record


def run_once(benchmark, fn):
    """Time ``fn`` with a single measured round (exhibits are heavy)."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
