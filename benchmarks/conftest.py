"""Shared helpers for the paper-exhibit benchmarks.

Each benchmark regenerates one table/figure of the paper, times it via
pytest-benchmark, prints the rendered rows, and archives the output
under ``benchmarks/results/`` so EXPERIMENTS.md can reference a
reproducible artefact.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_exhibit(capsys):
    """Print an exhibit and archive its text under benchmarks/results."""

    def _record(name: str, table) -> None:
        text = table.render()
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _record


def run_once(benchmark, fn):
    """Time ``fn`` with a single measured round (exhibits are heavy)."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
