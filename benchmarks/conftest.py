"""Shared helpers for the paper-exhibit benchmarks.

Each benchmark regenerates one table/figure of the paper, times it via
pytest-benchmark, prints the rendered rows, and archives the output
under ``benchmarks/results/`` so EXPERIMENTS.md can reference a
reproducible artefact.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running benchmark (deselect with -m 'not slow')"
    )


@pytest.fixture
def cam_engine(request) -> str:
    """Execution engine selected via ``--cam-engine`` (default: batch)."""
    return request.config.getoption("--cam-engine")


@pytest.fixture
def audit_sample(request) -> float:
    """Episode sampling rate selected via ``--audit-sample``."""
    return request.config.getoption("--audit-sample")


def engine_kwargs(engine: str, sample: float) -> dict:
    """Session keyword arguments for an engine-parameterised harness."""
    kwargs = {"engine": engine}
    if engine == "audit":
        kwargs.update(audit_sample=sample, audit_seed=0, strict=True)
    return kwargs


@pytest.fixture
def record_text(capsys):
    """Archive free-form text under benchmarks/results and echo it."""

    def _record(name: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text.rstrip("\n") + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _record


@pytest.fixture
def record_exhibit(capsys):
    """Print an exhibit and archive its text under benchmarks/results."""

    def _record(name: str, table) -> None:
        text = table.render()
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _record


def run_once(benchmark, fn):
    """Time ``fn`` with a single measured round (exhibits are heavy)."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
