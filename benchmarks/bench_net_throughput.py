"""Pipelined vs naive network client on the Table IX probe stream.

The wire protocol multiplexes requests by id, so a client can keep
hundreds of lookups in flight over one TCP connection. This benchmark
quantifies what that buys: the same adjacency-probe stream (the
workload behind Table IX and ``bench_service_scaling``) is driven
through

- the **naive** client (``pipelined=False``): one request per round
  trip, the classic stop-and-wait RPC pattern, and
- the **pipelined** client: a window of concurrent in-flight lookups
  over the same single connection.

Both talk to the same in-process loopback server wrapping the same
sharded CAM, so the only variable is wire-level concurrency. The
archived artefact asserts the pipelined client sustains >= 5x the
naive client's request rate (the ISSUE acceptance bar); loopback RTT
is microseconds, so the real-network gap would be far larger.
"""

import asyncio

import pytest

from conftest import run_once

from repro.core import unit_for_entries
from repro.net import CamClient, CamServer
from repro.service import CamService, ShardedCam
from repro.service.workload import table09_probe_stream

SHARDS = 2
ENTRIES_PER_SHARD = 1024
#: Probes per measured leg (the naive leg pays a full RTT per probe).
NAIVE_PROBES = 400
PIPELINED_PROBES = 4000
#: In-flight window for the pipelined leg.
WINDOW = 128
#: The acceptance bar: pipelining must buy at least this much.
MIN_SPEEDUP = 5.0


def make_cam():
    config = unit_for_entries(ENTRIES_PER_SHARD, block_size=64,
                              data_width=32, bus_width=512)
    return ShardedCam(config, shards=SHARDS, policy="hash", engine="batch")


async def measure(probes):
    """Seed one server, then time both client modes against it."""
    cam = make_cam()
    # A near-zero batch window keeps per-request latency honest for the
    # naive (one-at-a-time) leg; the pipelined leg coalesces anyway.
    service = CamService(cam, max_delay_s=0.0002, max_batch=WINDOW)
    await service.start()
    server = CamServer(service, port=0)
    await server.start()
    loop = asyncio.get_running_loop()
    try:
        host, port = server.address
        stored, _ = table09_probe_stream(cam.capacity, seed=3)
        async with CamClient(host, port) as seeder:
            for start in range(0, len(stored), 64):
                await seeder.insert(stored[start:start + 64])

        async with CamClient(host, port, pipelined=False) as naive:
            started = loop.time()
            hits_naive = 0
            for key in probes[:NAIVE_PROBES]:
                response = await naive.lookup(key)
                hits_naive += int(response.result.hit)
            naive_s = loop.time() - started
        naive_rps = NAIVE_PROBES / naive_s

        async with CamClient(host, port, pipelined=True) as fast:
            window = asyncio.Semaphore(WINDOW)

            async def probe(key):
                async with window:
                    return int((await fast.lookup(key)).result.hit)

            started = loop.time()
            flags = await asyncio.gather(*[
                probe(key) for key in probes[:PIPELINED_PROBES]
            ])
            pipelined_s = loop.time() - started
        pipelined_rps = PIPELINED_PROBES / pipelined_s

        # same answers on the shared prefix, no decode trouble
        assert sum(flags[:NAIVE_PROBES]) == hits_naive
        assert server.stats.decode_errors == 0
        return {
            "stored": len(stored),
            "naive_s": naive_s,
            "naive_rps": naive_rps,
            "pipelined_s": pipelined_s,
            "pipelined_rps": pipelined_rps,
            "speedup": pipelined_rps / naive_rps,
            "hit_rate": sum(flags) / len(flags),
        }
    finally:
        await server.stop()
        await service.stop()


@pytest.mark.slow
def test_pipelined_client_beats_naive_by_5x(benchmark, record_text):
    _, probes = table09_probe_stream(
        make_cam().capacity, seed=3, max_probes=PIPELINED_PROBES
    )
    result = run_once(benchmark, lambda: asyncio.run(measure(probes)))

    assert result["speedup"] >= MIN_SPEEDUP, (
        f"pipelined client achieved only {result['speedup']:.1f}x the "
        f"naive client ({result['pipelined_rps']:,.0f} vs "
        f"{result['naive_rps']:,.0f} req/s); the wire pipeline is "
        "supposed to hide the round trip"
    )

    lines = [
        "network client throughput -- Table IX adjacency-probe stream",
        f"(loopback, {SHARDS} shards x {ENTRIES_PER_SHARD} entries, "
        f"{result['stored']} stored words, one TCP connection each)",
        "",
        f"{'client':>10s} {'probes':>7s} {'wall s':>8s} "
        f"{'req/s':>10s}",
        f"{'naive':>10s} {NAIVE_PROBES:>7d} {result['naive_s']:>8.3f} "
        f"{result['naive_rps']:>10,.0f}",
        f"{'pipelined':>10s} {PIPELINED_PROBES:>7d} "
        f"{result['pipelined_s']:>8.3f} "
        f"{result['pipelined_rps']:>10,.0f}",
        "",
        f"speedup: {result['speedup']:.1f}x "
        f"(window {WINDOW}, bar >= {MIN_SPEEDUP:.0f}x)   "
        f"hit rate: {result['hit_rate']:.3f}",
    ]
    record_text("net_throughput", "\n".join(lines))
