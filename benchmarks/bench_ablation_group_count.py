"""Ablation: multi-query group count vs search throughput.

Sweeps the runtime group count M of one unit and measures, in the
cycle simulator, the wall-cycle cost of a fixed search batch. The
paper's multi-query claim is that throughput scales ~linearly with M
(one key per group per cycle) while per-group capacity shrinks by the
replication factor -- both ends of the trade are asserted here.
"""

from conftest import run_once

from repro.bench.tables import TableData
from repro.core import open_session, unit_for_entries

BATCH = 128


def build_table() -> TableData:
    config = unit_for_entries(
        512, block_size=64, data_width=32, bus_width=512, default_groups=1
    )
    session = open_session(config, "cycle")
    rows = []
    for m in (1, 2, 4, 8):
        session.set_groups(m)
        stored = list(range(min(48, session.capacity)))
        session.update(stored)
        keys = [stored[i % len(stored)] for i in range(BATCH)]
        results = session.search(keys)
        assert all(result.hit for result in results)
        cycles = session.last_search_stats.cycles
        rows.append([
            m,
            session.capacity,
            cycles,
            round(BATCH / cycles, 2),
        ])
        session.reset()
    return TableData(
        title=f"Ablation: group count vs throughput ({BATCH}-key batch)",
        headers=["M (groups)", "entries/group", "cycles", "keys/cycle"],
        rows=rows,
        notes=["replicated mode: every group stores the full content, "
               "so capacity divides by M while throughput multiplies"],
    )


def test_ablation_group_count(benchmark, record_exhibit):
    table = run_once(benchmark, build_table)
    record_exhibit("ablation_group_count", table)

    cycles = {row[0]: row[2] for row in table.rows}
    capacity = {row[0]: row[1] for row in table.rows}
    # Throughput scales: 8 groups finish the batch much faster than 1.
    assert cycles[8] * 4 < cycles[1]
    assert cycles[2] < cycles[1]
    # Capacity shrinks by exactly the replication factor.
    for m in (1, 2, 4, 8):
        assert capacity[m] == 512 // m
    # Near-ideal scaling at the limit: batch/M + latency + slack.
    latency = 7
    assert cycles[8] <= BATCH // 8 + latency + 4
