"""Ablation: key width vs lanes, latency and resources (extension).

The paper's entries cap at one slice's 48 bits. The wide-word
extension (DESIGN.md section 5) spans keys across parallel lanes with
AND-merged match vectors; this bench sweeps the key width and verifies
the composition's costs on the cycle-accurate model: latency stays
flat (lanes run in lockstep) while DSP cost scales with the lane
count -- widening a CAM key is linear in resources, free in time.
"""

from conftest import run_once

from repro.bench.tables import TableData
from repro.core import WideCamSession, open_session, unit_for_entries

CAPACITY = 32


def narrow_reference():
    """48-bit single-lane baseline measurements."""
    session = open_session(unit_for_entries(
        CAPACITY, block_size=16, data_width=48, bus_width=128
    ), "cycle")
    session.update([123])
    result = session.search_one(123)
    assert result.hit
    return session.unit.search_latency, session.unit.resources().dsp


def measure(width: int):
    cam = WideCamSession(CAPACITY, width, block_size=16, bus_width=128)
    probe = (1 << (width - 1)) | 0xABC
    cam.update([probe])
    result = cam.search_one(probe)
    assert result.hit and result.address == 0
    assert not cam.contains(probe ^ 1)
    assert not cam.contains(probe ^ (1 << (width - 1)))
    return cam


def build_table() -> TableData:
    rows = []
    base_latency, base_dsp = narrow_reference()
    rows.append([48, 1, base_latency, base_dsp])
    for width in (96, 144, 192):
        cam = measure(width)
        rows.append([
            width,
            cam.num_lanes,
            cam.search_latency,
            cam.resources().dsp,
        ])
    return TableData(
        title=f"Ablation: key width vs lanes ({CAPACITY}-entry CAM)",
        headers=["key bits", "lanes", "search latency", "DSPs"],
        rows=rows,
        notes=["lanes run in lockstep: latency is width-independent, "
               "DSP cost is lanes x capacity"],
    )


def test_ablation_wide_keys(benchmark, record_exhibit):
    table = run_once(benchmark, build_table)
    record_exhibit("ablation_wide_keys", table)

    latencies = {row[0]: row[2] for row in table.rows}
    dsps = {row[0]: row[3] for row in table.rows}
    # Latency flat across widths.
    assert len(set(latencies.values())) == 1
    # DSPs scale exactly with the lane count.
    assert dsps[96] == 2 * CAPACITY
    assert dsps[192] == 4 * CAPACITY
    assert dsps[48] == CAPACITY
