"""Ablation: latency/resource crossover against the baseline families.

Sweeps CAM capacity across the functional baseline models (register,
LUTRAM, BRAM, DSP cascade) and our DSP unit, reporting combined
update+search latency and the dominant resource. This regenerates the
qualitative story behind Figure 1/Table I as a quantitative sweep: the
update-heavy designs (LUTRAM/BRAM) are fine for static rule sets but
lose badly on dynamic workloads, the DSP cascade searches slowly at
size, and our design keeps both latencies flat.
"""

from conftest import run_once

from repro.baselines import BramCam, DspCascadeCam, LutRamCam, RegisterCam
from repro.bench.tables import TableData
from repro.core import unit_for_entries

SIZES = (128, 512, 2048)
DATA_WIDTH = 32


def our_latencies(capacity: int):
    config = unit_for_entries(
        capacity, block_size=128 if capacity >= 128 else capacity,
        data_width=DATA_WIDTH,
    )
    return config.update_latency, config.search_latency


def build_table() -> TableData:
    rows = []
    for capacity in SIZES:
        for family in (RegisterCam, LutRamCam, BramCam, DspCascadeCam):
            cost = family(capacity, DATA_WIDTH).cost()
            rows.append([
                capacity,
                family.__name__,
                cost.update_latency,
                cost.search_latency,
                cost.update_latency + cost.search_latency,
                cost.frequency_mhz,
            ])
        update, search = our_latencies(capacity)
        rows.append([
            capacity, "DspCamUnit (ours)", update, search,
            update + search, 300.0 if capacity <= 2048 else 265.0,
        ])
    return TableData(
        title="Ablation: dynamic-workload latency across CAM families",
        headers=["entries", "design", "update cy", "search cy",
                 "update+search", "MHz"],
        rows=rows,
        notes=["update+search is the per-item cost of a dynamic workload "
               "(insert then query), the paper's motivating access pattern"],
    )


def test_ablation_baseline_crossover(benchmark, record_exhibit):
    table = run_once(benchmark, build_table)
    record_exhibit("ablation_baseline_crossover", table)

    by_design = {}
    for capacity, design, update, search, combined, _mhz in table.rows:
        by_design.setdefault(design, {})[capacity] = (update, search, combined)

    ours = by_design["DspCamUnit (ours)"]
    # Our combined latency is flat in size (6 + 7/8).
    assert {ours[size][2] for size in SIZES} <= {13, 14}
    # LUTRAM/BRAM updates dwarf ours at every size.
    for size in SIZES:
        assert by_design["LutRamCam"][size][0] > 5 * ours[size][0]
        assert by_design["BramCam"][size][0] > 50 * ours[size][0]
    # The DSP cascade's search latency explodes with size; ours doesn't.
    assert by_design["DspCascadeCam"][2048][1] > 5 * ours[2048][1]
    # The brute-force register CAM is the only lower-latency design and
    # only because its cost model ignores its frequency collapse --
    # check the frequency column records that collapse.
    register_mhz = [row[5] for row in table.rows
                    if row[1] == "RegisterCam"]
    assert register_mhz[-1] < 300.0
