"""Ablation: CAM capacity vs triangle-counting speedup.

The case study fixes the CAM at 2K entries to fit one SLR next to the
baseline. This bench sweeps the unit capacity in the TC cost model and
shows where capacity matters: hub-heavy graphs keep tiling long lists
through a small CAM (multiple passes), so their speedup grows with
capacity until the hubs fit, while road-style graphs are insensitive.
"""

from conftest import run_once

from repro.apps.tc import CamTriangleCounter, MergeTriangleCounter
from repro.bench.tables import TableData
from repro.core import unit_for_entries
from repro.graph import get_dataset

CAPACITIES = (256, 512, 1024, 2048, 4096)
DATASETS = ("as20000102", "roadNet-TX")


def build_table() -> TableData:
    merge = MergeTriangleCounter()
    graphs = {
        name: get_dataset(name).standin(max_edges=40_000, seed=0).graph
        for name in DATASETS
    }
    baseline_ms = {
        name: merge.cost(graph).time_ms for name, graph in graphs.items()
    }
    rows = []
    for capacity in CAPACITIES:
        cam = CamTriangleCounter(config=unit_for_entries(
            capacity, block_size=128, data_width=32, bus_width=512
        ))
        row = [capacity]
        for name in DATASETS:
            cost = cam.cost(graphs[name])
            row.append(round(baseline_ms[name] / cost.time_ms, 2))
            row.append(cost.tiled_edges)
        rows.append(row)
    headers = ["CAM entries"]
    for name in DATASETS:
        headers.extend([f"{name} speedup", f"{name} tiled edges"])
    return TableData(
        title="Ablation: CAM capacity vs TC speedup",
        headers=headers,
        rows=rows,
        notes=["tiled edges = edges whose longer list exceeds the CAM "
               "and is processed in multiple passes"],
    )


def test_ablation_tc_capacity(benchmark, record_exhibit):
    table = run_once(benchmark, build_table)
    record_exhibit("ablation_tc_capacity", table)

    as_speedups = [row[1] for row in table.rows]
    as_tiled = [row[2] for row in table.rows]
    road_speedups = [row[3] for row in table.rows]
    road_tiled = [row[4] for row in table.rows]

    # Hub-heavy: capacity helps until the hubs fit, then plateaus.
    assert as_speedups[-1] >= as_speedups[0]
    assert as_tiled[0] > 0, "small CAM must tile the AS hubs"
    assert as_tiled[-1] == 0, "4K entries fit every AS hub list"
    # Road graphs never tile and barely notice capacity.
    assert all(tiled == 0 for tiled in road_tiled)
    assert max(road_speedups) - min(road_speedups) < 0.5
