"""Table V: CAM cell evaluation.

Drives a single DSP-backed cell in the cycle simulator for each of the
three CAM types and checks the paper's exact cell-level numbers:
1-cycle update, 2-cycle search, one DSP and nothing else, identical
across binary/ternary/range configurations.
"""

from conftest import run_once

from repro.bench.experiments import table05_cell
from repro.core import CamType, measure_cell


def test_table05_cell(benchmark, record_exhibit):
    table = run_once(benchmark, table05_cell)
    record_exhibit("table05_cell", table)

    reports = {cam_type: measure_cell(cam_type) for cam_type in CamType}
    for cam_type, report in reports.items():
        assert report.update_latency == 1, cam_type
        assert report.search_latency == 2, cam_type
        assert report.resources.dsp == 1, cam_type
        assert report.resources.lut == 0, cam_type
        assert report.resources.bram == 0, cam_type
    # "The configuration of the OPMODE and ALUMODE does not change the
    # resource utilization of the memory cell."
    assert len({r.resources for r in reports.values()}) == 1
