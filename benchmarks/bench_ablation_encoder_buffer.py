"""Ablation: the encoder output buffer (DESIGN.md section 5).

The paper inserts an extra register after the block encoder at size
>= 256 (and unit size >= 2K) "to optimize the implementation timing",
trading one cycle of search latency for frequency. This bench measures
both sides of that trade on the cycle model + timing model: the
buffered block keeps the 300 MHz target where the unbuffered large
block would throttle, and the latency penalty never affects throughput
(initiation interval stays 1).
"""

from conftest import run_once

from repro.bench.tables import TableData
from repro.core import BlockConfig, CamBlock, CellConfig, open_session, unit_for_entries
from repro.core import binary_entry
from repro.sim import Simulator


def measure_latency(block_size: int, buffered: bool) -> int:
    config = BlockConfig(
        cell=CellConfig(data_width=32),
        block_size=block_size,
        bus_width=512,
        output_buffer=buffered,
    )
    block = CamBlock(config)
    sim = Simulator(block)
    block.issue_update([binary_entry(42, 32)])
    sim.step()
    block.issue_search(42)
    return sim.run_until(lambda: block.result_valid, 12)


def measure_burst_cycles(buffered: bool) -> int:
    config = unit_for_entries(256, block_size=64, data_width=32)
    from dataclasses import replace
    config = replace(config, block=config.block.with_buffer(buffered))
    session = open_session(config, "cycle")
    session.update(list(range(64)))
    session.search(list(range(64)))
    return session.last_search_stats.cycles


def build_table() -> TableData:
    rows = []
    for size in (64, 128, 256, 512):
        rows.append([
            size,
            measure_latency(size, buffered=False),
            measure_latency(size, buffered=True),
        ])
    return TableData(
        title="Ablation: encoder output buffer (search latency in cycles)",
        headers=["block size", "unbuffered", "buffered"],
        rows=rows,
        notes=["buffer costs exactly 1 cycle of latency at any size; "
               "the paper enables it at size >= 256 to hold 300 MHz"],
    )


def test_ablation_encoder_buffer(benchmark, record_exhibit):
    table = run_once(benchmark, build_table)
    record_exhibit("ablation_encoder_buffer", table)

    for _size, unbuffered, buffered in table.rows:
        assert buffered == unbuffered + 1

    # The latency penalty does not change pipelined throughput.
    plain = measure_burst_cycles(buffered=False)
    with_buffer = measure_burst_cycles(buffered=True)
    assert with_buffer - plain <= 2, (
        "II=1 means a 64-search burst grows by ~the 1-cycle latency only"
    )

    # The automatic policy matches the paper's threshold.
    assert not BlockConfig(block_size=128).buffered
    assert BlockConfig(block_size=256).buffered
