"""Table I: survey of recent CAM designs on FPGA.

Regenerates the survey with our design's row produced from the models
(not transcribed), and checks the table's headline comparisons: the
largest demonstrated CAM, DSP-dominant resource mix, and the balanced
update/search latency against the prior DSP design.
"""

from conftest import run_once

from repro.baselines.survey import full_survey, ours_entry
from repro.bench.experiments import table01_survey
from repro.fabric import ALVEO_U250, ResourceVector


def test_table01_survey(benchmark, record_exhibit):
    table = run_once(benchmark, table01_survey)
    record_exhibit("table01_survey", table)

    rows = full_survey()
    ours = ours_entry()

    # Largest demonstrated entry count in the survey.
    assert ours.entries == max(row.entries for row in rows)
    # Resource mix: ~79% of the U250's DSPs, a few percent of its LUTs.
    util = ALVEO_U250.utilisation(
        ResourceVector(lut=ours.lut, bram=ours.bram, dsp=ours.dsp)
    )
    assert 0.75 < util["dsp"] < 0.85
    assert util["lut"] < 0.06
    # Balanced latencies vs the prior DSP design's 42-cycle search.
    prior = next(row for row in rows if row.name.startswith("Preusser"))
    assert ours.search_latency < prior.search_latency / 4
    assert ours.update_latency <= 6
    # The paper's exact published row for ours: 9728 x 48 @ 235 MHz.
    assert (ours.entries, ours.width) == (9728, 48)
    assert ours.frequency_mhz == 235.0
    assert ours.dsp == 9728 and ours.bram == 4
