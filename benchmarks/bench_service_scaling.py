"""Shard scaling of the sharded CAM on the Table IX probe workload.

The workload is the adjacency-intersection stream behind Table IX:
hub adjacency sets of a power-law graph are stored in the CAM, then
the probe sides of sampled edges stream through as membership
lookups (each hit is one intersection contribution, exactly what the
triangle-counting pipeline asks the CAM per edge).

Scaling model: each shard keeps the *same* per-shard configuration
(the hardware unit is fixed; sharding adds units side by side).  The
hash policy pins every key to one shard, so a stream of K probes
splits into ~K/N per-shard streams executed in parallel banks; the
service-level cost is the *maximum* shard cycle count.  Doubling the
shards should therefore roughly halve the simulated cycles, and the
archived artefact asserts >= 3x throughput at 4 shards vs 1.

A second, informational section drives the same shard counts through
the async :class:`CamService` front door (admission -> micro-batching
-> merge) to show the full service path stays correct under the
scaling run; wall-clock there is host-noise-bound and not asserted.

A third section measures the replication overhead of R replicas per
shard: writes fan out to every replica (total write work amplifies by
exactly R), while reads are served by the preferred replica only, so
the service-level read cycle count is *unchanged* -- replication buys
failover at write cost, never read cost.  Asserted: write
amplification <= R x 1.05 and identical read cycles at R = 2.
"""

import pytest

from conftest import run_once

from repro.core import unit_for_entries
from repro.service import (
    CamService,
    ShardedCam,
    WorkloadSpec,
    demo_cam,
    drive_service,
)
from repro.service.workload import table09_probe_stream

SHARD_COUNTS = (1, 2, 4)
PROBE_BATCH = 512


def shard_config():
    """The fixed per-shard hardware unit (1024 entries, 64-cell blocks)."""
    return unit_for_entries(1024, block_size=64, data_width=32,
                            bus_width=512)


def table09_probe_workload():
    """Stored hub adjacency + probe stream from the Table IX graph
    (the shared stream also used by ``bench_net_throughput`` and the
    ``loadgen`` CLI, so every layer is measured on the same input)."""
    capacity = shard_config().num_blocks * 64
    return table09_probe_stream(capacity, seed=3)


def run_stream(shards: int, stored, probes) -> dict:
    cam = ShardedCam(shard_config(), shards=shards, policy="hash",
                     engine="batch")
    cam.update(stored)
    hits = 0
    for start in range(0, len(probes), PROBE_BATCH):
        batch = probes[start:start + PROBE_BATCH]
        hits += sum(r.hit for r in cam.search(batch))
    cycles = cam.cycle
    return {
        "shards": shards,
        "cycles": cycles,
        "hits": hits,
        "keys_per_cycle": len(probes) / cycles,
    }


def test_shard_scaling_on_table09_probes(benchmark, record_text):
    stored, probes = table09_probe_workload()

    results = {}
    for shards in SHARD_COUNTS[:-1]:
        results[shards] = run_stream(shards, stored, probes)
    results[SHARD_COUNTS[-1]] = run_once(
        benchmark, lambda: run_stream(SHARD_COUNTS[-1], stored, probes)
    )

    base = results[1]
    # identical answers at every shard count
    assert len({r["hits"] for r in results.values()}) == 1

    lines = [
        "sharded CAM scaling -- Table IX adjacency-probe stream",
        f"({len(stored)} stored hub-neighbor words, {len(probes)} probes, "
        "hash policy, constant per-shard unit: 1024 entries x 32 bit)",
        "",
        f"{'shards':>6s} {'sim cycles':>11s} {'keys/cycle':>11s} "
        f"{'speedup':>8s}",
    ]
    for shards in SHARD_COUNTS:
        row = results[shards]
        speedup = base["cycles"] / row["cycles"]
        lines.append(
            f"{shards:6d} {row['cycles']:11d} "
            f"{row['keys_per_cycle']:11.3f} {speedup:8.2f}"
        )
    record_text("service_shard_scaling", "\n".join(lines))

    speedup_at_4 = base["cycles"] / results[4]["cycles"]
    assert speedup_at_4 >= 3.0, (
        f"4 shards only {speedup_at_4:.2f}x over 1 shard"
    )


REPLICA_COUNTS = (1, 2)
REPLICA_SHARDS = 4


def run_replicated_stream(replicas: int, stored, probes) -> dict:
    cam = ShardedCam(shard_config(), shards=REPLICA_SHARDS, policy="hash",
                     engine="batch", replicas=replicas)

    def total_work() -> int:
        """Simulated cycles summed over every physical unit (all
        replicas of all shards) -- the hardware-work view, as opposed
        to ``cam.cycle`` (the parallel-banks latency view)."""
        work = 0
        for session in cam.sessions:
            members = getattr(session, "replicas", None) or (session,)
            work += sum(member.cycle for member in members)
        return work

    cam.update(stored)
    write_work = total_work()
    write_latency = cam.cycle
    hits = 0
    for start in range(0, len(probes), PROBE_BATCH):
        batch = probes[start:start + PROBE_BATCH]
        hits += sum(r.hit for r in cam.search(batch))
    return {
        "replicas": replicas,
        "hits": hits,
        "write_work": write_work,
        "write_latency": write_latency,
        "read_cycles": cam.cycle - write_latency,
    }


def test_replication_overhead_on_table09_probes(benchmark, record_text):
    stored, probes = table09_probe_workload()

    results = {}
    for replicas in REPLICA_COUNTS[:-1]:
        results[replicas] = run_replicated_stream(replicas, stored, probes)
    results[REPLICA_COUNTS[-1]] = run_once(
        benchmark,
        lambda: run_replicated_stream(REPLICA_COUNTS[-1], stored, probes),
    )

    base = results[1]
    # replication is invisible to results
    assert len({r["hits"] for r in results.values()}) == 1

    lines = [
        "replication overhead -- Table IX adjacency-probe stream",
        f"({len(stored)} stored words, {len(probes)} probes, "
        f"{REPLICA_SHARDS} shards, hash policy, R replicas per shard)",
        "",
        f"{'R':>3s} {'write work':>11s} {'write amp':>10s} "
        f"{'read cycles':>12s} {'read cost':>10s}",
    ]
    for replicas in REPLICA_COUNTS:
        row = results[replicas]
        amplification = row["write_work"] / base["write_work"]
        read_ratio = row["read_cycles"] / base["read_cycles"]
        lines.append(
            f"{replicas:3d} {row['write_work']:11d} {amplification:9.2f}x "
            f"{row['read_cycles']:12d} {read_ratio:9.2f}x"
        )
    record_text("service_replication_overhead", "\n".join(lines))

    for replicas in REPLICA_COUNTS:
        row = results[replicas]
        amplification = row["write_work"] / base["write_work"]
        # fan-out writes cost exactly R units of work (allow 5% slack
        # for the divergence-beat bookkeeping)
        assert amplification <= replicas * 1.05, (
            f"R={replicas}: write amplification {amplification:.3f} "
            f"exceeds {replicas}x"
        )
        # preferred-replica reads: service-level read latency unchanged
        assert row["read_cycles"] == base["read_cycles"], (
            f"R={replicas}: read cycles {row['read_cycles']} != "
            f"baseline {base['read_cycles']}"
        )


@pytest.mark.parametrize("shards", [1, 4])
def test_service_front_door_serves_scaled_cam(benchmark, shards):
    """The async service path stays healthy at both ends of the sweep."""
    import asyncio

    async def scenario():
        cam = demo_cam(entries_per_shard=512, shards=shards,
                       block_size=64)
        async with CamService(cam, max_batch=64,
                              request_timeout_s=10.0) as service:
            return await drive_service(
                service, WorkloadSpec(requests=400, clients=8, seed=5)
            )

    report = run_once(benchmark, lambda: asyncio.run(scenario()))
    assert report.ok == report.requests
    assert report.timeouts == report.shard_failures == 0
    assert report.mean_batch_occupancy >= 1.0
