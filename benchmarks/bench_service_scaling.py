"""Shard scaling of the sharded CAM on the Table IX probe workload.

The workload is the adjacency-intersection stream behind Table IX:
hub adjacency sets of a power-law graph are stored in the CAM, then
the probe sides of sampled edges stream through as membership
lookups (each hit is one intersection contribution, exactly what the
triangle-counting pipeline asks the CAM per edge).

Scaling model: each shard keeps the *same* per-shard configuration
(the hardware unit is fixed; sharding adds units side by side).  The
hash policy pins every key to one shard, so a stream of K probes
splits into ~K/N per-shard streams executed in parallel banks; the
service-level cost is the *maximum* shard cycle count.  Doubling the
shards should therefore roughly halve the simulated cycles, and the
archived artefact asserts >= 3x throughput at 4 shards vs 1.

A second, informational section drives the same shard counts through
the async :class:`CamService` front door (admission -> micro-batching
-> merge) to show the full service path stays correct under the
scaling run; wall-clock there is host-noise-bound and not asserted.
"""

import pytest

from conftest import run_once

from repro.core import unit_for_entries
from repro.graph import power_law
from repro.service import (
    CamService,
    ShardedCam,
    WorkloadSpec,
    demo_cam,
    drive_service,
)

SHARD_COUNTS = (1, 2, 4)
PROBE_BATCH = 512


def shard_config():
    """The fixed per-shard hardware unit (1024 entries, 64-cell blocks)."""
    return unit_for_entries(1024, block_size=64, data_width=32,
                            bus_width=512)


def table09_probe_workload():
    """Stored hub adjacency + probe stream from the Table IX graph."""
    graph = power_law(2000, 12_000, triangle_fraction=0.4, seed=3)
    order = sorted(range(graph.num_vertices), key=graph.degree,
                   reverse=True)
    capacity = shard_config().num_blocks * 64
    stored, seen = [], set()
    for hub in order:
        for neighbor in graph.neighbors(hub):
            value = int(neighbor)
            if value not in seen:
                seen.add(value)
                stored.append(value)
        if len(stored) >= int(capacity * 0.6):
            break
    probes = []
    for u, v in graph.edges():
        side = u if graph.degree(u) <= graph.degree(v) else v
        probes.extend(int(w) for w in graph.neighbors(side))
        if len(probes) >= 16_000:
            break
    return stored, probes


def run_stream(shards: int, stored, probes) -> dict:
    cam = ShardedCam(shard_config(), shards=shards, policy="hash",
                     engine="batch")
    cam.update(stored)
    hits = 0
    for start in range(0, len(probes), PROBE_BATCH):
        batch = probes[start:start + PROBE_BATCH]
        hits += sum(r.hit for r in cam.search(batch))
    cycles = cam.cycle
    return {
        "shards": shards,
        "cycles": cycles,
        "hits": hits,
        "keys_per_cycle": len(probes) / cycles,
    }


def test_shard_scaling_on_table09_probes(benchmark, record_text):
    stored, probes = table09_probe_workload()

    results = {}
    for shards in SHARD_COUNTS[:-1]:
        results[shards] = run_stream(shards, stored, probes)
    results[SHARD_COUNTS[-1]] = run_once(
        benchmark, lambda: run_stream(SHARD_COUNTS[-1], stored, probes)
    )

    base = results[1]
    # identical answers at every shard count
    assert len({r["hits"] for r in results.values()}) == 1

    lines = [
        "sharded CAM scaling -- Table IX adjacency-probe stream",
        f"({len(stored)} stored hub-neighbor words, {len(probes)} probes, "
        "hash policy, constant per-shard unit: 1024 entries x 32 bit)",
        "",
        f"{'shards':>6s} {'sim cycles':>11s} {'keys/cycle':>11s} "
        f"{'speedup':>8s}",
    ]
    for shards in SHARD_COUNTS:
        row = results[shards]
        speedup = base["cycles"] / row["cycles"]
        lines.append(
            f"{shards:6d} {row['cycles']:11d} "
            f"{row['keys_per_cycle']:11.3f} {speedup:8.2f}"
        )
    record_text("service_shard_scaling", "\n".join(lines))

    speedup_at_4 = base["cycles"] / results[4]["cycles"]
    assert speedup_at_4 >= 3.0, (
        f"4 shards only {speedup_at_4:.2f}x over 1 shard"
    )


@pytest.mark.parametrize("shards", [1, 4])
def test_service_front_door_serves_scaled_cam(benchmark, shards):
    """The async service path stays healthy at both ends of the sweep."""
    import asyncio

    async def scenario():
        cam = demo_cam(entries_per_shard=512, shards=shards,
                       block_size=64)
        async with CamService(cam, max_batch=64,
                              request_timeout_s=10.0) as service:
            return await drive_service(
                service, WorkloadSpec(requests=400, clients=8, seed=5)
            )

    report = run_once(benchmark, lambda: asyncio.run(scenario()))
    assert report.ok == report.requests
    assert report.timeouts == report.shard_failures == 0
    assert report.mean_batch_occupancy >= 1.0
