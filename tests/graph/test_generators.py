"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph import (
    erdos_renyi,
    power_law,
    preferential_attachment,
    road_network,
)


def test_erdos_renyi_size_and_determinism():
    a = erdos_renyi(500, 2000, seed=1)
    b = erdos_renyi(500, 2000, seed=1)
    c = erdos_renyi(500, 2000, seed=2)
    assert a.num_vertices == 500
    assert 1500 <= a.num_edges <= 2400
    assert np.array_equal(a.indices, b.indices)
    assert not np.array_equal(a.indices, c.indices)


def test_erdos_renyi_validation():
    with pytest.raises(DatasetError):
        erdos_renyi(1, 5)


def test_power_law_degree_tail():
    graph = power_law(2000, 8000, exponent=2.0, seed=3)
    degrees = graph.degrees
    assert degrees.max() > 5 * degrees.mean(), "needs a heavy tail"
    assert abs(graph.num_edges - 8000) / 8000 < 0.35


def test_power_law_max_degree_cap():
    graph = power_law(2000, 8000, exponent=2.0, max_degree=50, seed=3)
    assert graph.degrees.max() <= 50


def test_power_law_triangle_closing_raises_clustering():
    from repro.graph import count_triangles
    plain = power_law(800, 3000, seed=4)
    closed = power_law(800, 3000, triangle_fraction=0.5, seed=4)
    assert count_triangles(closed) > count_triangles(plain)


def test_power_law_validation():
    with pytest.raises(DatasetError):
        power_law(2, 10)
    with pytest.raises(DatasetError):
        power_law(100, 200, exponent=1.0)


def test_road_network_degrees_are_gridlike():
    graph = road_network(4000, seed=5)
    degrees = graph.degrees[graph.degrees > 0]
    assert 2.0 < degrees.mean() < 4.5
    assert degrees.max() <= 8


def test_road_network_validation():
    with pytest.raises(DatasetError):
        road_network(2)


def test_preferential_attachment_hubs():
    graph = preferential_attachment(2000, 3, seed=6)
    assert graph.num_vertices == 2000
    degrees = graph.degrees
    assert degrees.max() > 10 * degrees.mean()
    # Every non-seed vertex attached with ~m edges.
    assert graph.num_edges >= (2000 - 3) * 3 * 0.9


def test_preferential_attachment_validation():
    with pytest.raises(DatasetError):
        preferential_attachment(5, 0)
    with pytest.raises(DatasetError):
        preferential_attachment(3, 3)


def test_generators_are_deterministic_per_seed():
    for make in (
        lambda s: power_law(300, 900, seed=s),
        lambda s: road_network(300, seed=s),
        lambda s: preferential_attachment(300, 2, seed=s),
    ):
        x, y = make(9), make(9)
        assert np.array_equal(x.indptr, y.indptr)
        assert np.array_equal(x.indices, y.indices)
