"""Unit tests for SNAP edge-list IO."""

import pytest

from repro.errors import DatasetError
from repro.graph import CSRGraph, load_edge_list, save_edge_list


def test_roundtrip(tmp_path):
    graph = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    path = tmp_path / "graph.txt"
    save_edge_list(graph, path, header="test graph")
    loaded = load_edge_list(path)
    assert loaded.num_vertices == graph.num_vertices
    assert loaded.num_edges == graph.num_edges
    assert sorted(loaded.edges()) == sorted(graph.edges())


def test_header_written(tmp_path):
    graph = CSRGraph.from_edges([(0, 1)])
    path = tmp_path / "g.txt"
    save_edge_list(graph, path, header="line one\nline two")
    text = path.read_text()
    assert text.startswith("# line one\n# line two\n")
    assert "# Nodes: 2 Edges: 1" in text


def test_load_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "snap.txt"
    path.write_text("# SNAP style\n\n0 1\n1\t2\n# trailing comment\n")
    graph = load_edge_list(path)
    assert graph.num_edges == 2


def test_load_missing_file():
    with pytest.raises(DatasetError, match="not found"):
        load_edge_list("/nonexistent/file.txt")


def test_load_malformed_line(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0\n")
    with pytest.raises(DatasetError, match="expected 'src dst'"):
        load_edge_list(path)


def test_load_non_integer(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("a b\n")
    with pytest.raises(DatasetError, match="non-integer"):
        load_edge_list(path)


def test_load_empty_file(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_text("# only comments\n")
    with pytest.raises(DatasetError, match="no edges"):
        load_edge_list(path)
