"""Unit tests for the CSR graph container."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph import CSRGraph


def triangle_graph():
    return CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])


def test_from_edges_basic():
    graph = triangle_graph()
    assert graph.num_vertices == 3
    assert graph.num_edges == 3
    assert sorted(graph.neighbors(0).tolist()) == [1, 2]


def test_from_edges_dedupes_and_symmetrises():
    graph = CSRGraph.from_edges([(0, 1), (1, 0), (0, 1)])
    assert graph.num_edges == 1
    assert graph.neighbors(1).tolist() == [0]


def test_self_loops_dropped():
    graph = CSRGraph.from_edges([(0, 0), (0, 1)])
    assert graph.num_edges == 1


def test_empty_graph():
    graph = CSRGraph.from_edges([], num_vertices=5)
    assert graph.num_vertices == 5
    assert graph.num_edges == 0


def test_all_self_loops_yields_empty():
    graph = CSRGraph.from_edges([(1, 1), (2, 2)], num_vertices=4)
    assert graph.num_edges == 0
    assert graph.num_vertices == 4


def test_num_vertices_override():
    graph = CSRGraph.from_edges([(0, 1)], num_vertices=10)
    assert graph.num_vertices == 10
    assert graph.degree(9) == 0


def test_negative_ids_rejected():
    with pytest.raises(DatasetError):
        CSRGraph.from_edges([(-1, 2)])


def test_bad_shape_rejected():
    with pytest.raises(DatasetError):
        CSRGraph.from_edges(np.array([1, 2, 3]))


def test_degrees_and_has_edge():
    graph = triangle_graph()
    assert graph.degrees.tolist() == [2, 2, 2]
    assert graph.has_edge(0, 2)
    assert not graph.has_edge(0, 0)


def test_edges_iterates_each_once():
    graph = triangle_graph()
    assert sorted(graph.edges()) == [(0, 1), (0, 2), (1, 2)]


def test_edge_array_matches_edges():
    graph = CSRGraph.from_edges([(0, 3), (1, 2), (2, 3)])
    array = graph.edge_array()
    assert sorted(map(tuple, array.tolist())) == sorted(graph.edges())
    assert (array[:, 0] < array[:, 1]).all()


def test_validate_rejects_corrupt_indptr():
    graph = triangle_graph()
    with pytest.raises(DatasetError):
        CSRGraph(np.array([0, 5, 2, 6]), graph.indices)


def test_validate_rejects_out_of_range_index():
    with pytest.raises(DatasetError):
        CSRGraph(np.array([0, 1]), np.array([5]))


# ----------------------------------------------------------------------
# orientation
# ----------------------------------------------------------------------
def test_oriented_has_each_edge_once():
    graph = triangle_graph()
    oriented = graph.oriented()
    assert oriented.num_edges == graph.num_edges


def test_oriented_counts_triangles_once():
    """Common oriented neighbours of an oriented edge = triangles at it."""
    graph = triangle_graph()
    oriented = graph.oriented()
    total = 0
    src, dst = oriented.edge_endpoints()
    for u, v in zip(src, dst):
        total += len(
            set(oriented.neighbors(int(u)).tolist())
            & set(oriented.neighbors(int(v)).tolist())
        )
    assert total == 1


def test_oriented_out_degree_bounded_on_star():
    """Degree orientation points edges at the hub, so the hub's
    oriented out-degree collapses to ~0."""
    star = CSRGraph.from_edges([(0, i) for i in range(1, 20)])
    oriented = star.oriented()
    assert oriented.out_degrees[0] == 0
    assert oriented.out_degrees[1:].sum() == 19
