"""Unit tests for the Table IX dataset registry and stand-ins."""

import pytest

from repro.errors import DatasetError
from repro.graph import DATASETS, dataset_names, get_dataset
from repro.graph.triangles import clustering_summary


def test_all_ten_table_ix_datasets_present():
    names = dataset_names()
    assert len(names) == 10
    assert names[0] == "facebook_combined"
    assert names[-1] == "soc-Slashdot0811"


def test_published_stats_recorded():
    fb = get_dataset("facebook_combined")
    assert fb.nodes == 4_039
    assert fb.edges == 88_234
    assert fb.triangles_published == 1_612_010
    assert fb.paper_speedup == pytest.approx(18.7 / 5.054)
    road = get_dataset("roadNet-CA")
    assert road.kind == "road"
    assert road.triangles_published == 120_676


def test_unknown_dataset_raises():
    with pytest.raises(DatasetError, match="unknown dataset"):
        get_dataset("bogus")


def test_standin_scaling():
    spec = get_dataset("roadNet-CA")
    standin = spec.standin(max_edges=20_000, seed=0)
    assert standin.scale < 0.01
    assert standin.graph.num_edges <= 32_000
    # Small dataset at a generous cap: full scale.
    as_spec = get_dataset("as20000102")
    full = as_spec.standin(max_edges=100_000, seed=0)
    assert full.scale == 1.0


def test_standins_are_deterministic():
    spec = get_dataset("facebook_combined")
    a = spec.standin(max_edges=10_000, seed=3).graph
    b = spec.standin(max_edges=10_000, seed=3).graph
    assert a.num_edges == b.num_edges
    assert (a.indices == b.indices).all()


def test_standin_structural_families():
    """Each stand-in must preserve the structural trait that drives its
    Table IX behaviour."""
    road = get_dataset("roadNet-PA").standin(max_edges=15_000, seed=0)
    road_stats = clustering_summary(road.graph)
    assert road_stats["max_degree"] <= 8, "road graphs are near-uniform"

    social = get_dataset("facebook_combined").standin(max_edges=30_000, seed=0)
    social_stats = clustering_summary(social.graph)
    assert social_stats["max_degree"] > 5 * social_stats["avg_degree"]

    dense = get_dataset("ca-cit-HepPh").standin(max_edges=30_000, seed=0)
    dense_stats = clustering_summary(dense.graph)
    assert dense_stats["avg_degree"] > 20, "HepPh is extremely dense"


def test_standin_hub_caps_track_real_graphs():
    """The generators must not produce hubs far heavier than the real
    dataset's (that skews the Table IX cost model; see datasets.py)."""
    spec = get_dataset("amazon0302")
    standin = spec.standin(max_edges=120_000, seed=0)
    stats = clustering_summary(standin.graph)
    # Real amazon0302: max degree 420 on 262k vertices.
    assert stats["max_degree"] <= 100


def test_avg_degree_property():
    spec = get_dataset("ca-cit-HepPh")
    assert spec.avg_degree == pytest.approx(2 * spec.edges / spec.nodes)
