"""Unit tests for triangle counting and the per-edge length analysis."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    count_triangles,
    count_triangles_matrix,
    erdos_renyi,
    per_edge_list_lengths,
    power_law,
)
from repro.graph.triangles import (
    clustering_summary,
    id_oriented_out_degrees,
    per_edge_full_lengths,
)


def k4():
    """Complete graph on 4 vertices: 4 triangles."""
    return CSRGraph.from_edges(
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    )


def test_known_counts():
    assert count_triangles(CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])) == 1
    assert count_triangles(k4()) == 4
    path = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)])
    assert count_triangles(path) == 0


def test_forward_and_matrix_agree():
    for seed in (1, 2, 3):
        graph = power_law(400, 1600, triangle_fraction=0.3, seed=seed)
        assert count_triangles(graph) == count_triangles_matrix(graph)
    graph = erdos_renyi(300, 1500, seed=4)
    assert count_triangles(graph) == count_triangles_matrix(graph)


def test_empty_graph_counts_zero():
    empty = CSRGraph.from_edges([], num_vertices=3)
    assert count_triangles(empty) == 0
    assert count_triangles_matrix(empty) == 0


def test_id_oriented_out_degrees():
    star = CSRGraph.from_edges([(0, i) for i in range(1, 6)])
    out = id_oriented_out_degrees(star)
    # Vertex 0 has the lowest id: keeps all 5 forward neighbours.
    assert out[0] == 5
    assert out[1:].sum() == 0


def test_per_edge_full_lengths_shapes():
    graph = k4()
    longer, shorter = per_edge_full_lengths(graph)
    assert longer.size == graph.num_edges
    assert (longer >= shorter).all()
    # K4 id-oriented out-degrees are 3,2,1,0.
    assert longer.max() == 3
    assert shorter.min() == 0


def test_per_edge_oriented_lengths():
    graph = k4()
    longer, shorter = per_edge_list_lengths(graph.oriented())
    assert longer.size == graph.num_edges
    assert (longer >= shorter).all()


def test_lengths_drive_hub_asymmetry():
    """A star's id-oriented edges all see (hub list, tiny list)."""
    star = CSRGraph.from_edges([(0, i) for i in range(1, 30)])
    longer, shorter = per_edge_full_lengths(star)
    assert (longer == 29).all()
    assert (shorter == 0).all()


def test_clustering_summary_fields():
    summary = clustering_summary(k4())
    assert summary["vertices"] == 4
    assert summary["edges"] == 6
    assert summary["avg_degree"] == pytest.approx(3.0)
    assert summary["max_degree"] == 3
