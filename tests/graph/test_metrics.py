"""Unit tests for the structural graph metrics."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph import (
    CSRGraph,
    degree_profile,
    estimate_tail_exponent,
    gini_coefficient,
    power_law,
    profile_report,
    road_network,
    sample_clustering_coefficient,
)


def test_gini_uniform_is_zero():
    assert gini_coefficient(np.array([5, 5, 5, 5])) == pytest.approx(0.0)


def test_gini_concentrated_is_high():
    concentrated = np.array([0] * 99 + [100])
    assert gini_coefficient(concentrated) > 0.9


def test_gini_empty_and_zero():
    assert gini_coefficient(np.array([])) == 0.0
    assert gini_coefficient(np.zeros(5)) == 0.0


def test_tail_exponent_recovers_zipf():
    rng = np.random.default_rng(1)
    degrees = rng.zipf(2.5, size=20_000)
    alpha = estimate_tail_exponent(degrees)
    assert alpha == pytest.approx(2.5, abs=0.3)


def test_tail_exponent_none_without_tail():
    assert estimate_tail_exponent(np.array([1, 2, 3])) is None


def test_degree_profile_fields():
    graph = CSRGraph.from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
    profile = degree_profile(graph)
    assert profile.vertices == 4
    assert profile.edges == 4
    assert profile.maximum == 3
    assert profile.mean == pytest.approx(2.0)
    assert profile.hub_ratio == pytest.approx(1.5)


def test_degree_profile_empty_rejected():
    with pytest.raises(DatasetError):
        degree_profile(CSRGraph(np.zeros(1, dtype=np.int64),
                                np.empty(0, dtype=np.int64)))


def test_power_law_has_heavier_tail_than_road():
    social = degree_profile(power_law(2000, 8000, exponent=2.1, seed=2))
    road = degree_profile(road_network(2000, seed=2))
    assert social.gini > road.gini
    assert social.hub_ratio > 3 * road.hub_ratio


def test_clustering_of_triangle_rich_graph():
    closed = power_law(500, 2000, triangle_fraction=0.6, seed=3)
    open_graph = road_network(500, seed=3)
    assert sample_clustering_coefficient(closed) > \
        sample_clustering_coefficient(open_graph)


def test_clustering_of_clique_is_one():
    clique = CSRGraph.from_edges(
        [(u, v) for u in range(6) for v in range(u + 1, 6)]
    )
    assert sample_clustering_coefficient(clique) == pytest.approx(1.0)


def test_clustering_of_star_is_zero():
    star = CSRGraph.from_edges([(0, i) for i in range(1, 8)])
    assert sample_clustering_coefficient(star) == pytest.approx(0.0)


def test_profile_report_renders():
    report = profile_report(power_law(300, 900, seed=4))
    assert "|V|=300" in report
    assert "hub ratio" in report
    assert "clustering~" in report
