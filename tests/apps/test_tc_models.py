"""Unit tests for the triangle-counting cost models."""

import pytest

from repro.apps.tc import CamTriangleCounter, MergeTriangleCounter
from repro.graph import CSRGraph, power_law, road_network


def star(leaves=64):
    return CSRGraph.from_edges([(0, i) for i in range(1, leaves + 1)])


# ----------------------------------------------------------------------
# baseline model
# ----------------------------------------------------------------------
def test_merge_cost_empty_graph():
    cost = MergeTriangleCounter().cost(CSRGraph.from_edges([], num_vertices=4))
    assert cost.total_cycles == 0
    assert cost.time_ms == 0


def test_merge_cost_scales_with_list_sums():
    small = MergeTriangleCounter().cost(star(16))
    big = MergeTriangleCounter().cost(star(64))
    # Star edges each merge against the hub list: cost ~ leaves^2.
    assert big.total_cycles > 3 * small.total_cycles


def test_merge_per_edge_includes_overhead():
    model = MergeTriangleCounter(edge_overhead_cycles=10)
    cost = model.cost(star(8))
    assert cost.per_edge_mean >= 10


def test_merge_time_uses_frequency():
    model = MergeTriangleCounter(frequency_mhz=300.0)
    cost = model.cost(star(32))
    assert cost.time_ms == pytest.approx(cost.total_cycles / 300e3)


# ----------------------------------------------------------------------
# CAM model
# ----------------------------------------------------------------------
def test_cam_cost_empty_graph():
    cost = CamTriangleCounter().cost(CSRGraph.from_edges([], num_vertices=4))
    assert cost.total_cycles == 0


def test_cam_beats_merge_on_hub_graph():
    """A star is the CAM's best case: long hub list loads at 16
    words/cycle instead of merging element by element."""
    graph = star(1024)
    cam = CamTriangleCounter().cost(graph)
    merge = MergeTriangleCounter().cost(graph)
    assert merge.total_cycles > 5 * cam.total_cycles


def test_cam_advantage_small_on_road_like_graphs():
    graph = road_network(3000, seed=1)
    cam = CamTriangleCounter().cost(graph)
    merge = MergeTriangleCounter().cost(graph)
    ratio = merge.total_cycles / cam.total_cycles
    assert 1.0 < ratio < 4.0


def test_cam_tiles_oversized_lists():
    """A hub list beyond 2048 entries forces multi-pass processing."""
    graph = star(3000)
    cost = CamTriangleCounter().cost(graph)
    assert cost.tiled_edges == graph.num_edges
    single = CamTriangleCounter().cost(star(2000))
    assert single.tiled_edges == 0


def test_cam_frequency_comes_from_config():
    model = CamTriangleCounter()
    assert model.frequency_mhz == 300.0  # 2048 entries, 32-bit


def test_groups_lookup_divisors():
    model = CamTriangleCounter()
    lookup = model._groups_lookup()
    num_blocks = model.config.num_blocks
    for blocks_per_list in range(1, num_blocks + 1):
        assert num_blocks % lookup[blocks_per_list] == 0
        assert lookup[blocks_per_list] * blocks_per_list <= num_blocks * 2


def test_more_overhead_costs_more():
    graph = power_law(500, 2000, seed=2)
    cheap = CamTriangleCounter(edge_overhead_cycles=2).cost(graph)
    costly = CamTriangleCounter(edge_overhead_cycles=20).cost(graph)
    assert costly.total_cycles > cheap.total_cycles
