"""Unit + property tests for the database operators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.db import (
    CamDistinct,
    CamJoin,
    model_distinct_cycles,
    reference_join,
)
from repro.errors import CapacityError, ConfigError


# ----------------------------------------------------------------------
# join
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def join_engine():
    return CamJoin(total_entries=128, block_size=32)


def test_join_basic(join_engine):
    pairs, stats = join_engine.join([10, 20, 30], [20, 99, 10])
    assert pairs == [(0, 1), (2, 0)]
    assert stats.output_rows == 2
    assert stats.passes == 1
    assert stats.cycles > 0


def test_join_duplicate_build_keys(join_engine):
    """A duplicated build key joins every probe occurrence with every
    build occurrence -- the match vector, not just the priority hit."""
    pairs, _ = join_engine.join([5, 7, 5], [5])
    assert pairs == [(0, 0), (0, 2)]


def test_join_matches_reference(join_engine):
    build = [1, 2, 3, 2, 9]
    probe = [2, 9, 4, 1, 2]
    pairs, _ = join_engine.join(build, probe)
    assert sorted(pairs) == sorted(reference_join(build, probe))


def test_join_tiling(join_engine):
    """A build side bigger than the CAM joins across passes."""
    build = list(range(300))  # capacity 128 -> 3 passes
    probe = [0, 150, 299, 500]
    pairs, stats = join_engine.join(build, probe)
    assert stats.passes == 3
    assert sorted(pairs) == sorted(reference_join(build, probe))


def test_join_empty_probe(join_engine):
    pairs, stats = join_engine.join([1, 2], [])
    assert pairs == []
    assert stats.probe_rows == 0


def test_join_empty_build_rejected(join_engine):
    with pytest.raises(ConfigError, match="build side"):
        join_engine.join([], [1])


@settings(max_examples=15, deadline=None)
@given(
    build=st.lists(st.integers(0, 31), min_size=1, max_size=20),
    probe=st.lists(st.integers(0, 31), min_size=0, max_size=15),
)
def test_join_property_equivalence(build, probe):
    engine = CamJoin(total_entries=64, block_size=16)
    pairs, _ = engine.join(build, probe)
    assert sorted(pairs) == sorted(reference_join(build, probe))


# ----------------------------------------------------------------------
# distinct
# ----------------------------------------------------------------------
def test_distinct_first_seen_order():
    engine = CamDistinct(total_entries=64, block_size=16)
    unique, stats = engine.distinct([3, 1, 3, 2, 1, 1, 4])
    assert unique == [3, 1, 2, 4]
    assert stats.input_rows == 7
    assert stats.unique_rows == 4
    assert stats.cycles > 0


def test_distinct_all_duplicates_cheap():
    engine = CamDistinct(total_entries=64, block_size=16)
    unique, stats = engine.distinct([9] * 20)
    assert unique == [9]
    # Only one insert paid; the rest are search-only.
    assert stats.cycles < 20 * (engine.config.search_latency + 8)


def test_distinct_capacity():
    engine = CamDistinct(total_entries=64, block_size=16)
    with pytest.raises(CapacityError):
        engine.distinct(list(range(100)))


def test_distinct_reset_reuses_engine():
    engine = CamDistinct(total_entries=64, block_size=16)
    engine.distinct([1, 2])
    engine.reset()
    unique, _ = engine.distinct([2, 2, 3])
    assert unique == [2, 3]


@settings(max_examples=15, deadline=None)
@given(values=st.lists(st.integers(0, 40), min_size=0, max_size=30))
def test_distinct_property_equivalence(values):
    engine = CamDistinct(total_entries=64, block_size=16)
    unique, stats = engine.distinct(values)
    expected = list(dict.fromkeys(values))
    assert unique == expected
    assert stats.unique_rows == len(expected)


def test_model_distinct_cycles():
    assert model_distinct_cycles(100, 40, search_latency=7,
                                 update_latency=6) == 100 * 7 + 40 * 6
    assert model_distinct_cycles(0, 0, 7, 6) == 0


def test_measured_cycles_track_model():
    """The real engine's cycles land near the analytic model's."""
    engine = CamDistinct(total_entries=64, block_size=16)
    values = [i % 30 for i in range(60)]
    _, stats = engine.distinct(values)
    modelled = model_distinct_cycles(
        60, 30, engine.config.search_latency, engine.config.update_latency
    )
    assert modelled * 0.8 < stats.cycles < modelled * 2.0
