"""Unit + property tests for the CAM-backed TLB."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.cache import CamTlb
from repro.errors import ConfigError


def make(entries=8):
    return CamTlb(entries=entries, vpn_bits=20, block_size=16)


def test_miss_then_hit():
    tlb = make()
    assert tlb.translate(0x100) is None
    tlb.insert(0x100, 0x42)
    assert tlb.translate(0x100) == 0x42
    assert tlb.stats.hits == 1
    assert tlb.stats.misses == 1


def test_multiple_translations():
    tlb = make()
    mappings = {0x10: 1, 0x20: 2, 0x30: 3}
    for vpn, frame in mappings.items():
        tlb.insert(vpn, frame)
    for vpn, frame in mappings.items():
        assert tlb.translate(vpn) == frame


def test_fifo_eviction():
    tlb = make(entries=8)
    for index in range(8):
        tlb.insert(index, 100 + index)
    assert tlb.full
    tlb.insert(99, 199)  # evicts vpn 0
    assert tlb.translate(0) is None
    assert tlb.translate(99) == 199
    assert tlb.translate(1) == 101
    assert tlb.stats.evictions == 1


def test_reinsert_updates_frame():
    tlb = make()
    tlb.insert(5, 50)
    tlb.insert(5, 77)
    assert tlb.translate(5) == 77
    assert tlb.occupancy == 1
    assert tlb.stats.evictions == 0  # replacement, not capacity eviction


def test_compaction_reclaims_holes():
    """Churn past the cell budget forces a compaction, after which all
    live translations still resolve correctly."""
    tlb = make(entries=8)
    for index in range(30):
        tlb.insert(index, 1000 + index)
    assert tlb.stats.compactions >= 1
    # Last 8 inserted pages are live (FIFO), earlier ones are gone.
    for index in range(22, 30):
        assert tlb.translate(index) == 1000 + index
    assert tlb.translate(0) is None
    assert tlb.occupancy == 8


def test_flush():
    tlb = make()
    tlb.insert(1, 10)
    tlb.flush()
    assert tlb.translate(1) is None
    assert tlb.occupancy == 0


def test_stats_accounting():
    tlb = make()
    tlb.insert(1, 10)
    tlb.translate(1)
    tlb.translate(2)
    stats = tlb.stats
    assert stats.lookups == 2
    assert stats.hit_rate == pytest.approx(0.5)
    assert stats.insertions == 1
    assert stats.cycles > 0


def test_vpn_bits_validation():
    with pytest.raises(ConfigError):
        CamTlb(vpn_bits=0)
    with pytest.raises(ConfigError):
        CamTlb(vpn_bits=49)


@settings(max_examples=10, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["insert", "lookup"]),
                  st.integers(0, 15)),
        max_size=40,
    )
)
def test_tlb_matches_fifo_dict_model(operations):
    """Arbitrary insert/lookup streams agree with an OrderedDict model."""
    from collections import OrderedDict

    tlb = make(entries=4)
    model: "OrderedDict[int, int]" = OrderedDict()
    for op, vpn in operations:
        if op == "insert":
            frame = vpn * 7 + 1
            if vpn in model:
                del model[vpn]
            elif len(model) >= 4:
                model.popitem(last=False)
            model[vpn] = frame
            tlb.insert(vpn, frame)
        else:
            expected = model.get(vpn)
            assert tlb.translate(vpn) == expected
