"""Unit tests for the TCAM packet classifier."""

import pytest

from repro.apps.packet import Packet, PacketClassifier, Rule, compile_rule
from repro.errors import CapacityError, ConfigError


@pytest.fixture(scope="module")
def classifier():
    acl = PacketClassifier(capacity=128, block_size=64)
    acl.add_rule(Rule("block-telnet", "deny", protocol=6, port_range=(23, 23)))
    acl.add_rule(Rule("web", "allow", protocol=6, port_range=(80, 443)))
    acl.add_rule(Rule("dns", "allow", protocol=17, port_range=(53, 53)))
    acl.add_rule(Rule("from-dmz", "allow", src_tag=7))
    acl.add_rule(Rule("default", "deny"))
    return acl


def packet(protocol=6, src=1, dst=2, port=80):
    return Packet(protocol=protocol, src_tag=src, dst_tag=dst, dst_port=port)


def test_priority_order(classifier):
    assert classifier.classify(packet(port=23)).name == "block-telnet"
    assert classifier.classify(packet(port=100)).name == "web"
    assert classifier.classify(packet(protocol=17, port=53)).name == "dns"
    assert classifier.classify(packet(protocol=17, port=99)).name == "default"


def test_wildcard_src(classifier):
    # UDP from the DMZ on a random port: matches the src rule.
    assert classifier.classify(
        packet(protocol=17, src=7, port=9999)
    ).name == "from-dmz"


def test_batch_classification(classifier):
    packets = [packet(port=23), packet(port=200), packet(protocol=1, port=1)]
    rules = classifier.classify_batch(packets)
    assert [rule.name for rule in rules] == ["block-telnet", "web", "default"]


def test_port_range_expansion_cost():
    # [80, 443] expands to multiple aligned chunks.
    entries = compile_rule(Rule("web", "allow", port_range=(80, 443)))
    assert len(entries) > 1
    exact = compile_rule(Rule("ssh", "allow", port_range=(22, 22)))
    assert len(exact) == 1


def test_rule_validation():
    with pytest.raises(ConfigError):
        Rule("bad", "deny", protocol=300)
    with pytest.raises(ConfigError):
        Rule("bad", "deny", src_tag=1 << 12)
    with pytest.raises(ConfigError):
        Rule("bad", "deny", port_range=(10, 5))


def test_capacity_enforced():
    acl = PacketClassifier(capacity=64, block_size=64)
    # Worst-case ranges eat many entries each.
    with pytest.raises(CapacityError):
        for index in range(40):
            acl.add_rule(
                Rule(f"r{index}", "allow", port_range=(1, 65534))
            )


def test_entry_bookkeeping(classifier):
    assert classifier.entries_used >= classifier.num_rules
    assert classifier.num_rules == 5


def test_packet_key_layout():
    p = Packet(protocol=0xAB, src_tag=0x123, dst_tag=0x456, dst_port=0xBEEF)
    key = p.key()
    assert (key >> 40) & 0xFF == 0xAB
    assert (key >> 24) & 0xFFFF == 0xBEEF
    assert (key >> 12) & 0xFFF == 0x123
    assert key & 0xFFF == 0x456
