"""Unit tests + properties for TCAM range expansion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.packet import expand_range, expansion_cost, range_entries
from repro.errors import MaskError


def covered(chunks):
    out = set()
    for start, end in chunks:
        out.update(range(start, end + 1))
    return out


def test_aligned_range_is_one_chunk():
    assert expand_range(0, 15, 8) == [(0, 15)]
    assert expand_range(16, 31, 8) == [(16, 31)]
    assert expand_range(0, 255, 8) == [(0, 255)]


def test_single_value():
    assert expand_range(7, 7, 8) == [(7, 7)]


def test_classic_worst_case():
    # [1, 14] in 4 bits: the textbook 2W-2 = 6 chunk case.
    chunks = expand_range(1, 14, 4)
    assert len(chunks) == 6
    assert covered(chunks) == set(range(1, 15))


def test_chunks_are_aligned_powers_of_two():
    for start, end in expand_range(5, 200, 8):
        size = end - start + 1
        assert size & (size - 1) == 0
        assert start % size == 0


def test_validation():
    with pytest.raises(MaskError):
        expand_range(5, 4, 8)
    with pytest.raises(MaskError):
        expand_range(-1, 4, 8)
    with pytest.raises(MaskError):
        expand_range(0, 256, 8)


def test_range_entries_match_exactly():
    entries = range_entries(20, 99, 8)
    for key in range(256):
        expected = 20 <= key <= 99
        assert any(entry.matches(key) for entry in entries) == expected


def test_expansion_cost():
    assert expansion_cost(0, 255, 8) == 1
    assert expansion_cost(1, 14, 4) == 6


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_expansion_exact_cover_property(data):
    """Chunks exactly tile the range: complete, disjoint, and within
    the 2W - 2 worst-case bound."""
    width = data.draw(st.integers(min_value=2, max_value=10), label="width")
    top = (1 << width) - 1
    start = data.draw(st.integers(min_value=0, max_value=top), label="start")
    end = data.draw(st.integers(min_value=start, max_value=top), label="end")
    chunks = expand_range(start, end, width)
    # Complete and disjoint cover.
    total = sum(end_ - start_ + 1 for start_, end_ in chunks)
    assert total == end - start + 1
    assert covered(chunks) == set(range(start, end + 1))
    # Chunks in ascending order, worst-case bound respected.
    assert chunks == sorted(chunks)
    assert len(chunks) <= 2 * width - 2 or len(chunks) == 1
