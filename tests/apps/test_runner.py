"""Unit tests for the Table IX experiment runner."""

import pytest

from repro.apps.tc import (
    TcRow,
    arithmetic_mean_speedup,
    geometric_mean_speedup,
    run_all,
    run_dataset,
    verify_functional_equivalence,
)
from repro.errors import DatasetError
from repro.graph import power_law


def test_run_dataset_row_fields():
    row = run_dataset("as20000102", max_edges=15_000, seed=0)
    assert row.dataset == "as20000102"
    assert row.scale == 1.0
    assert row.triangles > 0
    assert row.cam_ms > 0 and row.baseline_ms > 0
    assert row.paper_speedup == pytest.approx(7.4 / 0.422)


def test_run_dataset_speedup_property():
    row = TcRow("x", 1.0, 10, 20, 5, cam_ms=2.0, baseline_ms=6.0,
                paper_cam_ms=1.0, paper_baseline_ms=4.0)
    assert row.speedup == pytest.approx(3.0)
    assert row.paper_speedup == pytest.approx(4.0)


def test_run_all_subset():
    rows = run_all(["roadNet-PA", "facebook_combined"], max_edges=10_000, seed=1)
    assert [row.dataset for row in rows] == ["roadNet-PA", "facebook_combined"]
    assert rows[1].speedup > rows[0].speedup, (
        "social graphs must beat road graphs"
    )


def test_mean_speedups():
    rows = [
        TcRow("a", 1, 1, 1, 1, 1.0, 2.0, 1.0, 1.0),
        TcRow("b", 1, 1, 1, 1, 1.0, 8.0, 1.0, 1.0),
    ]
    assert arithmetic_mean_speedup(rows) == pytest.approx(5.0)
    assert geometric_mean_speedup(rows) == pytest.approx(4.0)
    with pytest.raises(DatasetError):
        arithmetic_mean_speedup([])
    with pytest.raises(DatasetError):
        geometric_mean_speedup([])


def test_functional_equivalence_harness():
    graph = power_law(300, 1200, triangle_fraction=0.3, seed=2)
    assert verify_functional_equivalence(graph, sample_edges=4) >= 3


def test_functional_equivalence_empty_graph():
    from repro.graph import CSRGraph

    empty = CSRGraph.from_edges([], num_vertices=3)
    assert verify_functional_equivalence(empty) == 0
