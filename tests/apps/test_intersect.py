"""Unit tests for the set-intersection engines."""

import numpy as np
import pytest

from repro.apps.tc import CamIntersector, merge_intersect, numpy_intersect_count
from repro.errors import CapacityError


# ----------------------------------------------------------------------
# merge engine
# ----------------------------------------------------------------------
def test_merge_intersect_basic():
    common, steps = merge_intersect([1, 3, 5, 7], [3, 4, 5, 6])
    assert common == 2
    assert steps <= 8  # O(n + m)


def test_merge_intersect_disjoint_and_empty():
    assert merge_intersect([1, 2], [3, 4])[0] == 0
    assert merge_intersect([], [1, 2])[0] == 0
    assert merge_intersect([], [])[0] == 0


def test_merge_intersect_identical():
    common, steps = merge_intersect([1, 2, 3], [1, 2, 3])
    assert common == 3
    assert steps == 3


def test_merge_steps_bounded_by_sum():
    a = list(range(0, 40, 2))
    b = list(range(1, 40, 2))
    common, steps = merge_intersect(a, b)
    assert common == 0
    assert steps <= len(a) + len(b)


# ----------------------------------------------------------------------
# CAM engine (cycle-accurate)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine():
    return CamIntersector(total_entries=256, block_size=64)


def test_cam_intersect_matches_merge(engine):
    list_a = [2, 4, 6, 8, 10, 12]
    list_b = [3, 4, 10, 11]
    expected, _ = merge_intersect(list_a, list_b)
    got, cycles = engine.intersect(list_a, list_b)
    assert got == expected == 2
    assert cycles > 0


def test_cam_intersect_random_agreement(engine):
    rng = np.random.default_rng(5)
    for _ in range(5):
        a = np.unique(rng.integers(0, 300, size=40))
        b = np.unique(rng.integers(0, 300, size=25))
        got, _ = engine.intersect(a.tolist(), b.tolist())
        assert got == numpy_intersect_count(a, b)


def test_cam_intersect_empty(engine):
    assert engine.intersect([], [1, 2]) == (0, 0)
    assert engine.intersect([1, 2], []) == (0, 0)


def test_cam_intersect_capacity(engine):
    with pytest.raises(CapacityError, match="tile"):
        engine.intersect(list(range(300)), [1])


def test_groups_for_policy(engine):
    # 4 blocks of 64: list <= 64 -> 1 block -> 4 groups.
    assert engine.groups_for(10) == 4
    assert engine.groups_for(64) == 4
    # 65..128 -> 2 blocks -> 2 groups.
    assert engine.groups_for(100) == 2
    # >192 -> 4 blocks -> 1 group.
    assert engine.groups_for(250) == 1


def test_group_count_always_divides_blocks():
    engine = CamIntersector(total_entries=768, block_size=128)  # 6 blocks
    for longer_len in (1, 129, 300, 500, 700):
        m = engine.groups_for(longer_len)
        assert engine.num_blocks % m == 0
