"""Tests for the cycle-accurate end-to-end TC system (figure 6)."""

import pytest

from repro.apps.tc import check_against_reference, simulate_system
from repro.errors import CapacityError
from repro.graph import CSRGraph, count_triangles, power_law


def small_graph(seed=3):
    return power_law(60, 180, triangle_fraction=0.5, seed=seed)


def test_system_count_matches_reference_exactly():
    graph = small_graph()
    run = check_against_reference(graph, total_entries=128, block_size=32)
    assert run.triangles == count_triangles(graph)
    assert run.edges_skipped == 0
    assert run.total_cycles > 0
    assert run.memory_stall_cycles > 0
    assert run.compute_cycles > run.memory_stall_cycles


def test_system_k4():
    k4 = CSRGraph.from_edges(
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    )
    run = simulate_system(k4, total_entries=128, block_size=32)
    assert run.triangles == 4
    assert run.edges_processed == 6


def test_system_triangle_free():
    path = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
    run = simulate_system(path, total_entries=128, block_size=32)
    assert run.triangles == 0


def test_system_skips_oversized_lists():
    # A clique's oriented out-degrees reach n-1, which exceeds a tiny
    # 16-entry CAM (a star would not: orientation empties the hub list).
    clique = CSRGraph.from_edges(
        [(u, v) for u in range(20) for v in range(u + 1, 20)]
    )
    run = simulate_system(clique, total_entries=16, block_size=16,
                          max_edges=40)
    assert run.edges_skipped > 0
    with pytest.raises(CapacityError, match="exceeded"):
        check_against_reference(clique, total_entries=16, block_size=16,
                                max_edges=40)


def test_system_max_edges_cap():
    graph = small_graph()
    run = simulate_system(graph, total_entries=128, block_size=32,
                          max_edges=10)
    assert run.edges_processed + run.edges_skipped <= 10


def test_system_time_accounting():
    graph = small_graph(seed=4)
    run = simulate_system(graph, total_entries=128, block_size=32)
    assert run.time_us == pytest.approx(run.total_cycles / 300.0)
    assert run.cycles_per_edge > 0
