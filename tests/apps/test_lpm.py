"""Unit tests for the TCAM-backed LPM router."""

import pytest

from repro.apps.packet import LpmRouter, parse_address, parse_prefix
from repro.errors import CapacityError, ConfigError


@pytest.fixture(scope="module")
def router():
    router = LpmRouter(capacity=128, block_size=64)
    router.add_route("10.0.0.0/8", "core")
    router.add_route("10.1.0.0/16", "edge")
    router.add_route("10.1.2.0/24", "rack")
    router.add_route("192.168.0.0/16", "lab")
    router.add_route("0.0.0.0/0", "default")
    router.compile()
    return router


def test_parse_prefix():
    assert parse_prefix("10.0.0.0/8") == (10 << 24, 8)
    assert parse_prefix((0, 0)) == (0, 0)
    with pytest.raises(ConfigError, match="host bits"):
        parse_prefix((1, 8))
    with pytest.raises(ConfigError, match="length"):
        parse_prefix((0, 40))


def test_parse_address():
    assert parse_address("1.2.3.4") == 0x01020304
    assert parse_address(5) == 5
    with pytest.raises(ConfigError):
        parse_address(1 << 40)


def test_longest_prefix_wins(router):
    assert router.lookup("10.1.2.200").next_hop == "rack"
    assert router.lookup("10.1.3.1").next_hop == "edge"
    assert router.lookup("10.2.0.1").next_hop == "core"
    assert router.lookup("192.168.40.1").next_hop == "lab"
    assert router.lookup("8.8.8.8").next_hop == "default"


def test_lookup_batch_order(router):
    routes = router.lookup_batch(["10.1.2.1", "8.8.8.8", "10.1.9.9"])
    assert [route.next_hop for route in routes] == ["rack", "default", "edge"]


def test_lookup_cycles_is_search_latency(router):
    assert router.lookup_cycles == router.session.unit.search_latency


def test_no_default_route_misses():
    router = LpmRouter(capacity=64, block_size=64)
    router.add_route("10.0.0.0/8", "only")
    router.compile()
    assert router.lookup("11.0.0.1") is None


def test_compile_required():
    router = LpmRouter(capacity=64, block_size=64)
    router.add_route("10.0.0.0/8", "x")
    with pytest.raises(ConfigError, match="not compiled"):
        router.lookup("10.0.0.1")


def test_recompile_after_adding_route():
    router = LpmRouter(capacity=64, block_size=64)
    router.add_route("0.0.0.0/0", "default")
    router.compile()
    assert router.lookup("10.9.0.1").next_hop == "default"
    router.add_route("10.9.0.0/16", "specific")
    router.compile()
    assert router.lookup("10.9.0.1").next_hop == "specific"


def test_capacity_enforced():
    router = LpmRouter(capacity=64, block_size=64)
    for index in range(65):
        router.add_route((index << 16, 16), f"hop{index}")
    with pytest.raises(CapacityError):
        router.compile()


def test_route_cidr_rendering():
    router = LpmRouter(capacity=64, block_size=64)
    route = router.add_route("10.1.0.0/16", "x")
    assert route.cidr == "10.1.0.0/16"
