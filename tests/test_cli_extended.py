"""Tests for the sweep/vcd CLI extensions."""

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_sweep_block(capsys):
    code, out = run(capsys, "sweep", "block", "--sizes", "32,64")
    assert code == 0
    assert "srch cy" in out
    lines = [line for line in out.splitlines() if line.strip()]
    assert len(lines) == 3  # header + two sizes


def test_sweep_unit(capsys):
    code, out = run(capsys, "sweep", "unit", "--sizes", "128")
    assert code == 0
    assert "4800" in out


def test_snapshot_restore_roundtrip(tmp_path, capsys):
    path = tmp_path / "demo.camsnap"
    code, out = run(capsys, "snapshot", "--out", str(path),
                    "--entries", "64", "--seed", "7")
    assert code == 0
    assert "content hash:" in out
    code, out = run(capsys, "restore", str(path), "--verify")
    assert code == 0
    assert "verify ok" in out


def test_restore_config_mismatch_exits_nonzero(tmp_path, capsys):
    """Restoring onto a session whose geometry disagrees with the
    snapshot must exit 1 with a one-line diagnostic naming both
    configs (the snapshot's and the target's)."""
    path = tmp_path / "demo.camsnap"
    assert run(capsys, "snapshot", "--out", str(path),
               "--entries", "64")[0] == 0
    code = main(["restore", str(path), "--entries", "32",
                 "--block-size", "32"])
    captured = capsys.readouterr()
    assert code == 1
    error_lines = [line for line in captured.err.splitlines()
                   if line.startswith("error:")]
    assert len(error_lines) == 1
    line = error_lines[0]
    assert "snapshot/config mismatch" in line
    assert "snapshot[kind=unit entries=64" in line
    assert "target[kind=unit entries=32" in line


def test_restore_data_width_mismatch_names_both_widths(tmp_path, capsys):
    path = tmp_path / "demo.camsnap"
    assert run(capsys, "snapshot", "--out", str(path),
               "--entries", "64")[0] == 0
    code = main(["restore", str(path), "--data-width", "16"])
    captured = capsys.readouterr()
    assert code == 1
    assert "data_width=48" in captured.err  # the snapshot's
    assert "data_width=16" in captured.err  # the target's


def test_restore_truncated_snapshot_is_a_decode_error(tmp_path, capsys):
    path = tmp_path / "demo.camsnap"
    assert run(capsys, "snapshot", "--out", str(path),
               "--entries", "64")[0] == 0
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    code = main(["restore", str(path)])
    captured = capsys.readouterr()
    assert code == 1
    assert "cannot decode" in captured.err


def test_vcd_command(tmp_path, capsys):
    out_file = tmp_path / "trace.vcd"
    code, out = run(capsys, "vcd", "--out", str(out_file))
    assert code == 0
    assert out_file.exists()
    text = out_file.read_text()
    assert text.startswith("$date")
    assert "$enddefinitions $end" in text
