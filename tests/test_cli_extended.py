"""Tests for the sweep/vcd CLI extensions."""

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_sweep_block(capsys):
    code, out = run(capsys, "sweep", "block", "--sizes", "32,64")
    assert code == 0
    assert "srch cy" in out
    lines = [line for line in out.splitlines() if line.strip()]
    assert len(lines) == 3  # header + two sizes


def test_sweep_unit(capsys):
    code, out = run(capsys, "sweep", "unit", "--sizes", "128")
    assert code == 0
    assert "4800" in out


def test_vcd_command(tmp_path, capsys):
    out_file = tmp_path / "trace.vcd"
    code, out = run(capsys, "vcd", "--out", str(out_file))
    assert code == 0
    assert out_file.exists()
    text = out_file.read_text()
    assert text.startswith("$date")
    assert "$enddefinitions $end" in text
