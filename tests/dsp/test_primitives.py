"""Unit tests for bit-vector primitives."""

import pytest

from repro.dsp import (
    DSP_WIDTH,
    clog2,
    concat_ab,
    is_power_of_two,
    mask_for,
    masked_equal,
    pack_words,
    popcount,
    split_ab,
    truncate,
    unpack_words,
)
from repro.dsp.primitives import check_fits
from repro.errors import ConfigError


def test_mask_for():
    assert mask_for(0) == 0
    assert mask_for(4) == 0xF
    assert mask_for(48) == (1 << 48) - 1
    with pytest.raises(ConfigError):
        mask_for(-1)


def test_truncate_wraps():
    assert truncate(0x1FF, 8) == 0xFF
    assert truncate(5, 8) == 5


def test_check_fits():
    assert check_fits(255, 8) == 255
    with pytest.raises(ConfigError, match="does not fit"):
        check_fits(256, 8)
    with pytest.raises(ConfigError, match="non-negative"):
        check_fits(-1, 8)


def test_concat_split_ab_roundtrip():
    for value in (0, 1, 0xDEADBEEF, (1 << 48) - 1, 0x5A5A_A5A5_5A5A):
        a, b = split_ab(value)
        assert concat_ab(a, b) == value
        assert b < (1 << 18)
        assert a < (1 << 30)


def test_popcount():
    assert popcount(0) == 0
    assert popcount(0b1011) == 3
    assert popcount(mask_for(DSP_WIDTH)) == 48


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(256)
    assert not is_power_of_two(0)
    assert not is_power_of_two(3)
    assert not is_power_of_two(-4)


def test_clog2():
    assert clog2(1) == 0
    assert clog2(2) == 1
    assert clog2(3) == 2
    assert clog2(256) == 8
    with pytest.raises(ConfigError):
        clog2(0)


def test_pack_unpack_words_roundtrip():
    words = [3, 0, 255, 17]
    packed = pack_words(words, 8)
    assert unpack_words(packed, 8, 4) == words


def test_pack_words_rejects_oversized():
    with pytest.raises(ConfigError):
        pack_words([256], 8)


def test_masked_equal_ignores_masked_bits():
    assert masked_equal(0b1010, 0b1010, 0)
    assert not masked_equal(0b1010, 0b1000, 0)
    assert masked_equal(0b1010, 0b1000, 0b0010)
    # Upper-width garbage ignored when masked.
    high = 1 << 47
    assert masked_equal(high | 5, 5, high)
