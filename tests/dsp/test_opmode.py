"""Unit tests for OPMODE/ALUMODE encodings."""

import pytest

from repro.dsp import (
    ALL_ONES,
    CAM_ALUMODE,
    CAM_OPMODE,
    AluMode,
    WMux,
    XMux,
    YMux,
    ZMux,
    pack_opmode,
    unpack_opmode,
)
from repro.dsp.opmode import apply_logic, is_logic_mode, logic_function
from repro.errors import ConfigError


def test_pack_unpack_roundtrip():
    for x in XMux:
        for y in YMux:
            for z in ZMux:
                for w in WMux:
                    opmode = pack_opmode(x, y, z, w)
                    assert unpack_opmode(opmode) == (x, y, z, w)


def test_unpack_rejects_out_of_range():
    with pytest.raises(ConfigError, match="9-bit"):
        unpack_opmode(1 << 9)
    with pytest.raises(ConfigError, match="reserved"):
        unpack_opmode(pack_opmode(XMux.ZERO, YMux.ZERO, ZMux.ZERO) | (0b111 << 4))


def test_cam_opmode_selects_ab_xor_c():
    x, y, z, w = unpack_opmode(CAM_OPMODE)
    assert (x, y, z, w) == (XMux.AB, YMux.ZERO, ZMux.C, WMux.ZERO)
    assert CAM_ALUMODE is AluMode.XOR


def test_is_logic_mode():
    assert is_logic_mode(AluMode.XOR)
    assert is_logic_mode(AluMode.NAND)
    assert not is_logic_mode(AluMode.ADD)
    assert not is_logic_mode(AluMode.SUB)


def test_logic_function_table():
    assert logic_function(AluMode.XOR, YMux.ZERO) == "xor"
    assert logic_function(AluMode.XOR, YMux.ALL_ONES) == "xnor"
    assert logic_function(AluMode.AND, YMux.ZERO) == "and"
    assert logic_function(AluMode.AND, YMux.ALL_ONES) == "or"
    assert logic_function(AluMode.NAND, YMux.ZERO) == "nand"
    assert logic_function(AluMode.NAND, YMux.ALL_ONES) == "nor"


def test_logic_function_rejects_bad_y():
    with pytest.raises(ConfigError, match="not a valid"):
        logic_function(AluMode.XOR, YMux.C)


def test_apply_logic_truth():
    x, z = 0b1100, 0b1010
    assert apply_logic("xor", x, z) == 0b0110
    assert apply_logic("xnor", x, z) == (~0b0110) & ALL_ONES
    assert apply_logic("and", x, z) == 0b1000
    assert apply_logic("or", x, z) == 0b1110
    assert apply_logic("nand", x, z) == (~0b1000) & ALL_ONES
    assert apply_logic("nor", x, z) == (~0b1110) & ALL_ONES
    with pytest.raises(ConfigError):
        apply_logic("bogus", 0, 0)
