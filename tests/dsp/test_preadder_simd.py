"""Unit tests for the DSP48E2 pre-adder and SIMD extensions."""

import pytest

from repro.dsp import (
    AluMode,
    DSP48E2,
    Dsp48Attributes,
    WMux,
    XMux,
    YMux,
    ZMux,
    pack_opmode,
    split_ab,
)
from repro.errors import ConfigError
from repro.sim import Simulator


def make(**attrs):
    dsp = DSP48E2(Dsp48Attributes(**attrs))
    return dsp, Simulator(dsp)


# ----------------------------------------------------------------------
# attribute validation
# ----------------------------------------------------------------------
def test_preadder_requires_multiplier():
    with pytest.raises(ConfigError, match="USE_MULT"):
        Dsp48Attributes(use_preadder=True, use_mult=False)


def test_simd_values_validated():
    Dsp48Attributes(simd="TWO24")
    Dsp48Attributes(simd="FOUR12")
    with pytest.raises(ConfigError, match="USE_SIMD"):
        Dsp48Attributes(simd="THREE16")


def test_simd_excludes_multiplier():
    with pytest.raises(ConfigError, match="SIMD"):
        Dsp48Attributes(simd="TWO24", use_mult=True)


def test_dreg_adreg_depth_limits():
    with pytest.raises(ConfigError, match="DREG"):
        Dsp48Attributes(dreg=2)
    with pytest.raises(ConfigError, match="ADREG"):
        Dsp48Attributes(adreg=-1)


# ----------------------------------------------------------------------
# pre-adder
# ----------------------------------------------------------------------
def test_preadder_multiplies_d_plus_a():
    dsp, sim = make(use_mult=True, use_preadder=True, mreg=1)
    dsp.opmode = pack_opmode(XMux.M, YMux.ZERO, ZMux.ZERO)
    dsp.alumode = int(AluMode.ADD)
    dsp.a = 100
    dsp.d = 23
    dsp.b = 7
    sim.step(4)  # A/D regs, AD reg, M reg, P reg
    assert dsp.p == (100 + 23) * 7


def test_preadder_wraps_at_27_bits():
    dsp, sim = make(use_mult=True, use_preadder=True, mreg=0)
    dsp.opmode = pack_opmode(XMux.M, YMux.ZERO, ZMux.ZERO)
    dsp.alumode = int(AluMode.ADD)
    dsp.a = (1 << 27) - 1
    dsp.d = 1
    dsp.b = 3
    sim.step(4)
    assert dsp.p == 0  # (2^27 - 1 + 1) mod 2^27 = 0


def test_ce_d_holds_value():
    dsp, sim = make(use_mult=True, use_preadder=True, mreg=0)
    dsp.opmode = pack_opmode(XMux.M, YMux.ZERO, ZMux.ZERO)
    dsp.alumode = int(AluMode.ADD)
    dsp.a = 10
    dsp.d = 5
    dsp.b = 1
    sim.step()
    dsp.ce_d = False
    dsp.d = 999
    sim.step(4)
    assert dsp.p == 15  # D register held at 5


# ----------------------------------------------------------------------
# SIMD
# ----------------------------------------------------------------------
def simd_add(dsp, sim, ab, c):
    dsp.opmode = pack_opmode(XMux.AB, YMux.ZERO, ZMux.C)
    dsp.alumode = int(AluMode.ADD)
    dsp.a, dsp.b = split_ab(ab)
    dsp.c = c
    sim.step(2)
    return dsp.p


def test_two24_lanes_do_not_carry_across():
    dsp, sim = make(simd="TWO24")
    # Low lane overflows: 0xFFFFFF + 1; high lane: 1 + 1.
    result = simd_add(dsp, sim, (1 << 24) | 0xFFFFFF, (1 << 24) | 1)
    assert result == (2 << 24) | 0  # no carry into the high lane
    assert dsp.carryout & 0b01  # lane-0 carry flagged


def test_four12_lanes_independent():
    dsp, sim = make(simd="FOUR12")
    ab = (0xFFF << 0) | (0x001 << 12) | (0x800 << 24) | (0x7FF << 36)
    c = (0x001 << 0) | (0x002 << 12) | (0x800 << 24) | (0x001 << 36)
    result = simd_add(dsp, sim, ab, c)
    lanes = [(result >> (12 * i)) & 0xFFF for i in range(4)]
    assert lanes == [0x000, 0x003, 0x000, 0x800]
    assert dsp.carryout & 0b0001  # lane 0 overflowed
    assert dsp.carryout & 0b0100  # lane 2 overflowed


def test_one48_unchanged_default():
    dsp, sim = make()
    result = simd_add(dsp, sim, 0xFFFFFF, 1)
    assert result == 0x1000000  # carry propagates in ONE48


def test_simd_sub():
    dsp, sim = make(simd="TWO24")
    dsp.opmode = pack_opmode(XMux.AB, YMux.ZERO, ZMux.C)
    dsp.alumode = int(AluMode.SUB)
    dsp.a, dsp.b = split_ab((5 << 24) | 10)
    dsp.c = (7 << 24) | 3
    sim.step(2)
    low = dsp.p & 0xFFFFFF
    high = dsp.p >> 24
    assert high == 2  # 7 - 5
    assert low == (3 - 10) % (1 << 24)  # lane-local wrap


def test_simd_logic_mode_is_full_width():
    """Logic ops are bitwise: SIMD partitioning is a no-op for XOR."""
    dsp, sim = make(simd="TWO24")
    dsp.opmode = pack_opmode(XMux.AB, YMux.ZERO, ZMux.C)
    dsp.alumode = int(AluMode.XOR)
    dsp.a, dsp.b = split_ab(0xF0F0F0F0F0F0)
    dsp.c = 0x0F0F0F0F0F0F
    sim.step(2)
    assert dsp.p == 0xFFFFFFFFFFFF
