"""Unit tests for DSP48E2 attribute validation."""

import pytest

from repro.dsp import Dsp48Attributes, cam_cell_attributes
from repro.core import width_mask
from repro.errors import ConfigError


def test_defaults_are_valid():
    attrs = Dsp48Attributes()
    assert attrs.areg == 1
    assert attrs.input_latency == 1
    assert attrs.search_latency == 2


def test_register_depth_limits():
    Dsp48Attributes(areg=2, breg=2)
    with pytest.raises(ConfigError, match="AREG"):
        Dsp48Attributes(areg=3)
    with pytest.raises(ConfigError, match="CREG"):
        Dsp48Attributes(creg=2)
    with pytest.raises(ConfigError, match="PREG"):
        Dsp48Attributes(preg=-1)


def test_pattern_mask_width_validation():
    Dsp48Attributes(pattern=(1 << 48) - 1, mask=(1 << 48) - 1)
    with pytest.raises(ConfigError, match="PATTERN"):
        Dsp48Attributes(pattern=1 << 48)
    with pytest.raises(ConfigError, match="MASK"):
        Dsp48Attributes(mask=1 << 48)


def test_with_mask_and_pattern_copy():
    attrs = Dsp48Attributes()
    masked = attrs.with_mask(0xFF)
    assert masked.mask == 0xFF
    assert attrs.mask == 0
    patterned = attrs.with_pattern(0xAB)
    assert patterned.pattern == 0xAB


def test_cam_cell_attributes_shape():
    attrs = cam_cell_attributes(mask=width_mask(32))
    assert attrs.areg == attrs.breg == attrs.creg == attrs.preg == 1
    assert attrs.mreg == 0
    assert not attrs.use_mult
    assert attrs.use_pattern_detect
    assert attrs.pattern == 0
    assert attrs.search_latency == 2
    assert attrs.input_latency == 1


def test_search_latency_tracks_registers():
    assert Dsp48Attributes(creg=0, preg=1).search_latency == 1
    assert Dsp48Attributes(creg=0, preg=0).search_latency == 0
