"""Unit tests for the DSP48E2 slice model."""

import pytest

from repro.dsp import (
    ALL_ONES,
    AluMode,
    CAM_ALUMODE,
    CAM_OPMODE,
    DSP48E2,
    Dsp48Attributes,
    WMux,
    XMux,
    YMux,
    ZMux,
    cam_cell_attributes,
    pack_opmode,
    split_ab,
)
from repro.errors import ConfigError
from repro.sim import Simulator


def make_dsp(**attr_kwargs):
    dsp = DSP48E2(Dsp48Attributes(**attr_kwargs))
    return dsp, Simulator(dsp)


def drive_cam(dsp):
    dsp.opmode = CAM_OPMODE
    dsp.alumode = int(CAM_ALUMODE)


# ----------------------------------------------------------------------
# XOR / CAM datapath
# ----------------------------------------------------------------------
def test_xor_mode_computes_ab_xor_c():
    dsp, sim = make_dsp()
    drive_cam(dsp)
    a, b = split_ab(0xF0F0_F0F0_F0F0)
    dsp.a, dsp.b = a, b
    dsp.c = 0x0F0F_0F0F_0F0F
    sim.step(2)  # input regs, then P
    assert dsp.p == 0xFFFF_FFFF_FFFF


def test_pattern_detect_on_match():
    dsp, sim = make_dsp(use_pattern_detect=True, pattern=0, mask=0)
    drive_cam(dsp)
    a, b = split_ab(0x1234_5678_9ABC)
    dsp.a, dsp.b = a, b
    dsp.c = 0x1234_5678_9ABC
    sim.step(2)
    assert dsp.patterndetect
    dsp.c = 0x1234_5678_9ABD
    sim.step(2)
    assert not dsp.patterndetect


def test_pattern_detect_respects_mask():
    mask = 0xFF  # ignore low byte
    dsp, sim = make_dsp(pattern=0, mask=mask)
    drive_cam(dsp)
    a, b = split_ab(0xAA00)
    dsp.a, dsp.b = a, b
    dsp.c = 0xAA5A  # differs only in masked bits
    sim.step(2)
    assert dsp.patterndetect


def test_patternbdetect_tracks_inverted_pattern():
    dsp, sim = make_dsp(pattern=0, mask=0)
    drive_cam(dsp)
    a, b = split_ab(ALL_ONES)
    dsp.a, dsp.b = a, b
    dsp.c = 0
    sim.step(2)
    assert dsp.p == ALL_ONES
    assert dsp.patternbdetect
    assert not dsp.patterndetect


def test_clock_enables_hold_ab():
    dsp, sim = make_dsp()
    drive_cam(dsp)
    a, b = split_ab(777)
    dsp.a, dsp.b = a, b
    sim.step()
    dsp.ce_a = dsp.ce_b = False
    dsp.a, dsp.b = split_ab(999)
    sim.step(3)
    assert dsp.stored_ab == 777


def test_ce_p_freezes_output():
    dsp, sim = make_dsp()
    drive_cam(dsp)
    dsp.a, dsp.b = split_ab(5)
    dsp.c = 5
    sim.step(2)
    assert dsp.patterndetect
    dsp.ce_p = False
    dsp.c = 6
    sim.step(3)
    assert dsp.patterndetect, "frozen P register must keep the match bit"


# ----------------------------------------------------------------------
# arithmetic modes
# ----------------------------------------------------------------------
def test_add_mode_z_plus_x():
    dsp, sim = make_dsp()
    dsp.opmode = pack_opmode(XMux.AB, YMux.ZERO, ZMux.C)
    dsp.alumode = int(AluMode.ADD)
    dsp.a, dsp.b = split_ab(100)
    dsp.c = 23
    sim.step(2)
    assert dsp.p == 123


def test_sub_mode_z_minus_x():
    dsp, sim = make_dsp()
    dsp.opmode = pack_opmode(XMux.AB, YMux.ZERO, ZMux.C)
    dsp.alumode = int(AluMode.SUB)
    dsp.a, dsp.b = split_ab(23)
    dsp.c = 100
    sim.step(2)
    assert dsp.p == 77


def test_sub_wraps_like_hardware():
    dsp, sim = make_dsp()
    dsp.opmode = pack_opmode(XMux.AB, YMux.ZERO, ZMux.C)
    dsp.alumode = int(AluMode.SUB)
    dsp.a, dsp.b = split_ab(1)
    dsp.c = 0
    sim.step(2)
    assert dsp.p == ALL_ONES  # 0 - 1 mod 2^48


def test_carry_in_participates():
    dsp, sim = make_dsp()
    dsp.opmode = pack_opmode(XMux.AB, YMux.ZERO, ZMux.C)
    dsp.alumode = int(AluMode.ADD)
    dsp.a, dsp.b = split_ab(1)
    dsp.c = 1
    dsp.carry_in = 1
    sim.step(2)
    assert dsp.p == 3


def test_accumulator_via_z_equals_p():
    dsp, sim = make_dsp()
    dsp.opmode = pack_opmode(XMux.AB, YMux.ZERO, ZMux.P)
    dsp.alumode = int(AluMode.ADD)
    dsp.a, dsp.b = split_ab(10)
    sim.step(5)
    # First edge loads input regs; each later edge accumulates 10.
    assert dsp.p == 40


def test_multiplier_path():
    dsp, sim = make_dsp(use_mult=True, mreg=1)
    dsp.opmode = pack_opmode(XMux.M, YMux.ZERO, ZMux.ZERO)
    dsp.alumode = int(AluMode.ADD)
    dsp.a, dsp.b = 1234, 567
    sim.step(3)  # A/B regs, M reg, P reg
    assert dsp.p == 1234 * 567


def test_rnd_via_w_mux():
    dsp, sim = make_dsp(rnd=5)
    dsp.opmode = pack_opmode(XMux.AB, YMux.ZERO, ZMux.ZERO, WMux.RND)
    dsp.alumode = int(AluMode.ADD)
    dsp.a, dsp.b = split_ab(10)
    sim.step(2)
    assert dsp.p == 15


# ----------------------------------------------------------------------
# cascade and validation
# ----------------------------------------------------------------------
def test_pcin_cascade_between_slices():
    up = DSP48E2(Dsp48Attributes(), name="up")
    down = DSP48E2(Dsp48Attributes(), name="down")
    sim = Simulator(up, down)
    up.opmode = pack_opmode(XMux.AB, YMux.ZERO, ZMux.ZERO)
    up.alumode = int(AluMode.ADD)
    up.a, up.b = split_ab(40)
    down.opmode = pack_opmode(XMux.AB, YMux.ZERO, ZMux.PCIN)
    down.alumode = int(AluMode.ADD)
    down.a, down.b = split_ab(2)
    for _ in range(4):
        down.pcin = up.pcout
        sim.step()
    assert down.p == 42


def test_invalid_alumode_raises():
    dsp, sim = make_dsp()
    dsp.opmode = CAM_OPMODE
    dsp.alumode = 0b1111
    with pytest.raises(ConfigError, match="ALUMODE"):
        sim.step()


def test_logic_mode_rejects_double_multiplier():
    dsp, sim = make_dsp(use_mult=True)
    dsp.opmode = pack_opmode(XMux.M, YMux.M, ZMux.C)
    dsp.alumode = int(AluMode.XOR)
    with pytest.raises(ConfigError, match="multiplier"):
        sim.step()


def test_preg_zero_gives_combinational_output():
    dsp = DSP48E2(cam_cell_attributes().__class__(
        areg=0, breg=0, creg=0, mreg=0, preg=0,
        use_mult=False, use_pattern_detect=True, pattern=0, mask=0,
    ))
    sim = Simulator(dsp)
    drive_cam(dsp)
    dsp.a, dsp.b = split_ab(9)
    dsp.c = 9
    sim.step()
    assert dsp.p == 0
    assert dsp.patterndetect


def test_update_then_search_latencies_match_table_v():
    """The cell-level timing contract: write 1 cycle, search 2 cycles."""
    dsp = DSP48E2(cam_cell_attributes())
    sim = Simulator(dsp)
    drive_cam(dsp)
    dsp.a, dsp.b = split_ab(0xBEEF)
    sim.step()  # update latency: 1
    assert dsp.stored_ab == 0xBEEF
    dsp.ce_a = dsp.ce_b = False
    dsp.c = 0xBEEF
    sim.step(2)  # search latency: 2
    assert dsp.patterndetect
