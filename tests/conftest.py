"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BlockConfig,
    CamSession,
    CamType,
    CellConfig,
    UnitConfig,
    unit_for_entries,
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (deselect with -m 'not slow')"
    )


@pytest.fixture
def cam_engine(request) -> str:
    """Execution engine selected via ``--cam-engine`` (default: batch)."""
    return request.config.getoption("--cam-engine")


@pytest.fixture
def audit_sample(request) -> float:
    """Episode sampling rate selected via ``--audit-sample``."""
    return request.config.getoption("--audit-sample")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for randomised (but reproducible) tests."""
    return np.random.default_rng(20250705)


@pytest.fixture
def small_block_config() -> BlockConfig:
    """A 16-cell binary block with a 128-bit bus (4 words/beat)."""
    return BlockConfig(
        cell=CellConfig(cam_type=CamType.BINARY, data_width=32),
        block_size=16,
        bus_width=128,
    )


@pytest.fixture
def small_unit_config() -> UnitConfig:
    """A 64-entry unit: 4 blocks of 16, 2 groups, 32-bit data."""
    return unit_for_entries(
        64, block_size=16, data_width=32, bus_width=128, default_groups=2
    )


@pytest.fixture
def small_session(small_unit_config) -> CamSession:
    return CamSession(small_unit_config)
