"""Unit tests for the event trace."""

from repro.sim import Component, Simulator, Trace


class Emitter(Component):
    def reset_state(self):
        self.n = 0

    def compute(self):
        self.emit(n=self.n, parity=self.n % 2)
        self.schedule(n=self.n + 1)


def test_events_are_recorded_with_cycles():
    trace = Trace()
    Simulator(Emitter("e"), trace=trace).step(3)
    events = trace.events("e", "n")
    assert [(e.cycle, e.value) for e in events] == [(0, 0), (1, 1), (2, 2)]


def test_filtering_by_component_and_signal():
    trace = Trace()
    Simulator(Emitter("a"), Emitter("b"), trace=trace).step(2)
    assert len(trace.events(component="a")) == 4  # 2 signals x 2 cycles
    assert len(trace.events(signal="parity")) == 4  # 2 emitters x 2 cycles
    assert len(trace.events("a", "n")) == 2


def test_first_cycle_lookup():
    trace = Trace()
    Simulator(Emitter("e"), trace=trace).step(5)
    assert trace.first_cycle("e", "n", 3) == 3
    assert trace.first_cycle("e", "n", 99) is None


def test_limit_caps_event_count_atomically():
    # Each cycle emits 2 signals in one record() call; limit=3 fits one
    # whole emission, and the overflowing emission is dropped atomically
    # (no partial cycle) with the truncation flag latched.
    trace = Trace(limit=3)
    Simulator(Emitter("e"), trace=trace).step(10)
    assert len(trace) == 2
    assert trace.truncated
    assert trace.dropped == 2 * 9
    assert trace.limit == 3


def test_unlimited_trace_is_not_truncated():
    trace = Trace()
    Simulator(Emitter("e"), trace=trace).step(4)
    assert not trace.truncated
    assert trace.dropped == 0
    assert "[truncated" not in trace.to_text()


def test_truncated_trace_warns_once_and_marks_text_dump():
    import warnings

    trace = Trace(limit=2)
    Simulator(Emitter("e"), trace=trace).step(5)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        trace.events()
        trace.events("e")
    assert len(caught) == 1
    assert "truncated" in str(caught[0].message)
    assert trace.to_text().splitlines()[-1].startswith("[truncated")


def test_to_text_renders_every_event():
    trace = Trace()
    Simulator(Emitter("e"), trace=trace).step(2)
    text = trace.to_text()
    assert "cycle" in text.splitlines()[0]
    assert len(text.splitlines()) == 1 + len(trace)


def test_iteration():
    trace = Trace()
    Simulator(Emitter("e"), trace=trace).step(1)
    assert [event.signal for event in trace] == ["n", "parity"]
