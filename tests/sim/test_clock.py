"""Unit tests for clock-domain arithmetic."""

import pytest

from repro.errors import SimulationError
from repro.sim import ClockDomain


def test_period_ns():
    clock = ClockDomain("sys", 300.0)
    assert clock.period_ns == pytest.approx(1000.0 / 300.0)


def test_invalid_frequency():
    with pytest.raises(SimulationError):
        ClockDomain("bad", 0.0)
    with pytest.raises(SimulationError):
        ClockDomain("bad", -10.0)


def test_cycles_to_time_conversions():
    clock = ClockDomain("sys", 250.0)  # 4 ns period
    assert clock.cycles_to_ns(10) == pytest.approx(40.0)
    assert clock.cycles_to_us(2500) == pytest.approx(10.0)
    assert clock.cycles_to_ms(2_500_000) == pytest.approx(10.0)


def test_ns_to_cycles_is_ceiling():
    clock = ClockDomain("sys", 250.0)  # 4 ns period
    assert clock.ns_to_cycles(0) == 0
    assert clock.ns_to_cycles(4.0) == 1
    assert clock.ns_to_cycles(4.1) == 2
    assert clock.ns_to_cycles(8.0) == 2
    with pytest.raises(SimulationError):
        clock.ns_to_cycles(-1)


def test_throughput_helpers_match_paper_units():
    """16 words/cycle at 300 MHz is the paper's 4800 Mop/s figure."""
    clock = ClockDomain("sys", 300.0)
    assert clock.mops(16) == pytest.approx(4800.0)
    assert clock.mops(1) == pytest.approx(300.0)
    assert clock.ops_per_second(1) == pytest.approx(300e6)
