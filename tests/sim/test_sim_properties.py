"""Property-based tests for the simulation kernel primitives.

The CAM's cycle-exactness rests on these invariants: pipes deliver
payloads in order after exactly their depth, FIFOs never reorder, and
the two-phase protocol is deterministic under any interleaving.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Component, Fifo, Simulator, ValidPipe

SETTINGS = settings(max_examples=60, deadline=None)


@SETTINGS
@given(
    depth=st.integers(min_value=1, max_value=8),
    schedule=st.lists(st.booleans(), min_size=1, max_size=40),
)
def test_valid_pipe_preserves_order_and_latency(depth, schedule):
    """Under any send/no-send pattern, payloads exit in order exactly
    ``depth`` cycles after entry (read combinationally via tail)."""
    pipe = ValidPipe(depth)
    sim = Simulator(pipe)
    sent = []
    received = []
    for cycle, do_send in enumerate(schedule + [False] * depth):
        if do_send:
            pipe.send(("tok", cycle))
            sent.append(cycle)
        sim.step()
        valid, payload = pipe.tail()
        if valid:
            received.append(payload)
    assert [tag for tag, _ in received] == ["tok"] * len(sent)
    assert [cycle for _, cycle in received] == sent
    # tail() sees each payload exactly depth cycles after its send.
    for send_cycle, (_, stamped) in zip(sent, received):
        assert stamped == send_cycle


@SETTINGS
@given(
    capacity=st.integers(min_value=1, max_value=6),
    operations=st.lists(st.sampled_from(["push", "pop"]), max_size=50),
)
def test_fifo_matches_list_model(capacity, operations):
    """The FIFO agrees with a plain list under any legal op sequence."""
    fifo = Fifo(capacity)
    sim = Simulator(fifo)
    model = []
    counter = 0
    for op in operations:
        if op == "push":
            if len(model) >= capacity:
                continue
            fifo.push(counter)
            model.append(counter)
            counter += 1
        else:
            if not model:
                continue
            assert fifo.pop() == model.pop(0)
        sim.step()
        assert len(fifo) == len(model)
        if model:
            assert fifo.head == model[0]
        else:
            assert fifo.empty


class Accumulator(Component):
    def reset_state(self):
        self.total = 0
        self.increment = 0

    def compute(self):
        self.schedule(total=self.total + self.increment)


@SETTINGS
@given(values=st.lists(st.integers(-100, 100), max_size=30))
def test_two_phase_determinism(values):
    """Replaying the same stimulus twice gives identical state."""

    def run():
        acc = Accumulator()
        sim = Simulator(acc)
        trail = []
        for value in values:
            acc.increment = value
            sim.step()
            trail.append(acc.total)
        return trail

    assert run() == run()
    if values:
        assert run()[-1] == sum(values)


@SETTINGS
@given(
    depth=st.integers(min_value=1, max_value=5),
    burst=st.integers(min_value=1, max_value=20),
)
def test_full_rate_burst_drains_in_burst_plus_depth(depth, burst):
    """An II=1 burst of N payloads fully drains after N + depth edges."""
    pipe = ValidPipe(depth)
    sim = Simulator(pipe)
    received = 0
    for cycle in range(burst + depth):
        if cycle < burst:
            pipe.send(cycle)
        sim.step()
        valid, _ = pipe.tail()
        if valid:
            received += 1
    assert received == burst
    assert pipe.in_flight() == 0
