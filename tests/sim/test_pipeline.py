"""Unit tests for registers, shift chains, FIFOs and valid pipes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Fifo, Register, ShiftRegister, Simulator, ValidPipe


# ----------------------------------------------------------------------
# Register
# ----------------------------------------------------------------------
def test_register_latches_on_edge():
    reg = Register(init=7)
    sim = Simulator(reg)
    assert reg.q == 7
    reg.d = 42
    sim.step()
    assert reg.q == 42


def test_register_enable_holds_value():
    reg = Register()
    sim = Simulator(reg)
    reg.d = 5
    sim.step()
    reg.d = 9
    reg.enable = False
    sim.step()
    assert reg.q == 5


# ----------------------------------------------------------------------
# ShiftRegister
# ----------------------------------------------------------------------
def test_shift_register_depth_validation():
    with pytest.raises(SimulationError):
        ShiftRegister(0)


def test_shift_register_delay():
    sr = ShiftRegister(depth=3, bubble=None)
    sim = Simulator(sr)
    sr.push("x")
    sim.step(3)
    # After depth edges the value sits in the final stage (peek), and
    # appears on the registered `out` one edge later.
    assert sr.peek(2) == "x"
    sim.step()
    assert sr.out == "x"


def test_shift_register_streams_in_order():
    sr = ShiftRegister(depth=2)
    sim = Simulator(sr)
    seen = []
    for value in ["a", "b", "c", None, None, None]:
        if value is not None:
            sr.push(value)
        sim.step()
        if sr.out is not None:
            seen.append(sr.out)
    assert seen == ["a", "b", "c"]


def test_shift_register_occupancy_and_peek_bounds():
    sr = ShiftRegister(depth=2)
    sim = Simulator(sr)
    sr.push(1)
    sim.step()
    assert sr.occupancy() == 1
    with pytest.raises(SimulationError):
        sr.peek(2)


# ----------------------------------------------------------------------
# Fifo
# ----------------------------------------------------------------------
def test_fifo_capacity_validation():
    with pytest.raises(SimulationError):
        Fifo(0)


def test_fifo_push_pop_order():
    fifo = Fifo(4)
    sim = Simulator(fifo)
    for value in (1, 2, 3):
        fifo.push(value)
        sim.step()
    assert len(fifo) == 3
    assert fifo.head == 1
    popped = [fifo.pop()]
    sim.step()
    popped.append(fifo.pop())
    sim.step()
    assert popped == [1, 2]
    assert fifo.head == 3


def test_fifo_simultaneous_push_pop():
    fifo = Fifo(2)
    sim = Simulator(fifo)
    fifo.push("a")
    sim.step()
    fifo.push("b")
    assert fifo.pop() == "a"
    sim.step()
    assert len(fifo) == 1
    assert fifo.head == "b"


def test_fifo_overflow_and_underflow():
    fifo = Fifo(1)
    sim = Simulator(fifo)
    with pytest.raises(SimulationError, match="pop from empty"):
        fifo.pop()
    fifo.push(1)
    sim.step()
    with pytest.raises(SimulationError, match="push to full"):
        fifo.push(2)


def test_fifo_double_push_rejected():
    fifo = Fifo(4)
    Simulator(fifo)
    fifo.push(1)
    with pytest.raises(SimulationError, match="double push"):
        fifo.push(2)


# ----------------------------------------------------------------------
# ValidPipe
# ----------------------------------------------------------------------
def test_valid_pipe_latency_via_registered_output():
    pipe = ValidPipe(depth=2)
    sim = Simulator(pipe)
    pipe.send({"key": 1})
    # Registered `valid` asserts depth+1 edges after send (the output
    # register adds one); `tail()` is the combinational depth-edge view.
    sim.step(2)
    assert pipe.tail() == (True, {"key": 1})
    sim.step()
    assert pipe.valid
    assert pipe.payload == {"key": 1}
    sim.step()
    assert not pipe.valid


def test_valid_pipe_full_rate():
    pipe = ValidPipe(depth=3)
    sim = Simulator(pipe)
    received = []
    for cycle in range(10):
        if cycle < 5:
            pipe.send(cycle)
        sim.step()
        valid, payload = pipe.tail()
        if valid:
            received.append(payload)
    assert received == [0, 1, 2, 3, 4], "II=1 pipelining must hold"


def test_valid_pipe_in_flight_count():
    pipe = ValidPipe(depth=4)
    sim = Simulator(pipe)
    pipe.send("a")
    sim.step()
    pipe.send("b")
    sim.step()
    assert pipe.in_flight() == 2


def test_valid_pipe_none_payload_is_valid():
    """None must be a legal payload (distinct from a bubble)."""
    pipe = ValidPipe(depth=1)
    sim = Simulator(pipe)
    pipe.send(None)
    sim.step()
    assert pipe.tail() == (True, None)


def test_valid_pipe_depth_validation():
    with pytest.raises(SimulationError):
        ValidPipe(0)
