"""Unit tests for the cycle driver."""

import pytest

from repro.errors import SimulationError
from repro.sim import Component, Simulator, Trace, elapse


class Counter(Component):
    def reset_state(self):
        self.value = 0

    def compute(self):
        self.schedule(value=self.value + 1)
        self.emit(value=self.value)


def test_requires_components():
    with pytest.raises(SimulationError, match="at least one component"):
        Simulator()


def test_rejects_non_component_roots():
    with pytest.raises(SimulationError, match="must be Components"):
        Simulator("not a component")


def test_step_advances_cycle():
    sim = Simulator(Counter())
    assert sim.cycle == 0
    sim.step(5)
    assert sim.cycle == 5


def test_negative_step_raises():
    sim = Simulator(Counter())
    with pytest.raises(SimulationError, match="negative"):
        sim.step(-1)


def test_multiple_roots_tick_together():
    a, b = Counter("a"), Counter("b")
    sim = Simulator(a, b)
    sim.step(4)
    assert a.value == 4
    assert b.value == 4


def test_reset_restores_state_and_cycle():
    counter = Counter()
    sim = Simulator(counter)
    sim.step(7)
    sim.reset()
    assert sim.cycle == 0
    assert counter.value == 0


def test_run_until_counts_cycles():
    counter = Counter()
    sim = Simulator(counter)
    consumed = sim.run_until(lambda: counter.value == 9)
    assert consumed == 9
    assert sim.cycle == 9


def test_run_until_returns_zero_when_already_true():
    counter = Counter()
    sim = Simulator(counter)
    sim.step(3)
    assert sim.run_until(lambda: counter.value >= 2) == 0


def test_run_until_timeout_raises():
    counter = Counter()
    sim = Simulator(counter)
    with pytest.raises(SimulationError, match="not met within 10 cycles"):
        sim.run_until(lambda: False, max_cycles=10)


def test_trace_attached_to_tree():
    trace = Trace()
    counter = Counter()
    sim = Simulator(counter, trace=trace)
    sim.step(3)
    values = [e.value for e in trace.events("Counter", "value")]
    assert values == [0, 1, 2]
    assert sim.trace is trace


def test_elapse_helper():
    counter = Counter()
    sim = elapse([counter], 6)
    assert sim.cycle == 6
    assert counter.value == 6
