"""Unit tests for the two-phase Component base class."""

import pytest

from repro.errors import SimulationError
from repro.sim import Component, Simulator


class Counter(Component):
    def reset_state(self):
        self.value = 0

    def compute(self):
        self.schedule(value=self.value + 1)


class Doubler(Component):
    """Reads a registered input attribute, doubles it one cycle later."""

    def reset_state(self):
        self.d = 0
        self.q = 0

    def compute(self):
        self.schedule(q=2 * self.d)


def test_schedule_applies_at_commit():
    counter = Counter()
    counter.reset_state()
    counter.compute()
    assert counter.value == 0, "compute must not mutate observable state"
    counter.commit()
    assert counter.value == 1


def test_double_schedule_same_attribute_raises():
    counter = Counter()
    counter.schedule(value=5)
    with pytest.raises(SimulationError, match="scheduled twice"):
        counter.schedule(value=6)


def test_schedule_different_attributes_ok():
    comp = Component("x")
    comp.schedule(a=1)
    comp.schedule(b=2)
    comp.commit()
    assert comp.a == 1 and comp.b == 2


def test_add_child_and_iter_tree():
    parent = Component("p")
    child_a = parent.add_child(Component("a"))
    child_b = parent.add_child(Component("b"))
    grandchild = child_a.add_child(Component("g"))
    names = [c.name for c in parent.iter_tree()]
    assert names == ["p", "a", "g", "b"]
    assert parent.children == [child_a, child_b]
    assert grandchild.name == "g"


def test_add_child_rejects_non_component():
    parent = Component("p")
    with pytest.raises(SimulationError, match="must be a Component"):
        parent.add_child(object())


def test_reset_tree_clears_pending_and_state():
    counter = Counter()
    sim = Simulator(counter)
    sim.step(3)
    assert counter.value == 3
    counter.schedule(value=99)
    counter.reset_tree()
    assert counter.value == 0
    sim.step()
    assert counter.value == 1, "stale pending update must not survive reset"


def test_default_name_is_class_name():
    assert Counter().name == "Counter"
    assert Counter("c0").name == "c0"


def test_register_boundary_is_one_cycle():
    """A value crossing a component boundary takes exactly one edge."""
    doubler = Doubler()
    sim = Simulator(doubler)
    doubler.d = 21
    sim.step()
    assert doubler.q == 42
