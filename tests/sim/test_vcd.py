"""Unit tests for the VCD trace exporter."""

import pytest

from repro.errors import SimulationError
from repro.sim import Component, Simulator, Trace, trace_to_vcd, write_vcd


class Blinker(Component):
    def reset_state(self):
        self.n = 0

    def compute(self):
        self.emit(level=bool(self.n % 2), count=self.n, label=f"s{self.n}")
        self.schedule(n=self.n + 1)


def make_trace(cycles=4):
    trace = Trace()
    Simulator(Blinker("blk"), trace=trace).step(cycles)
    return trace


def test_empty_trace_rejected():
    with pytest.raises(SimulationError, match="empty"):
        trace_to_vcd(Trace())


def test_header_structure():
    vcd = trace_to_vcd(make_trace())
    assert vcd.startswith("$date")
    assert "$timescale 1 ns $end" in vcd
    assert "$scope module repro $end" in vcd
    assert "$scope module blk $end" in vcd
    assert "$enddefinitions $end" in vcd


def test_variable_declarations():
    vcd = trace_to_vcd(make_trace())
    assert "$var wire 1" in vcd      # boolean level
    assert " count $end" in vcd      # integer signal declared
    assert "$var real 1" in vcd      # string label


def test_value_changes_only_on_change():
    vcd = trace_to_vcd(make_trace(4))
    # level toggles each cycle: 0,1,0,1 -> 4 changes; count changes 4x.
    lines = vcd.splitlines()
    timesteps = [line for line in lines if line.startswith("#")]
    assert timesteps == ["#0", "#1", "#2", "#3"]


def test_multibit_binary_encoding():
    vcd = trace_to_vcd(make_trace(5))
    # count reaches 4 -> 3-bit vector entries like "b100 <id>".
    assert any(line.startswith("b100 ") for line in vcd.splitlines())


def test_identifiers_unique():
    trace = Trace()
    Simulator(Blinker("a"), Blinker("b"), trace=trace).step(2)
    vcd = trace_to_vcd(trace)
    var_lines = [line for line in vcd.splitlines() if line.startswith("$var")]
    idents = [line.split()[3] for line in var_lines]
    assert len(idents) == len(set(idents)) == 6


def test_write_vcd(tmp_path):
    path = write_vcd(make_trace(), str(tmp_path / "out.vcd"))
    text = open(path).read()
    assert "$enddefinitions" in text


def test_cam_session_trace_exports():
    """A real CAM session trace must export cleanly."""
    from repro.core import CamSession, unit_for_entries

    session = CamSession(
        unit_for_entries(64, block_size=16, data_width=32, bus_width=128),
        trace=True,
    )
    session.update([5])
    session.search([5])
    vcd = trace_to_vcd(session.trace)
    assert "$enddefinitions $end" in vcd
    assert "#0" in vcd
