"""Unit tests for the DSP-backed CAM cell."""

import pytest

from repro.core import CamCell, CamType, binary_entry, range_entry, ternary_entry
from repro.errors import ConfigError
from repro.sim import Simulator


def make_cell(cam_type=CamType.BINARY, width=32):
    cell = CamCell(cam_type=cam_type, data_width=width)
    return cell, Simulator(cell)


def write(cell, sim, entry):
    cell.write_enable = True
    cell.write_entry = entry
    sim.step()


def search(cell, sim, key):
    cell.search_key = key
    sim.step(2)
    return cell.match_now()


def test_update_latency_one_cycle():
    cell, sim = make_cell()
    write(cell, sim, binary_entry(0xCAFE, 32))
    assert cell.occupied
    assert cell.stored_value == 0xCAFE


def test_search_hit_and_miss():
    cell, sim = make_cell()
    write(cell, sim, binary_entry(1234, 32))
    assert search(cell, sim, 1234)
    assert not search(cell, sim, 1235)


def test_empty_cell_never_matches():
    cell, sim = make_cell()
    assert not search(cell, sim, 0)
    assert not search(cell, sim, 42)


def test_overwrite_replaces_entry():
    cell, sim = make_cell()
    write(cell, sim, binary_entry(1, 32))
    write(cell, sim, binary_entry(2, 32))
    assert search(cell, sim, 2)
    assert not search(cell, sim, 1)


def test_clear_invalidates():
    cell, sim = make_cell()
    write(cell, sim, binary_entry(7, 32))
    assert search(cell, sim, 7)
    cell.clear = True
    sim.step()
    assert not cell.occupied
    assert not search(cell, sim, 7)


def test_ternary_entry_in_cell():
    cell, sim = make_cell(CamType.TERNARY)
    write(cell, sim, ternary_entry(0xAB00, 0x00FF, 32))
    assert search(cell, sim, 0xAB42)
    assert search(cell, sim, 0xABFF)
    assert not search(cell, sim, 0xAC00)


def test_range_entry_in_cell():
    cell, sim = make_cell(CamType.RANGE)
    write(cell, sim, range_entry(0x100, 0x1FF, 32))
    assert search(cell, sim, 0x100)
    assert search(cell, sim, 0x180)
    assert not search(cell, sim, 0x200)


def test_per_entry_mask_swaps_with_entry():
    """A new entry's mask must replace the old one's."""
    cell, sim = make_cell(CamType.TERNARY)
    write(cell, sim, ternary_entry(0, 0xF, 32))  # low nibble don't-care
    assert search(cell, sim, 0xF)
    write(cell, sim, ternary_entry(0, 0, 32))  # exact zero now
    assert not search(cell, sim, 0xF)
    assert search(cell, sim, 0)


def test_upper_bits_of_key_ignored():
    cell, sim = make_cell(width=16)
    write(cell, sim, binary_entry(0x1234, 16))
    assert search(cell, sim, 0x1234 | (1 << 40))


def test_write_without_entry_raises():
    cell, sim = make_cell()
    cell.write_enable = True
    with pytest.raises(ConfigError, match="without an entry"):
        sim.step()


def test_invalid_width_rejected():
    with pytest.raises(ConfigError):
        CamCell(data_width=0)
    with pytest.raises(ConfigError):
        CamCell(data_width=64)


def test_stored_entry_view():
    cell, sim = make_cell(CamType.TERNARY)
    assert cell.stored_entry is None
    entry = ternary_entry(5, 2, 32)
    write(cell, sim, entry)
    stored = cell.stored_entry
    assert stored.value == 5
    assert stored.mask == entry.mask


def test_resources_are_one_dsp():
    vec = CamCell.resources()
    assert vec.dsp == 1
    assert vec.lut == 0
    assert vec.bram == 0


def test_search_while_writing_same_cycle():
    """The A/B write port and C compare port are independent."""
    cell, sim = make_cell()
    write(cell, sim, binary_entry(10, 32))
    cell.search_key = 10
    cell.write_enable = True
    cell.write_entry = binary_entry(11, 32)
    sim.step(2)
    # The key was compared against whatever A:B held when the XOR ran;
    # after the write, the new value must be searchable.
    assert search(cell, sim, 11)
