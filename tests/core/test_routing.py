"""Unit tests for the routing table and pipeline stages."""

import pytest

from repro.core import PostRouter, RoutingCompute, RoutingTable
from repro.errors import RoutingError
from repro.sim import Simulator


# ----------------------------------------------------------------------
# RoutingTable
# ----------------------------------------------------------------------
def test_default_contiguous_layout():
    table = RoutingTable(8, 2)
    assert table.as_list() == [0, 0, 0, 0, 1, 1, 1, 1]
    assert table.blocks_per_group == 4
    assert table.blocks_in_group(1) == [4, 5, 6, 7]


def test_group_of():
    table = RoutingTable(4, 4)
    assert [table.group_of(b) for b in range(4)] == [0, 1, 2, 3]


def test_remap_contiguous_divisibility():
    table = RoutingTable(6)
    table.remap_contiguous(3)
    assert table.num_groups == 3
    with pytest.raises(RoutingError, match="divisor"):
        table.remap_contiguous(4)
    with pytest.raises(RoutingError):
        table.remap_contiguous(0)


def test_custom_remap_not_tied_to_layout():
    """Groups are logical: interleaved assignments are legal."""
    table = RoutingTable(4)
    table.remap([0, 1, 0, 1])
    assert table.num_groups == 2
    assert table.blocks_in_group(0) == [0, 2]
    assert table.blocks_in_group(1) == [1, 3]


def test_remap_validation():
    table = RoutingTable(4)
    with pytest.raises(RoutingError, match="covers"):
        table.remap([0, 1])
    with pytest.raises(RoutingError, match="dense"):
        table.remap([0, 2, 0, 2])
    with pytest.raises(RoutingError, match="expected"):
        table.remap([0, 0, 0, 1])


def test_blocks_in_group_range_check():
    table = RoutingTable(4, 2)
    with pytest.raises(RoutingError, match="out of range"):
        table.blocks_in_group(2)


def test_invalid_block_count():
    with pytest.raises(RoutingError):
        RoutingTable(0)


# ----------------------------------------------------------------------
# pipeline stages
# ----------------------------------------------------------------------
def test_routing_compute_two_stage_delay():
    stage = RoutingCompute(RoutingTable(4, 2))
    sim = Simulator(stage)
    stage.send("beat")
    sim.step(RoutingCompute.DEPTH)
    assert stage.tail() == (True, "beat")
    sim.step()
    assert stage.tail() == (False, None)


def test_post_router_depths_differ():
    router = PostRouter()
    sim = Simulator(router)
    router.send_search("s")
    router.send_update("u")
    sim.step(PostRouter.SEARCH_DEPTH)
    assert router.search_tail() == (True, "s")
    assert router.update_tail() == (False, None)
    sim.step(PostRouter.UPDATE_DEPTH - PostRouter.SEARCH_DEPTH)
    assert router.update_tail() == (True, "u")


def test_stage_depth_constants_sum_to_paper_overheads():
    """2 + 2 search stages and 2 + 3 update stages ahead of the blocks."""
    assert RoutingCompute.DEPTH + PostRouter.SEARCH_DEPTH == 4
    assert RoutingCompute.DEPTH + PostRouter.UPDATE_DEPTH == 5
