"""Unit tests for the block result encoders."""

import pytest

from repro.core import Encoding, ResultEncoder, pack_match_bits
from repro.errors import ConfigError


def test_pack_match_bits():
    assert pack_match_bits([]) == 0
    assert pack_match_bits([True, False, True]) == 0b101
    assert pack_match_bits([False] * 8) == 0


def test_encoder_validation():
    with pytest.raises(ConfigError):
        ResultEncoder("priority", 8)
    with pytest.raises(ConfigError):
        ResultEncoder(Encoding.PRIORITY, 0)


def test_encode_checks_bit_count():
    encoder = ResultEncoder(Encoding.PRIORITY, 4)
    with pytest.raises(ConfigError, match="expected 4"):
        encoder.encode(0, [True])


def test_priority_encoding():
    encoder = ResultEncoder(Encoding.PRIORITY, 8)
    result = encoder.encode(42, [False, False, True, False, True, False, False, False])
    assert result.hit and result.address == 2 and result.match_count == 2
    assert encoder.bus_value(result) == (1 << 3) | 2


def test_one_hot_encoding():
    encoder = ResultEncoder(Encoding.ONE_HOT, 4)
    result = encoder.encode(1, [True, False, False, True])
    assert encoder.bus_value(result) == 0b1001


def test_count_encoding():
    encoder = ResultEncoder(Encoding.COUNT, 4)
    result = encoder.encode(1, [True, True, True, False])
    assert encoder.bus_value(result) == 3


def test_binary_encoding_multi_flag():
    encoder = ResultEncoder(Encoding.BINARY, 8)
    single = encoder.encode(1, [False, True] + [False] * 6)
    multi = encoder.encode(1, [True, True] + [False] * 6)
    assert encoder.bus_value(single) == (1 << 3) | 1
    assert encoder.bus_value(multi) == (1 << 4) | (1 << 3) | 0


def test_output_width():
    assert ResultEncoder(Encoding.ONE_HOT, 128).output_width == 128
    assert ResultEncoder(Encoding.PRIORITY, 128).output_width == 8
    assert ResultEncoder(Encoding.COUNT, 128).output_width == 8
    assert ResultEncoder(Encoding.BINARY, 128).output_width == 9


def test_miss_encodes_to_zero():
    for encoding in Encoding:
        encoder = ResultEncoder(encoding, 8)
        result = encoder.encode(3, [False] * 8)
        assert encoder.bus_value(result) == 0
