"""Unit + property tests for the wide-word (multi-lane) CAM."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import WideCamSession, wide_binary, wide_ternary
from repro.errors import ConfigError

WIDTH = 96  # two 48-bit lanes


def make(capacity=32, width=WIDTH):
    return WideCamSession(capacity, width, block_size=16, bus_width=128)


def test_narrow_width_rejected():
    with pytest.raises(ConfigError, match="fits one DSP slice"):
        WideCamSession(32, 48)


def test_lane_decomposition():
    cam = make(width=100)
    assert cam.num_lanes == 3
    assert cam._lane_widths == [48, 48, 4]


def test_wide_roundtrip():
    cam = make()
    keys = [0xDEADBEEF_CAFEBABE_0042, 0x1, 1 << 95]
    cam.update(keys)
    for index, key in enumerate(keys):
        result = cam.search_one(key)
        assert result.hit and result.address == index
    assert not cam.contains(0xDEADBEEF_CAFEBABE_0043)


def test_partial_fragment_match_is_a_miss():
    """Matching one lane but not the other must miss -- the AND merge."""
    cam = make()
    stored = (0xAAAA << 48) | 0x5555
    cam.update([stored])
    assert cam.contains(stored)
    assert not cam.contains((0xAAAA << 48) | 0x5556)  # low lane differs
    assert not cam.contains((0xAAAB << 48) | 0x5555)  # high lane differs


def test_wide_ternary_dont_cares_cross_lanes():
    cam = make()
    # Don't-care bits straddling the lane boundary (bits 44..52).
    dont_care = ((1 << 9) - 1) << 44
    entry = wide_ternary(0, dont_care, WIDTH)
    cam.update([entry])
    assert cam.contains(0)
    assert cam.contains(0b101 << 45)
    assert not cam.contains(1 << 60)


def test_duplicate_entries_match_count():
    cam = make()
    value = 0x1234_5678_9ABC_DEF0_1234
    cam.update([wide_binary(value, WIDTH), wide_binary(value, WIDTH)])
    result = cam.search_one(value)
    assert result.match_count == 2
    assert result.address == 0


def test_entry_width_validation():
    cam = make()
    with pytest.raises(ConfigError, match="entry width"):
        cam.update([wide_binary(1, 64)])
    with pytest.raises(Exception):
        cam.search([1 << WIDTH])


def test_reset():
    cam = make()
    cam.update([42])
    cam.reset()
    assert not cam.contains(42)
    assert cam.occupancy == 0


def test_resources_scale_with_lanes():
    cam = make()
    vec = cam.resources()
    assert vec.dsp == 2 * 32  # two lanes x capacity


def test_latency_equals_single_lane():
    cam = make()
    assert cam.search_latency == cam.lanes[0].unit.search_latency


@settings(max_examples=15, deadline=None)
@given(
    stored=st.lists(st.integers(0, (1 << WIDTH) - 1), min_size=1, max_size=8),
    probes=st.lists(st.integers(0, (1 << WIDTH) - 1), min_size=1, max_size=4),
)
def test_wide_matches_plain_model(stored, probes):
    cam = make()
    cam.update(stored)
    for probe in probes + stored[:2]:
        expected_vector = 0
        for address, value in enumerate(stored):
            if value == probe:
                expected_vector |= 1 << address
        result = cam.search_one(probe)
        assert result.match_vector == expected_vector
