"""Unit tests for core result types."""

from repro.core import Encoding, SearchResult, UpdateReceipt


def test_from_vector_miss():
    result = SearchResult.from_vector(5, 0)
    assert not result.hit
    assert result.address is None
    assert result.match_count == 0


def test_from_vector_single_hit():
    result = SearchResult.from_vector(5, 0b0100)
    assert result.hit
    assert result.address == 2
    assert result.match_count == 1


def test_from_vector_multi_hit_picks_lowest():
    result = SearchResult.from_vector(5, 0b1010_0010)
    assert result.address == 1
    assert result.match_count == 3


def test_offset_rebases_address_and_vector():
    result = SearchResult.from_vector(9, 0b1)
    moved = result.offset(16)
    assert moved.address == 16
    assert moved.match_vector == 1 << 16
    assert moved.key == 9


def test_offset_of_miss_keeps_none():
    assert SearchResult.from_vector(9, 0).offset(16).address is None


def test_encoded_priority():
    result = SearchResult.from_vector(9, 0b100, Encoding.PRIORITY)
    # size 16 -> 4 address bits; hit flag is bit 4.
    assert result.encoded(16) == (1 << 4) | 2
    miss = SearchResult.from_vector(9, 0, Encoding.PRIORITY)
    assert miss.encoded(16) == 0


def test_encoded_one_hot():
    result = SearchResult.from_vector(9, 0b1010, Encoding.ONE_HOT)
    assert result.encoded(16) == 0b1010


def test_encoded_count():
    result = SearchResult.from_vector(9, 0b1110, Encoding.COUNT)
    assert result.encoded(16) == 3


def test_encoded_binary_multi_flag():
    single = SearchResult.from_vector(9, 0b0100, Encoding.BINARY)
    multi = SearchResult.from_vector(9, 0b0110, Encoding.BINARY)
    assert single.encoded(16) == (1 << 4) | 2
    assert multi.encoded(16) == (1 << 5) | (1 << 4) | 1


def test_update_receipt():
    receipt = UpdateReceipt.for_words([(0, 0), (0, 1), (1, 0)])
    assert receipt.words_written == 3
    assert receipt.locations[2] == (1, 0)
