"""Unit tests for the round-robin block address controller."""

import pytest

from repro.core import BlockAddressController
from repro.errors import CapacityError, RoutingError


def make(blocks=4, size=8):
    return BlockAddressController(blocks_per_group=blocks, block_size=size)


def test_validation():
    with pytest.raises(RoutingError):
        BlockAddressController(0, 8)
    with pytest.raises(RoutingError):
        BlockAddressController(4, 0)


def test_capacity():
    assert make(4, 8).capacity == 32


def test_plan_fits_in_current_block():
    ctrl = make()
    plan = ctrl.plan(3, [8, 8, 8, 8])
    assert plan.segments == ((0, 3),)
    assert plan.new_cursor == 0  # block not full, cursor stays


def test_plan_exactly_fills_block_advances_cursor():
    ctrl = make()
    plan = ctrl.plan(8, [8, 8, 8, 8])
    assert plan.segments == ((0, 8),)
    assert plan.new_cursor == 1


def test_plan_splits_across_blocks():
    ctrl = make()
    plan = ctrl.plan(10, [8, 8, 8, 8])
    assert plan.segments == ((0, 8), (1, 2))
    assert plan.new_cursor == 1


def test_plan_skips_full_blocks():
    ctrl = make()
    ctrl.cursor = 0
    plan = ctrl.plan(2, [0, 0, 8, 8])
    assert plan.segments == ((2, 2),)


def test_plan_does_not_mutate_until_commit():
    ctrl = make()
    plan = ctrl.plan(8, [8, 8, 8, 8])
    assert ctrl.cursor == 0
    ctrl.commit(plan)
    assert ctrl.cursor == 1


def test_round_robin_wraps():
    ctrl = make(2, 4)
    plan = ctrl.plan(4, [1, 4])  # only 1 free in block 0
    # cursor at 0: take 1, advance, take 3 from block 1.
    assert plan.segments == ((0, 1), (1, 3))


def test_overflow_raises():
    ctrl = make(2, 4)
    with pytest.raises(CapacityError, match="full"):
        ctrl.plan(9, [4, 4])
    with pytest.raises(CapacityError):
        ctrl.plan(1, [0, 0])


def test_plan_argument_validation():
    ctrl = make()
    with pytest.raises(RoutingError, match="allocate"):
        ctrl.plan(0, [8, 8, 8, 8])
    with pytest.raises(RoutingError, match="free counts"):
        ctrl.plan(1, [8, 8])


def test_reset():
    ctrl = make()
    ctrl.commit(ctrl.plan(8, [8, 8, 8, 8]))
    assert ctrl.cursor == 1
    ctrl.reset()
    assert ctrl.cursor == 0


def test_sequence_of_beats_is_dense():
    """Simulated fill: beats of 3 into 2 blocks of 4 never leave holes."""
    ctrl = make(2, 4)
    free = [4, 4]
    written = []
    for _ in range(2):
        plan = ctrl.plan(3, free)
        for slot, count in plan.segments:
            written.append((slot, count))
            free[slot] -= count
        ctrl.commit(plan)
    assert sum(count for _, count in written) == 6
    assert free == [0, 2]
