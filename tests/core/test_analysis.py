"""Unit tests for the measured evaluation layer (section IV)."""

import pytest

from repro.core import (
    CamType,
    measure_block,
    measure_cell,
    measure_unit_performance,
    our_survey_row,
    unit_scaling,
)


# ----------------------------------------------------------------------
# Table V
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cam_type", list(CamType))
def test_cell_report_matches_table_v(cam_type):
    report = measure_cell(cam_type)
    assert report.update_latency == 1
    assert report.search_latency == 2
    assert report.resources.dsp == 1
    assert report.resources.lut == 0
    assert report.resources.bram == 0


def test_cell_report_is_width_independent():
    assert measure_cell(CamType.BINARY, data_width=16).search_latency == 2


# ----------------------------------------------------------------------
# Table VI
# ----------------------------------------------------------------------
def test_block_report_small_sizes():
    report = measure_block(32)
    assert report.update_latency == 1
    assert report.search_latency == 3
    assert report.frequency_mhz == 300.0
    assert report.resources.dsp == 32
    assert report.update_throughput_mops == pytest.approx(3000)  # 10 words x 300


def test_block_report_buffered_size():
    report = measure_block(256)
    assert report.search_latency == 4
    assert report.update_latency == 1
    assert report.search_throughput_mops == pytest.approx(300)


def test_block_report_utilisations_small():
    report = measure_block(64)
    assert 0 < report.lut_utilisation < 0.001
    assert 0 < report.dsp_utilisation < 0.01


# ----------------------------------------------------------------------
# Table VII
# ----------------------------------------------------------------------
def test_unit_scaling_max_config():
    report = unit_scaling(9728)
    assert report.luts == 45244
    assert report.dsps == 9728
    assert report.frequency_mhz == pytest.approx(235.0)
    assert report.dsp_utilisation == pytest.approx(9728 / 12288)
    assert report.lut_utilisation < 0.03


def test_unit_scaling_small_config():
    report = unit_scaling(512)
    assert report.frequency_mhz == pytest.approx(300.0)
    assert report.dsps == 512


# ----------------------------------------------------------------------
# Table VIII
# ----------------------------------------------------------------------
def test_unit_perf_small():
    report = measure_unit_performance(128, block_size=64)
    assert report.update_latency == 6
    assert report.search_latency == 7
    assert report.update_throughput_mops == pytest.approx(4800)
    assert report.search_throughput_mops == pytest.approx(300)


def test_unit_perf_latency_step_at_2k():
    report = measure_unit_performance(2048, block_size=128)
    assert report.search_latency == 8
    assert report.update_latency == 6


# ----------------------------------------------------------------------
# Table I (our row)
# ----------------------------------------------------------------------
def test_our_survey_row_shape():
    row = our_survey_row()
    assert row["entries"] == 9728
    assert row["width"] == 48
    assert row["dsp"] == 9728
    assert row["update_latency"] == 6
    assert row["search_latency"] == 8
    assert row["bram"] == 4
    assert row["frequency_mhz"] == pytest.approx(235.0)
