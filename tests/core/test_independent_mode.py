"""Deeper coverage of the independent-CAM group mode (extension).

In independent mode the unit's groups are separate logical CAMs:
updates name a target group, searches pair each key with a distinct
group, and content never crosses group boundaries -- a multi-tenant
arrangement (e.g. one flow table per port).
"""

from dataclasses import replace

import pytest

from repro.core import CamSession, ReferenceCam, binary_entry, unit_for_entries
from repro.errors import CapacityError, RoutingError


def make_session(groups=4):
    config = replace(
        unit_for_entries(64, block_size=16, data_width=16, bus_width=64,
                         default_groups=groups),
        replicate_updates=False,
    )
    return CamSession(config)


def test_tenants_are_fully_isolated():
    session = make_session()
    for group in range(4):
        session.update([binary_entry(100 + group, 16)], group=group)
    for group in range(4):
        result = session.search([100 + group], groups=[group])[0]
        assert result.hit and result.address == 0
        for other in range(4):
            if other == group:
                continue
            assert not session.search([100 + group], groups=[other])[0].hit


def test_per_group_capacity_is_independent():
    session = make_session(groups=4)  # 16 entries per group
    session.update([binary_entry(v, 16) for v in range(16)], group=0)
    with pytest.raises(CapacityError):
        session.update([binary_entry(99, 16)], group=0)
    # Other groups unaffected.
    session.update([binary_entry(5, 16)], group=1)
    assert session.search([5], groups=[1])[0].hit


def test_addresses_are_group_local():
    session = make_session(groups=2)
    session.update([binary_entry(1, 16), binary_entry(2, 16)], group=0)
    session.update([binary_entry(2, 16)], group=1)
    assert session.search([2], groups=[0])[0].address == 1
    assert session.search([2], groups=[1])[0].address == 0


def test_concurrent_searches_across_tenants():
    session = make_session(groups=4)
    for group in range(4):
        session.update([binary_entry(group * 10, 16)], group=group)
    results = session.search([0, 10, 20, 30], groups=[0, 1, 2, 3])
    assert all(result.hit for result in results)
    crossed = session.search([0, 10, 20, 30], groups=[1, 2, 3, 0])
    assert not any(result.hit for result in crossed)


def test_each_tenant_matches_its_own_reference():
    session = make_session(groups=2)
    references = [ReferenceCam(32), ReferenceCam(32)]
    workloads = {
        0: [3, 7, 3, 9],
        1: [7, 7, 1],
    }
    for group, values in workloads.items():
        entries = [binary_entry(v, 16) for v in values]
        session.update(entries, group=group)
        references[group].update(entries)
    for group in (0, 1):
        for probe in (1, 3, 7, 9, 42):
            hw = session.search([probe], groups=[group])[0]
            gold = references[group].search(probe)
            assert hw.match_vector == gold.match_vector, (group, probe)


def test_reset_clears_every_tenant():
    session = make_session(groups=2)
    session.update([binary_entry(1, 16)], group=0)
    session.update([binary_entry(2, 16)], group=1)
    session.reset()
    assert not session.search([1], groups=[0])[0].hit
    assert not session.search([2], groups=[1])[0].hit


def test_delete_by_content_spans_tenants():
    """issue_delete broadcasts: the same content dies in every group.

    (A per-tenant delete would need a group-targeted variant; the
    broadcast semantics follow the replicated-mode design.)
    """
    session = make_session(groups=2)
    session.update([binary_entry(5, 16)], group=0)
    session.update([binary_entry(5, 16)], group=1)
    session.delete(5)
    assert not session.search([5], groups=[0])[0].hit
    assert not session.search([5], groups=[1])[0].hit


def test_group_argument_validation():
    session = make_session(groups=2)
    with pytest.raises(RoutingError):
        session.update([binary_entry(1, 16)])  # group required
    with pytest.raises(RoutingError):
        session.update([binary_entry(1, 16)], group=2)
