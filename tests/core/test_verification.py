"""Unit tests for the self-service equivalence checker."""

import pytest

from repro.core import (
    CamType,
    check_equivalence,
    unit_for_entries,
)
from repro.errors import ConfigError


def config(cam_type=CamType.BINARY, groups=2):
    return unit_for_entries(
        64, block_size=16, data_width=12, bus_width=64,
        cam_type=cam_type, default_groups=groups,
    )


@pytest.mark.parametrize("cam_type", list(CamType))
def test_every_cam_type_passes(cam_type):
    report = check_equivalence(config(cam_type), operations=120, seed=3)
    assert report.passed, report.summary()
    assert report.searches > 0
    assert report.updates > 0
    assert report.simulated_cycles > 0


def test_report_counts_sum_to_operations():
    report = check_equivalence(config(), operations=80, seed=4)
    assert (report.searches + report.updates + report.deletes +
            report.resets) == report.operations


def test_summary_renders():
    report = check_equivalence(config(), operations=30, seed=5)
    text = report.summary()
    assert text.startswith("PASS")
    assert "30 ops" in text


def test_reproducible_per_seed():
    first = check_equivalence(config(), operations=60, seed=6)
    second = check_equivalence(config(), operations=60, seed=6)
    assert first.searches == second.searches
    assert first.simulated_cycles == second.simulated_cycles


def test_operations_validation():
    with pytest.raises(ConfigError):
        check_equivalence(config(), operations=0)


def test_unusual_configuration_passes():
    """The point of the checker: odd widths/groups still verify."""
    odd = unit_for_entries(
        96, block_size=32, data_width=11, bus_width=128,
        cam_type=CamType.TERNARY, default_groups=3,
    )
    report = check_equivalence(odd, operations=100, seed=7)
    assert report.passed, report.summary()


def test_session_reuse():
    from repro.core import CamSession

    session = CamSession(config())
    first = check_equivalence(config(), operations=40, seed=8,
                              session=session)
    second = check_equivalence(config(), operations=40, seed=9,
                               session=session)
    assert first.passed and second.passed
