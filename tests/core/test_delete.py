"""Unit tests for the delete-by-content extension (DESIGN.md section 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BlockConfig,
    CamBlock,
    CamSession,
    CellConfig,
    ReferenceCam,
    binary_entry,
    unit_for_entries,
)
from repro.sim import Simulator


def make_session():
    return CamSession(unit_for_entries(
        64, block_size=16, data_width=32, bus_width=128, default_groups=2
    ))


# ----------------------------------------------------------------------
# block level
# ----------------------------------------------------------------------
def test_block_delete_invalidates_matches():
    config = BlockConfig(cell=CellConfig(data_width=32), block_size=16,
                         bus_width=128)
    block = CamBlock(config)
    sim = Simulator(block)
    block.issue_update([binary_entry(v, 32) for v in (1, 2, 1)])
    sim.step()
    block.issue_delete(1)
    sim.run_until(lambda: block.result_valid, 8)
    assert block.result.match_count == 2
    assert block.live_entries == 1
    block.issue_search(1)
    sim.step()  # consume the stale delete-result pulse
    sim.run_until(lambda: block.result_valid, 8)
    assert not block.result.hit


def test_block_delete_miss_is_noop():
    config = BlockConfig(cell=CellConfig(data_width=32), block_size=16,
                         bus_width=128)
    block = CamBlock(config)
    sim = Simulator(block)
    block.issue_update([binary_entry(5, 32)])
    sim.step()
    block.issue_delete(99)
    sim.run_until(lambda: block.result_valid, 8)
    assert not block.result.hit
    assert block.live_entries == 1


# ----------------------------------------------------------------------
# unit / session level
# ----------------------------------------------------------------------
def test_session_delete_reports_matches():
    session = make_session()
    session.update([1, 2, 3, 2])
    result = session.delete(2)
    assert result.hit and result.match_count == 2
    assert not session.contains(2)
    assert session.contains(1) and session.contains(3)


def test_delete_applies_to_every_replica():
    session = make_session()
    session.update([7])
    session.delete(7)
    # Both groups must miss.
    results = session.search([7, 7])
    assert not results[0].hit and not results[1].hit


def test_deleted_addresses_not_reused():
    """Invalidation leaves holes; surviving addresses are stable."""
    session = make_session()
    session.update([10, 20, 30])
    session.delete(20)
    assert session.search_one(30).address == 2
    session.update([40])
    assert session.search_one(40).address == 3


def test_delete_then_reset_reclaims_space():
    session = make_session()
    session.update(list(range(32)))  # fills each group
    session.delete(5)
    session.reset()
    session.update(list(range(32)))  # fits again after reset
    assert session.contains(5)


@settings(max_examples=20, deadline=None)
@given(
    stored=st.lists(st.integers(0, 255), min_size=1, max_size=20),
    doomed=st.integers(0, 255),
    probes=st.lists(st.integers(0, 255), min_size=1, max_size=8),
)
def test_delete_matches_reference_model(stored, doomed, probes):
    session = make_session()
    reference = ReferenceCam(32)
    entries = [binary_entry(v, 32) for v in stored]
    session.update(entries)
    reference.update(entries)
    hw_deleted = session.delete(doomed)
    gold_deleted = reference.delete(doomed)
    assert hw_deleted.match_vector == gold_deleted.match_vector
    for probe in probes:
        assert session.search_one(probe).match_vector == \
            reference.search(probe).match_vector
