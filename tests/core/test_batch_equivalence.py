"""Property-based equivalence proof of the vectorized batch engine.

The batch engine (:mod:`repro.core.batch`) claims bit-identical
results *and* identical cycle accounting to the cycle-accurate
simulator for every configuration. This suite makes that claim a
hypothesis property: random unit configurations (binary/ternary,
varying block sizes, group counts, key widths, bus widths) and random
operation interleavings are driven through the cycle engine, the batch
engine and the golden :class:`ReferenceCam` at once, comparing every
result field, every stats tuple and the cycle counters after every
operation (:func:`repro.core.check_three_way`).

Run the deep profile (``HYPOTHESIS_PROFILE=deep``) for many more
examples; the default profile keeps the suite inside the tier-1 time
budget.
"""

import os
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

#: The CI "deep" job sets HYPOTHESIS_PROFILE=deep for a much longer
#: randomised soak; the default profile stays inside the tier-1 budget.
_DEEP = os.environ.get("HYPOTHESIS_PROFILE", "") == "deep"

from repro.core import (
    AuditSession,
    BatchSession,
    CamSession,
    CamType,
    ReferenceCam,
    binary_entry,
    check_three_way,
    open_session,
    session_class_for,
    ternary_entry,
    unit_for_entries,
)
from repro.errors import AuditError, CapacityError, ConfigError, RoutingError


@st.composite
def unit_configs(draw):
    """Random (but valid) unit configurations across the design space."""
    cam_type = draw(st.sampled_from([CamType.BINARY, CamType.TERNARY]))
    block_size = draw(st.sampled_from([8, 16, 32]))
    num_blocks = draw(st.sampled_from([2, 4]))
    groups = draw(st.sampled_from(
        [g for g in (1, 2, 4) if num_blocks % g == 0]
    ))
    data_width = draw(st.sampled_from([8, 12, 16, 24, 32, 48]))
    bus_width = draw(st.sampled_from([64, 128, 256]))
    return unit_for_entries(
        block_size * num_blocks,
        block_size=block_size,
        data_width=data_width,
        bus_width=bus_width,
        cam_type=cam_type,
        default_groups=groups,
    )


class TestThreeWayDifferential:
    """Random configs x random interleavings, all three models agree."""

    @given(config=unit_configs(), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=80 if _DEEP else 10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_configs_and_interleavings(self, config, seed):
        report = check_three_way(config, operations=25, seed=seed)
        assert report.passed, report.summary()

    def test_buffered_configuration(self):
        # block_size >= 256 flips the encoder output buffer on, which
        # changes the search latency (7 -> 8); the formulas must track it.
        config = unit_for_entries(512, block_size=256, data_width=16,
                                  bus_width=128, default_groups=2)
        assert config.search_latency == 8
        report = check_three_way(config, operations=30, seed=3)
        assert report.passed, report.summary()

    def test_range_configuration(self):
        config = unit_for_entries(32, block_size=16, data_width=16,
                                  bus_width=64, cam_type=CamType.RANGE,
                                  default_groups=2)
        report = check_three_way(config, operations=40, seed=5)
        assert report.passed, report.summary()


# ----------------------------------------------------------------------
# cheap lockstep properties (no cycle simulator: batch vs golden model)
# ----------------------------------------------------------------------
@given(
    words=st.lists(st.integers(0, (1 << 12) - 1), min_size=1, max_size=32),
    probes=st.lists(st.integers(0, (1 << 12) - 1), min_size=1, max_size=16),
)
@settings(max_examples=300 if _DEEP else 60, deadline=None)
def test_batch_matches_golden_reference(words, probes):
    config = unit_for_entries(64, block_size=16, data_width=12,
                              bus_width=64, default_groups=2)
    session = BatchSession(config)
    reference = ReferenceCam(session.capacity)
    entries = [binary_entry(w, 12) for w in words]
    session.update(entries)
    reference.update(entries)
    for probe in probes + words:
        fast = session.search_one(probe)
        gold = reference.search(probe)
        assert (fast.hit, fast.address, fast.match_vector, fast.match_count) \
            == (gold.hit, gold.address, gold.match_vector, gold.match_count)


@given(
    stored=st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)),
                    min_size=1, max_size=16),
    probes=st.lists(st.integers(0, 255), min_size=1, max_size=8),
)
@settings(max_examples=300 if _DEEP else 60, deadline=None)
def test_batch_ternary_matches_golden_reference(stored, probes):
    config = unit_for_entries(32, block_size=16, data_width=8, bus_width=64,
                              cam_type=CamType.TERNARY, default_groups=1)
    session = BatchSession(config)
    reference = ReferenceCam(session.capacity)
    entries = [ternary_entry(value & ~care & 0xFF, care, 8)
               for value, care in stored]
    session.update(entries)
    reference.update(entries)
    for probe in probes:
        fast = session.search_one(probe)
        gold = reference.search(probe)
        assert fast.match_vector == gold.match_vector
        assert fast.address == gold.address


# ----------------------------------------------------------------------
# cycle-accounting formulas against the simulator
# ----------------------------------------------------------------------
@pytest.mark.parametrize("word_count,key_count", [(1, 1), (5, 3), (16, 9)])
def test_cycle_accounting_matches_simulator(word_count, key_count):
    config = unit_for_entries(64, block_size=16, data_width=16,
                              bus_width=64, default_groups=2)
    cycle = CamSession(config)
    batch = BatchSession(config)
    words = list(range(word_count))
    keys = list(range(key_count))
    assert cycle.update(words) == batch.update(words)
    cycle.search(keys)
    batch.search(keys)
    assert cycle.last_search_stats == batch.last_search_stats
    cycle.delete(0)
    batch.delete(0)
    cycle.reset()
    batch.reset()
    cycle.set_groups(1)
    batch.set_groups(1)
    assert cycle.cycle == batch.cycle


# ----------------------------------------------------------------------
# independent (multi-tenant) group mode
# ----------------------------------------------------------------------
def _independent_pair():
    config = replace(
        unit_for_entries(64, block_size=16, data_width=16, bus_width=64,
                         default_groups=4),
        replicate_updates=False,
    )
    return CamSession(config), BatchSession(config)


@given(data=st.data())
@settings(max_examples=100 if _DEEP else 25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_independent_mode_lockstep(data):
    cycle, batch = _independent_pair()
    tenant_words = st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=6)
    for group in range(4):
        words = data.draw(tenant_words, label=f"group{group}")
        assert cycle.update(words, group=group) \
            == batch.update(words, group=group)
    probes = data.draw(
        st.lists(st.integers(0, 0xFFFF), min_size=4, max_size=4),
        label="probes",
    )
    groups = [0, 1, 2, 3]
    for c_r, b_r in zip(cycle.search(probes, groups=groups),
                        batch.search(probes, groups=groups)):
        assert (c_r.hit, c_r.address, c_r.match_vector) \
            == (b_r.hit, b_r.address, b_r.match_vector)
    assert cycle.cycle == batch.cycle


def test_independent_mode_routing_errors_match():
    cycle, batch = _independent_pair()
    for session in (cycle, batch):
        with pytest.raises(RoutingError):
            session.update([1])  # no target group
        with pytest.raises(RoutingError):
            session.update([1], group=9)
        session.update([1], group=0)
        with pytest.raises(RoutingError):
            session.search([1, 2], groups=[0, 0])  # duplicate groups
    assert cycle.cycle == batch.cycle


# ----------------------------------------------------------------------
# engine dispatch and error parity
# ----------------------------------------------------------------------
def test_engine_dispatch_through_open_session(small_unit_config):
    assert type(open_session(small_unit_config)) is CamSession
    batch = open_session(small_unit_config, engine="batch")
    assert isinstance(batch, BatchSession)
    assert isinstance(batch, CamSession)
    audit = open_session(small_unit_config, engine="audit")
    assert isinstance(audit, AuditSession)
    assert (CamSession.engine_name, batch.engine_name, audit.engine_name) \
        == ("cycle", "batch", "audit")


def test_engine_dispatch_rejects_unknown(small_unit_config):
    with pytest.raises(ConfigError):
        open_session(small_unit_config, engine="warp")
    with pytest.raises(ConfigError):
        session_class_for("warp")


def test_open_session_forwards_kwargs(small_unit_config):
    session = open_session(small_unit_config, engine="audit",
                           audit_sample=1.0, audit_seed=3)
    assert isinstance(session, AuditSession)
    assert session.audit_sample == 1.0


def test_batch_rejects_tracing(small_unit_config):
    with pytest.raises(ConfigError):
        open_session(small_unit_config, engine="batch", trace=True)


def test_capacity_error_parity(small_unit_config):
    cycle = CamSession(small_unit_config)
    batch = BatchSession(small_unit_config)
    overflow = list(range(small_unit_config.group_capacity(2) + 1))
    with pytest.raises(CapacityError):
        cycle.update(overflow)
    with pytest.raises(CapacityError):
        batch.update(overflow)
    # Partial-failure semantics match: the fitting beats landed.
    assert cycle.occupancy == batch.occupancy
    assert cycle.cycle == batch.cycle


def test_structural_properties_match(small_unit_config):
    cycle = CamSession(small_unit_config)
    batch = BatchSession(small_unit_config)
    assert cycle.search_latency == batch.search_latency
    assert cycle.update_latency == batch.update_latency
    assert cycle.words_per_beat == batch.words_per_beat
    assert cycle.num_groups == batch.num_groups
    assert cycle.capacity == batch.capacity
    assert cycle.resources() == batch.resources()


# ----------------------------------------------------------------------
# the audit engine actually audits
# ----------------------------------------------------------------------
def test_audit_engine_passes_clean_run(small_unit_config):
    session = open_session(small_unit_config, engine="audit",
                           audit_sample=1.0)
    session.update([10, 20, 30])
    assert session.search_one(20).hit
    session.delete(10)
    assert not session.search_one(10).hit
    session.reset()
    session.update([7])
    report = session.audit_report
    assert report.passed, report.summary()
    assert report.ops_audited >= 5
    assert report.ops_fast_only == 0


def test_audit_engine_detects_corruption(small_unit_config):
    session = open_session(small_unit_config, engine="audit",
                           audit_sample=1.0)
    session.update([10, 20, 30])
    # Corrupt the fast path's store behind the audit's back: the next
    # audited search must diverge from the cycle-accurate shadow.
    session._stores[0].values[1] ^= 1
    with pytest.raises(AuditError):
        session.search_one(20)
    assert not session.audit_report.passed


def test_audit_engine_nonstrict_records_divergence(small_unit_config):
    session = open_session(small_unit_config, engine="audit",
                           audit_sample=1.0, strict=False)
    session.update([10, 20, 30])
    session._stores[0].values[1] ^= 1
    session.search_one(20)  # must not raise
    report = session.audit_report
    assert not report.passed
    assert report.divergences


def test_audit_sampling_skips_unaudited_episodes(small_unit_config):
    session = open_session(small_unit_config, engine="audit",
                           audit_sample=0.0)
    session.update([1, 2, 3])
    session.search_one(2)
    session.reset()
    report = session.audit_report
    assert report.ops_audited == 0
    assert report.ops_fast_only == 2
    assert report.episodes_audited == 0
    assert report.passed


def test_audit_sample_validation(small_unit_config):
    with pytest.raises(ConfigError):
        open_session(small_unit_config, engine="audit", audit_sample=1.5)
