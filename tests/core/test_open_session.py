"""The unified constructor (`repro.open_session`) and the deprecation
shim left behind on ``CamSession`` engine dispatch."""

import warnings

import pytest

import repro
from repro.core import CamSession, unit_for_entries
from repro.core.batch import AuditSession, BatchSession, open_session
from repro.errors import ConfigError
from repro.service.sharded import ShardedCam


@pytest.fixture
def config():
    return unit_for_entries(64, block_size=16, data_width=16, bus_width=128)


# ----------------------------------------------------------------------
# open_session dispatch
# ----------------------------------------------------------------------
def test_top_level_reexport_is_the_same_function():
    assert repro.open_session is open_session
    assert "open_session" in repro.__all__


@pytest.mark.parametrize("engine,cls", [
    ("cycle", CamSession),
    ("batch", BatchSession),
    ("audit", AuditSession),
])
def test_engine_selects_session_class(config, engine, cls):
    session = open_session(config, engine=engine)
    assert type(session) is cls


def test_unknown_engine_rejected(config):
    with pytest.raises(ConfigError):
        open_session(config, engine="warp")


def test_session_kwargs_forwarded(config):
    session = open_session(config, engine="batch", name="front_door")
    assert session.name == "front_door"


# ----------------------------------------------------------------------
# sharded construction through the same front door
# ----------------------------------------------------------------------
def test_shards_gt_one_returns_sharded_cam(config):
    cam = open_session(config, engine="batch", shards=4, policy="hash")
    assert isinstance(cam, ShardedCam)
    assert cam.num_shards == 4
    # satisfies the session protocol end to end
    cam.update([7, 9])
    assert cam.search_one(7).hit
    assert cam.search_one(7).address == 0
    assert cam.delete(9).hit
    assert not cam.contains(9)


def test_shards_one_stays_unsharded(config):
    assert type(open_session(config, shards=1)) is CamSession


def test_invalid_shard_count_rejected(config):
    with pytest.raises(ConfigError):
        open_session(config, shards=0)


# ----------------------------------------------------------------------
# CamSession engine-dispatch deprecation shim
# ----------------------------------------------------------------------
def test_keyword_engine_dispatch_warns_and_still_works(config):
    with pytest.warns(DeprecationWarning, match="open_session"):
        session = CamSession(config, engine="batch")
    assert type(session) is BatchSession


def test_positional_engine_dispatch_warns_and_still_works(config):
    # the latent bug: engine passed positionally used to be silently
    # ignored and a cycle session returned
    with pytest.warns(DeprecationWarning, match="open_session"):
        session = CamSession(config, False, "legacy", "batch")
    assert type(session) is BatchSession
    assert session.name == "legacy"


def test_dispatch_warns_exactly_once_per_construction(config):
    """One construction, one warning -- the shim must not stack
    warnings through ``__new__``/``__init__`` double dispatch, and
    every construction must warn anew (no once-per-process
    suppression baked into the shim itself)."""
    for _ in range(2):  # repeatable: not warning-once-per-process
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            CamSession(config, engine="batch")
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1


def test_plain_construction_does_not_warn(config):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        session = CamSession(config)
        assert type(session) is CamSession
        explicit = CamSession(config, engine="cycle")
        assert type(explicit) is CamSession
