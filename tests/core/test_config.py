"""Unit tests for the Table III configuration surface."""

import pytest

from repro.core import (
    BlockConfig,
    CamType,
    CellConfig,
    Encoding,
    UnitConfig,
    unit_for_entries,
)
from repro.errors import ConfigError


# ----------------------------------------------------------------------
# CellConfig
# ----------------------------------------------------------------------
def test_cell_defaults():
    cell = CellConfig()
    assert cell.cam_type is CamType.BINARY
    assert cell.data_width == 32


def test_cell_width_limits():
    CellConfig(data_width=1)
    CellConfig(data_width=48)
    with pytest.raises(ConfigError, match="data width"):
        CellConfig(data_width=0)
    with pytest.raises(ConfigError, match="data width"):
        CellConfig(data_width=49)


def test_cell_type_validation():
    with pytest.raises(ConfigError, match="cam_type"):
        CellConfig(cam_type="binary")


# ----------------------------------------------------------------------
# BlockConfig
# ----------------------------------------------------------------------
def test_block_size_power_of_two():
    with pytest.raises(ConfigError, match="power of two"):
        BlockConfig(block_size=100)
    with pytest.raises(ConfigError, match=">= 2"):
        BlockConfig(block_size=1)


def test_block_bus_width_check():
    with pytest.raises(ConfigError, match="bus width"):
        BlockConfig(cell=CellConfig(data_width=48), bus_width=32)


def test_words_per_beat():
    block = BlockConfig(cell=CellConfig(data_width=32), bus_width=512)
    assert block.words_per_beat == 16
    narrow = BlockConfig(cell=CellConfig(data_width=48), bus_width=64)
    assert narrow.words_per_beat == 1


def test_block_buffer_policy_follows_paper():
    assert not BlockConfig(block_size=128).buffered
    assert BlockConfig(block_size=256).buffered
    assert BlockConfig(block_size=512).buffered
    # Explicit override wins.
    assert BlockConfig(block_size=512, output_buffer=False).buffered is False
    assert BlockConfig(block_size=32, output_buffer=True).buffered is True


def test_block_latencies_match_table_vi():
    assert BlockConfig(block_size=128).search_latency == 3
    assert BlockConfig(block_size=256).search_latency == 4
    assert BlockConfig(block_size=128).update_latency == 1


def test_buffered_in_unit_threshold():
    block = BlockConfig(block_size=128)
    assert not block.buffered_in_unit(512)
    assert block.buffered_in_unit(2048)
    assert block.buffered_in_unit(8192)


def test_with_buffer_copy():
    block = BlockConfig(block_size=128)
    assert block.with_buffer(True).buffered
    assert not block.buffered


# ----------------------------------------------------------------------
# UnitConfig
# ----------------------------------------------------------------------
def test_unit_totals():
    unit = UnitConfig(block=BlockConfig(block_size=128), num_blocks=16)
    assert unit.total_entries == 2048
    assert unit.words_per_beat == 16


def test_unit_group_divisibility():
    with pytest.raises(ConfigError, match="divide"):
        UnitConfig(num_blocks=6, default_groups=4)
    unit = UnitConfig(num_blocks=6, default_groups=3)
    assert unit.group_sizes(2) == 3
    with pytest.raises(ConfigError, match="divisor"):
        unit.group_sizes(4)


def test_unit_bus_width_default_and_check():
    unit = UnitConfig(block=BlockConfig(bus_width=256))
    assert unit.unit_bus_width == 256
    with pytest.raises(ConfigError, match="unit bus width"):
        UnitConfig(block=BlockConfig(bus_width=512), bus_width=256)


def test_unit_latencies_match_table_viii():
    small = unit_for_entries(512, block_size=128, data_width=32)
    large = unit_for_entries(2048, block_size=128, data_width=32)
    assert small.update_latency == 6
    assert small.search_latency == 7
    assert large.update_latency == 6
    assert large.search_latency == 8  # buffer engages at 2K entries


def test_group_capacity():
    unit = unit_for_entries(512, block_size=128, default_groups=2)
    assert unit.group_capacity(2) == 256
    assert unit.group_capacity(4) == 128


def test_with_groups():
    unit = unit_for_entries(512, block_size=128)
    assert unit.with_groups(4).default_groups == 4
    with pytest.raises(ConfigError):
        unit.with_groups(3)


def test_unit_for_entries_validation():
    with pytest.raises(ConfigError, match="multiple"):
        unit_for_entries(100, block_size=64)


def test_unit_for_entries_table_vii_shape():
    unit = unit_for_entries(9728, block_size=256, data_width=48)
    assert unit.num_blocks == 38
    assert unit.total_entries == 9728
    assert unit.block_buffered
