"""Unit-level tests for non-default result encodings and overrides."""

import pytest

from repro.core import (
    BlockConfig,
    CamSession,
    CamType,
    CellConfig,
    Encoding,
    UnitConfig,
    ternary_entry,
)


def make_session(encoding, groups=2, output_buffer=None):
    block = BlockConfig(
        cell=CellConfig(cam_type=CamType.TERNARY, data_width=16),
        block_size=16,
        bus_width=128,
        encoding=encoding,
        output_buffer=output_buffer,
    )
    config = UnitConfig(block=block, num_blocks=4, default_groups=groups)
    return CamSession(config)


def test_count_encoding_through_unit():
    session = make_session(Encoding.COUNT)
    dup = ternary_entry(9, 0, 16)
    session.update([dup, dup, dup])
    result = session.search_one(9)
    assert result.encoding is Encoding.COUNT
    assert result.match_count == 3
    assert result.encoded(64) == 3


def test_one_hot_encoding_through_unit():
    session = make_session(Encoding.ONE_HOT)
    entries = [ternary_entry(v, 0, 16) for v in (1, 2, 1)]
    session.update(entries)
    result = session.search_one(1)
    assert result.match_vector == 0b101
    assert result.encoded(64) == 0b101


def test_binary_encoding_through_unit():
    session = make_session(Encoding.BINARY)
    dup = ternary_entry(4, 0, 16)
    session.update([dup, dup])
    result = session.search_one(4)
    encoded = result.encoded(64)
    address_bits = 6
    assert encoded & (1 << address_bits)           # hit flag
    assert encoded & (1 << (address_bits + 1))     # multi-match flag


def test_explicit_buffer_override_changes_unit_latency():
    buffered = make_session(Encoding.PRIORITY, output_buffer=True)
    plain = make_session(Encoding.PRIORITY, output_buffer=False)
    assert buffered.unit.search_latency == plain.unit.search_latency + 1
    # Both still answer correctly.
    for session in (buffered, plain):
        session.update([ternary_entry(7, 0, 16)])
        assert session.contains(7)


def test_multi_query_count_results_are_per_group():
    session = make_session(Encoding.COUNT, groups=2)
    dup = ternary_entry(3, 0, 16)
    session.update([dup, dup])
    first, second = session.search([3, 3])
    assert first.match_count == second.match_count == 2


def test_wildcard_entries_count_across_blocks():
    """Don't-care entries spilling into a second block still aggregate."""
    session = make_session(Encoding.COUNT, groups=1)
    # 20 wildcard entries: overflow block 0 (16 cells) into block 1.
    wildcard = ternary_entry(0, 0xFFFF, 16)
    session.update([wildcard] * 20)
    result = session.search_one(0xABCD)
    assert result.match_count == 20
