"""Property-based tests: the hardware model vs the golden reference.

These are the heart of the functional verification: arbitrary update /
search / reset interleavings must make the cycle-accurate CAM and the
list-based :class:`ReferenceCam` agree bit-for-bit on hits, addresses,
match counts and vectors, for all three CAM types.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    CamSession,
    CamType,
    ReferenceCam,
    binary_entry,
    range_entry,
    ternary_entry,
    unit_for_entries,
)
from repro.core.mask import CamEntry
from repro.dsp import mask_for

WIDTH = 16
CAPACITY = 32  # per group: 2 blocks of 16

_session_cache = {}


def fresh_session(cam_type: CamType) -> CamSession:
    """Build (or reuse and reset) a small two-group session."""
    session = _session_cache.get(cam_type)
    if session is None:
        config = unit_for_entries(
            64,
            block_size=16,
            data_width=WIDTH,
            bus_width=64,
            default_groups=2,
            cam_type=cam_type,
        )
        session = CamSession(config)
        _session_cache[cam_type] = session
    else:
        session.reset()
    return session


values = st.integers(min_value=0, max_value=mask_for(WIDTH))
keys = st.integers(min_value=0, max_value=mask_for(WIDTH))


@st.composite
def ternary_entries(draw) -> CamEntry:
    value = draw(values)
    dont_care = draw(values)
    return ternary_entry(value & ~dont_care & mask_for(WIDTH) | (value & ~dont_care),
                         dont_care, WIDTH)


@st.composite
def range_entries(draw) -> CamEntry:
    low_bits = draw(st.integers(min_value=0, max_value=WIDTH - 1))
    extent = 1 << low_bits
    base = draw(st.integers(min_value=0, max_value=(1 << WIDTH) // extent - 1))
    start = base * extent
    return range_entry(start, start + extent - 1, WIDTH)


COMMON_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def assert_agrees(session: CamSession, reference: ReferenceCam, probes):
    hw_results = session.search(probes)
    for probe, hw in zip(probes, hw_results):
        gold = reference.search(probe)
        assert hw.hit == gold.hit, f"hit mismatch for key {probe:#x}"
        assert hw.address == gold.address, f"address mismatch for {probe:#x}"
        assert hw.match_count == gold.match_count
        assert hw.match_vector == gold.match_vector


@COMMON_SETTINGS
@given(
    stored=st.lists(values, min_size=1, max_size=CAPACITY),
    probes=st.lists(keys, min_size=1, max_size=12),
)
def test_binary_cam_matches_reference(stored, probes):
    session = fresh_session(CamType.BINARY)
    reference = ReferenceCam(CAPACITY)
    entries = [binary_entry(v, WIDTH) for v in stored]
    session.update(entries)
    reference.update(entries)
    # Probe both stored values and arbitrary keys.
    assert_agrees(session, reference, probes + stored[:4])


@COMMON_SETTINGS
@given(
    stored=st.lists(ternary_entries(), min_size=1, max_size=CAPACITY),
    probes=st.lists(keys, min_size=1, max_size=12),
)
def test_ternary_cam_matches_reference(stored, probes):
    session = fresh_session(CamType.TERNARY)
    reference = ReferenceCam(CAPACITY)
    session.update(stored)
    reference.update(stored)
    assert_agrees(session, reference, probes)


@COMMON_SETTINGS
@given(
    stored=st.lists(range_entries(), min_size=1, max_size=CAPACITY),
    probes=st.lists(keys, min_size=1, max_size=12),
)
def test_range_cam_matches_reference(stored, probes):
    session = fresh_session(CamType.RANGE)
    reference = ReferenceCam(CAPACITY)
    session.update(stored)
    reference.update(stored)
    assert_agrees(session, reference, probes)


@COMMON_SETTINGS
@given(
    batches=st.lists(
        st.lists(values, min_size=1, max_size=8), min_size=1, max_size=4
    ),
    probes=st.lists(keys, min_size=1, max_size=8),
)
def test_incremental_updates_match_reference(batches, probes):
    """Interleaved update batches preserve insertion-order addressing."""
    session = fresh_session(CamType.BINARY)
    reference = ReferenceCam(CAPACITY)
    total = 0
    for batch in batches:
        batch = batch[: CAPACITY - total]
        if not batch:
            break
        entries = [binary_entry(v, WIDTH) for v in batch]
        session.update(entries)
        reference.update(entries)
        total += len(batch)
    assert_agrees(session, reference, probes)


@COMMON_SETTINGS
@given(data=st.data())
def test_reset_between_fills(data):
    """Content from before a reset must never match after it."""
    session = fresh_session(CamType.BINARY)
    before = data.draw(st.lists(values, min_size=1, max_size=8), label="before")
    after = data.draw(st.lists(values, min_size=1, max_size=8), label="after")
    session.update([binary_entry(v, WIDTH) for v in before])
    session.reset()
    reference = ReferenceCam(CAPACITY)
    entries = [binary_entry(v, WIDTH) for v in after]
    session.update(entries)
    reference.update(entries)
    assert_agrees(session, reference, list(set(before) | set(after)))


@COMMON_SETTINGS
@given(
    stored=st.lists(values, min_size=1, max_size=CAPACITY),
    probe=keys,
)
def test_multi_query_replicas_agree(stored, probe):
    """Both groups must give the identical answer for the same key."""
    session = fresh_session(CamType.BINARY)
    session.update([binary_entry(v, WIDTH) for v in stored])
    first, second = session.search([probe, probe])
    assert first.hit == second.hit
    assert first.address == second.address
    assert first.match_vector == second.match_vector


@pytest.mark.parametrize("low_bits", range(0, WIDTH))
def test_every_power_of_two_range_is_expressible(low_bits):
    """Deterministic sweep of the RMCAM alignment restriction."""
    extent = 1 << low_bits
    entry = range_entry(0, extent - 1, WIDTH)
    assert entry.matches(0)
    assert entry.matches(extent - 1)
    if extent < (1 << WIDTH):
        assert not entry.matches(extent)
