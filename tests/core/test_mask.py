"""Unit tests for Table II mask semantics."""

import pytest

from repro.core import (
    CamEntry,
    CamType,
    binary_entry,
    entry_for,
    range_entry,
    ternary_entry,
    ternary_entry_from_pattern,
    width_mask,
)
from repro.dsp import DSP_WIDTH, mask_for
from repro.errors import MaskError


# ----------------------------------------------------------------------
# width masking
# ----------------------------------------------------------------------
def test_width_mask_covers_unused_bits():
    mask = width_mask(32)
    assert mask == mask_for(DSP_WIDTH) ^ mask_for(32)
    assert width_mask(48) == 0


def test_width_mask_validation():
    with pytest.raises(MaskError):
        width_mask(0)
    with pytest.raises(MaskError):
        width_mask(49)


# ----------------------------------------------------------------------
# BCAM
# ----------------------------------------------------------------------
def test_binary_entry_exact_match_only():
    entry = binary_entry(0xABCD, 16)
    assert entry.matches(0xABCD)
    assert not entry.matches(0xABCC)
    assert not entry.matches(0)


def test_binary_entry_ignores_upper_garbage():
    """Bits above the data width must not affect matching (Table II)."""
    entry = binary_entry(0xAB, 8)
    assert entry.matches(0xAB | (1 << 20))


def test_binary_entry_width_check():
    with pytest.raises(Exception):
        binary_entry(0x100, 8)


# ----------------------------------------------------------------------
# TCAM
# ----------------------------------------------------------------------
def test_ternary_entry_dont_care_bits():
    entry = ternary_entry(0b1010_0000, 0b0000_1111, 8)
    for low in range(16):
        assert entry.matches(0b1010_0000 | low)
    assert not entry.matches(0b1011_0000)


def test_ternary_pattern_parsing():
    entry = ternary_entry_from_pattern("10XX", 8)
    assert entry.matches(0b1000)
    assert entry.matches(0b1011)
    assert not entry.matches(0b1100)


def test_ternary_pattern_with_separators():
    entry = ternary_entry_from_pattern("1010_XXXX", 8)
    assert entry.matches(0b1010_0110)


def test_ternary_pattern_validation():
    with pytest.raises(MaskError, match="empty"):
        ternary_entry_from_pattern("", 8)
    with pytest.raises(MaskError, match="wider"):
        ternary_entry_from_pattern("1" * 9, 8)
    with pytest.raises(MaskError, match="invalid"):
        ternary_entry_from_pattern("102", 8)


def test_ternary_all_dont_care_matches_everything():
    entry = ternary_entry_from_pattern("XXXX", 4)
    for key in range(16):
        assert entry.matches(key)


# ----------------------------------------------------------------------
# RMCAM
# ----------------------------------------------------------------------
def test_range_entry_inclusive_bounds():
    entry = range_entry(0x40, 0x7F, 16)
    assert entry.matches(0x40)
    assert entry.matches(0x7F)
    assert entry.matches(0x55)
    assert not entry.matches(0x3F)
    assert not entry.matches(0x80)


def test_range_single_value():
    entry = range_entry(5, 5, 8)
    assert entry.matches(5)
    assert not entry.matches(4)


def test_range_entry_rejects_non_power_of_two_extent():
    with pytest.raises(MaskError, match="not a power of two"):
        range_entry(0, 2, 8)


def test_range_entry_rejects_misaligned_start():
    with pytest.raises(MaskError, match="not aligned"):
        range_entry(4, 11, 8)


def test_range_entry_rejects_inverted_bounds():
    with pytest.raises(MaskError, match="below start"):
        range_entry(8, 7, 8)


def test_full_width_range():
    entry = range_entry(0, 255, 8)
    for key in (0, 17, 255):
        assert entry.matches(key)


# ----------------------------------------------------------------------
# dispatch + care bits
# ----------------------------------------------------------------------
def test_entry_for_dispatch():
    assert entry_for(CamType.BINARY, 8, 5).matches(5)
    assert entry_for(CamType.TERNARY, 8, 4, 3).matches(7)
    assert entry_for(CamType.RANGE, 8, 8, 15).matches(12)
    with pytest.raises(MaskError):
        entry_for("bogus", 8, 1)


def test_care_bits():
    entry = ternary_entry(0, 0b0011, 8)
    assert entry.care_bits == 0b1111_1100


def test_cam_entry_is_hashable_and_frozen():
    entry = binary_entry(1, 8)
    with pytest.raises(AttributeError):
        entry.value = 2
    assert entry == CamEntry(value=1, mask=width_mask(8), width=8)
