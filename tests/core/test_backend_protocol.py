"""Conformance suite for the :class:`repro.core.CamStore` /
:class:`repro.core.CamBackend` protocols.

Every backend the service layer can be pointed at -- cycle, batch and
audit engine sessions, the sharded facade, replica sets -- must expose
the full ``CamBackend`` surface; the golden ``ReferenceCam`` satisfies
the minimal ``CamStore`` contract.  The checks are runtime
``isinstance`` probes (``issubclass`` is unsupported because the
protocols carry data members) plus behavioural smoke of the shared
surface so a renamed method cannot silently drop a backend out of the
protocol.
"""

import pytest

import repro
from repro.core import (
    CamBackend,
    CamSession,
    CamStore,
    ReferenceCam,
    SearchResult,
    unit_for_entries,
)
from repro.core.batch import AuditSession, BatchSession
from repro.service import ReplicaSet, ShardedCam


def _config():
    return unit_for_entries(64, block_size=16, data_width=16, bus_width=128)


def _backends():
    config = _config()
    return {
        "cycle": CamSession(config),
        "batch": BatchSession(config),
        "audit": AuditSession(config),
        "sharded": ShardedCam(config, shards=2, engine="batch"),
        "replicated": ReplicaSet(
            [BatchSession(config), BatchSession(config)]
        ),
        "sharded_replicated": ShardedCam(
            config, shards=2, engine="batch", replicas=2
        ),
    }


BACKENDS = _backends()


@pytest.fixture(params=sorted(BACKENDS))
def backend(request):
    instance = BACKENDS[request.param]
    instance.reset()
    return instance


# ----------------------------------------------------------------------
# protocol membership
# ----------------------------------------------------------------------
def test_every_backend_conforms(backend):
    assert isinstance(backend, CamStore)
    assert isinstance(backend, CamBackend)


def test_reference_cam_is_a_store_but_not_a_backend():
    reference = ReferenceCam(64)
    assert isinstance(reference, CamStore)
    assert not isinstance(reference, CamBackend)


def test_open_session_products_conform():
    for kwargs in ({}, {"shards": 2}, {"replicas": 2},
                   {"shards": 2, "replicas": 2}):
        session = repro.open_session(_config(), "batch", **kwargs)
        assert isinstance(session, CamBackend), kwargs


def test_arbitrary_objects_do_not_conform():
    assert not isinstance(object(), CamStore)
    assert not isinstance({"capacity": 64}, CamStore)


def test_issubclass_is_rejected_for_data_protocols():
    with pytest.raises(TypeError):
        issubclass(BatchSession, CamStore)


# ----------------------------------------------------------------------
# behavioural smoke of the shared surface
# ----------------------------------------------------------------------
def test_shared_surface_behaves(backend):
    assert backend.occupancy == 0
    assert backend.capacity >= 64
    backend.update([0x11, 0x22, 0x33])
    assert backend.contains(0x22)
    assert not backend.contains(0x44)
    result = backend.search_one(0x33)
    assert isinstance(result, SearchResult) and result.hit
    backend.delete(0x11)
    assert not backend.contains(0x11)
    backend.idle(2)
    assert backend.cycle > 0
    assert backend.num_groups >= 1
    assert backend.search_latency >= 1
    assert backend.update_latency >= 1
    assert backend.words_per_beat >= 1
    assert isinstance(backend.engine_name, str) and backend.engine_name
    assert backend.resources() is not None

    snap = backend.snapshot()
    backend.restore(snap)
    assert backend.contains(0x22) and not backend.contains(0x11)

    backend.reset()
    assert backend.occupancy == 0
