"""Unit tests for the transaction-level CamSession API."""

import pytest

from repro.core import (
    CamSession,
    CamType,
    binary_entry,
    range_entry,
    ternary_entry_from_pattern,
    unit_for_entries,
)
from repro.errors import CapacityError, ConfigError


def make_session(entries=64, block_size=16, groups=2, width=32, bus=128,
                 cam_type=CamType.BINARY):
    return CamSession(unit_for_entries(
        entries, block_size=block_size, data_width=width, bus_width=bus,
        default_groups=groups, cam_type=cam_type,
    ))


def test_update_then_search_roundtrip():
    session = make_session()
    session.update([10, 20, 30])
    results = session.search([20, 30, 40])
    assert [(r.hit, r.address) for r in results] == [
        (True, 1), (True, 2), (False, None)
    ]


def test_raw_ints_rejected_for_ternary():
    session = make_session(cam_type=CamType.TERNARY)
    with pytest.raises(ConfigError, match="raw integers"):
        session.update([1, 2])


def test_ternary_session():
    session = make_session(cam_type=CamType.TERNARY)
    session.update([ternary_entry_from_pattern("1010_XXXX", 32)])
    assert session.contains(0b1010_0101)
    assert not session.contains(0b1011_0000)


def test_range_session():
    session = make_session(cam_type=CamType.RANGE)
    session.update([range_entry(64, 127, 32), range_entry(256, 511, 32)])
    assert session.search_one(100).address == 0
    assert session.search_one(300).address == 1
    assert not session.contains(200)


def test_multibeat_update_stats():
    session = make_session()  # 4 words/beat
    stats = session.update(list(range(10)))
    assert stats.words == 10
    assert stats.beats == 3
    assert stats.cycles >= stats.beats + session.unit.update_latency - 1
    assert session.occupancy == 10


def test_search_stats_pipelined():
    session = make_session(groups=2)
    session.update(list(range(8)))
    session.search(list(range(8)))
    stats = session.last_search_stats
    assert stats.keys == 8
    assert stats.beats == 4
    # 4 beats at II=1 plus the 7-cycle latency, with a little slack.
    assert stats.cycles <= 4 + 7 + 2


def test_search_results_in_key_order():
    session = make_session(groups=2)
    session.update(list(range(1, 6)))
    keys = [5, 1, 99, 3, 2, 4, 77]
    results = session.search(keys)
    assert [r.key for r in results] == keys


def test_capacity_error_propagates():
    session = make_session(entries=64, block_size=16, groups=2)
    session.update(list(range(32)))  # fills each 32-entry group
    with pytest.raises(CapacityError):
        session.update([99])


def test_reset_clears():
    session = make_session()
    session.update([1, 2, 3])
    session.reset()
    assert session.occupancy == 0
    assert not session.contains(1)


def test_set_groups_reconfigures():
    session = make_session(entries=64, block_size=16, groups=1)
    assert session.capacity == 64
    session.set_groups(4)
    assert session.unit.num_groups == 4
    assert session.capacity == 16
    session.update([7])
    results = session.search([7, 7, 7, 7])
    assert all(r.hit for r in results)


def test_empty_operations_rejected():
    session = make_session()
    with pytest.raises(ConfigError):
        session.update([])
    with pytest.raises(ConfigError):
        session.search([])


def test_cycle_counter_monotone():
    session = make_session()
    before = session.cycle
    session.update([1])
    mid = session.cycle
    session.idle(5)
    assert before < mid < session.cycle


def test_trace_capture():
    session = CamSession(
        unit_for_entries(64, block_size=16, data_width=32, bus_width=128,
                         default_groups=2),
        trace=True,
    )
    session.update([5])
    session.search([5])
    assert session.trace is not None
    assert len(session.trace) > 0


def test_update_word_type_validation():
    session = make_session()
    with pytest.raises(ConfigError, match="int or CamEntry"):
        session.update(["nope"])


def test_entry_objects_accepted_for_binary():
    session = make_session()
    session.update([binary_entry(9, 32)])
    assert session.contains(9)
