"""Unit tests for the CAM unit (figure 4, Table VIII behaviour)."""

import pytest

from repro.core import CamUnit, binary_entry, unit_for_entries
from repro.errors import CapacityError, ConfigError, RoutingError
from repro.sim import Simulator


def make_unit(entries=64, block_size=16, groups=2, data_width=32, bus=128,
              replicate=True):
    config = unit_for_entries(
        entries, block_size=block_size, data_width=data_width,
        bus_width=bus, default_groups=groups,
    )
    if not replicate:
        from dataclasses import replace
        config = replace(config, replicate_updates=False)
    unit = CamUnit(config)
    return unit, Simulator(unit)


def words(values, width=32):
    return [binary_entry(v, width) for v in values]


def drain_update(unit, sim):
    # One step consumes the staged beat and clears any stale done pulse,
    # then wait for this beat's own pulse.
    sim.step()
    sim.run_until(lambda: unit.update_done, unit.update_latency + 4)


def search_unit(unit, sim, keys):
    unit.issue_search(keys)
    sim.run_until(lambda: unit.search_output is not None,
                  unit.search_latency + 4)
    return unit.search_output


# ----------------------------------------------------------------------
# latency contracts (Table VIII)
# ----------------------------------------------------------------------
def test_update_latency_is_six():
    unit, sim = make_unit()
    unit.issue_update(words([1]))
    assert sim.run_until(lambda: unit.update_done, 10) == 6


def test_search_latency_small_unit_is_seven():
    unit, sim = make_unit()
    unit.issue_update(words([1]))
    drain_update(unit, sim)
    unit.issue_search([1])
    assert sim.run_until(lambda: unit.search_output is not None, 12) == 7


def test_search_latency_large_unit_is_eight():
    unit, sim = make_unit(entries=2048, block_size=128, groups=2)
    unit.issue_update(words([1]))
    drain_update(unit, sim)
    unit.issue_search([1])
    assert sim.run_until(lambda: unit.search_output is not None, 12) == 8


# ----------------------------------------------------------------------
# replicated multi-query behaviour
# ----------------------------------------------------------------------
def test_replicated_groups_hold_identical_content():
    unit, sim = make_unit(groups=2)
    unit.issue_update(words([10, 20, 30]))
    drain_update(unit, sim)
    for group in range(2):
        values = [e.value for e in unit.stored_entries(group)]
        assert values == [10, 20, 30]


def test_multi_query_independent_answers():
    unit, sim = make_unit(groups=2)
    unit.issue_update(words([5, 6, 7]))
    drain_update(unit, sim)
    results = search_unit(unit, sim, [6, 99])
    assert results[0].hit and results[0].address == 1
    assert not results[1].hit


def test_replicated_addresses_identical_across_groups():
    unit, sim = make_unit(groups=2)
    unit.issue_update(words([5, 6, 7]))
    drain_update(unit, sim)
    results = search_unit(unit, sim, [7, 7])
    assert results[0].address == results[1].address == 2


def test_too_many_queries_rejected():
    unit, _ = make_unit(groups=2)
    with pytest.raises(RoutingError, match="exceed"):
        unit.issue_search([1, 2, 3])


def test_round_robin_across_blocks():
    """Content beyond one block lands in the group's next block."""
    unit, sim = make_unit(entries=64, block_size=16, groups=2, bus=128)
    # Group capacity 32 = 2 blocks of 16; 4 words per beat.
    for base in range(0, 24, 4):
        unit.issue_update(words(list(range(base, base + 4))))
        sim.step()
    sim.step(8)
    results = search_unit(unit, sim, [20])  # lives in the second block
    assert results[0].hit
    assert results[0].address == 20


def test_group_capacity_enforced_at_issue():
    unit, sim = make_unit(entries=64, block_size=16, groups=2, bus=128)
    for base in range(0, 32, 4):
        unit.issue_update(words(list(range(base, base + 4))))
        sim.step()
    with pytest.raises(CapacityError, match="cannot take"):
        unit.issue_update(words([99]))


def test_one_beat_per_cycle():
    unit, _ = make_unit()
    unit.issue_update(words([1]))
    with pytest.raises(ConfigError, match="one operation beat"):
        unit.issue_search([1])


def test_update_beat_width_check():
    unit, _ = make_unit(bus=128)  # 4 words/beat
    with pytest.raises(CapacityError, match="bus fits"):
        unit.issue_update(words([1, 2, 3, 4, 5]))
    with pytest.raises(ConfigError, match="empty"):
        unit.issue_update([])


# ----------------------------------------------------------------------
# reset and regroup
# ----------------------------------------------------------------------
def test_reset_flushes_content():
    unit, sim = make_unit()
    unit.issue_update(words([1, 2]))
    drain_update(unit, sim)
    unit.issue_reset()
    sim.step(unit.update_latency + 2)
    assert unit.stored_words(0) == 0
    results = search_unit(unit, sim, [1])
    assert not results[0].hit


def test_regroup_changes_group_count_and_flushes():
    unit, sim = make_unit(entries=64, block_size=16, groups=2)
    unit.issue_update(words([1]))
    drain_update(unit, sim)
    unit.issue_regroup(4)
    sim.step(unit.update_latency + 2)
    assert unit.num_groups == 4
    assert unit.group_capacity == 16
    assert unit.stored_words(3) == 0
    # Four concurrent queries are now legal.
    unit.issue_update(words([8]))
    drain_update(unit, sim)
    results = search_unit(unit, sim, [8, 8, 8, 8])
    assert all(r.hit for r in results)


def test_regroup_validation():
    unit, _ = make_unit(entries=64, block_size=16)
    with pytest.raises(RoutingError, match="divide"):
        unit.issue_regroup(3)


def test_regroup_with_custom_mapping():
    unit, sim = make_unit(entries=64, block_size=16, groups=1)
    unit.issue_regroup(2, mapping=[0, 1, 0, 1])
    sim.step(unit.update_latency + 2)
    assert unit.table.blocks_in_group(0) == [0, 2]


# ----------------------------------------------------------------------
# independent-CAM mode
# ----------------------------------------------------------------------
def test_independent_mode_isolates_groups():
    unit, sim = make_unit(groups=2, replicate=False)
    unit.issue_update(words([111]), group=0)
    drain_update(unit, sim)
    unit.issue_update(words([222]), group=1)
    drain_update(unit, sim)
    results = search_unit(unit, sim, [111, 111])
    assert results[0].hit  # group 0 has it
    assert not results[1].hit  # group 1 does not


def test_independent_mode_requires_group():
    unit, _ = make_unit(groups=2, replicate=False)
    with pytest.raises(RoutingError, match="requires a target group"):
        unit.issue_update(words([1]))
    with pytest.raises(RoutingError, match="out of range"):
        unit.issue_update(words([1]), group=5)


def test_replicated_mode_rejects_group_argument():
    unit, _ = make_unit(groups=2)
    with pytest.raises(RoutingError, match="replicated"):
        unit.issue_update(words([1]), group=0)


def test_explicit_search_groups_must_be_distinct():
    unit, _ = make_unit(groups=2)
    with pytest.raises(RoutingError, match="distinct"):
        unit.issue_search([1, 2], groups=[0, 0])


# ----------------------------------------------------------------------
# resources
# ----------------------------------------------------------------------
def test_unit_resources_report():
    unit, _ = make_unit(entries=512, block_size=128, groups=2, bus=512)
    vec = unit.resources()
    assert vec.dsp == 512
    assert vec.lut > 0
