"""Unit tests for the golden reference CAM."""

import pytest

from repro.core import (
    Encoding,
    ReferenceCam,
    binary_entry,
    ternary_entry,
)
from repro.errors import CapacityError


def test_capacity_validation():
    with pytest.raises(CapacityError):
        ReferenceCam(0)


def test_priority_is_insertion_order():
    cam = ReferenceCam(8)
    cam.update([binary_entry(5, 32), binary_entry(5, 32)])
    assert cam.first_match(5) == 0
    assert cam.search(5).match_count == 2


def test_miss():
    cam = ReferenceCam(8)
    cam.update([binary_entry(1, 32)])
    result = cam.search(2)
    assert not result.hit and result.address is None


def test_overflow():
    cam = ReferenceCam(2)
    cam.update([binary_entry(1, 32), binary_entry(2, 32)])
    assert cam.full
    with pytest.raises(CapacityError, match="overflow"):
        cam.update([binary_entry(3, 32)])


def test_reset():
    cam = ReferenceCam(4)
    cam.update([binary_entry(1, 32)])
    cam.reset()
    assert cam.occupancy == 0
    assert not cam.search(1).hit


def test_ternary_semantics():
    cam = ReferenceCam(4)
    cam.update([ternary_entry(0b1000, 0b0111, 8)])
    for key in range(0b1000, 0b10000):
        assert cam.search(key).hit
    assert not cam.search(0b0111).hit


def test_search_many_and_entries():
    cam = ReferenceCam(4, encoding=Encoding.COUNT)
    entries = [binary_entry(v, 16) for v in (1, 2)]
    cam.update(entries)
    assert cam.entries() == entries
    results = cam.search_many([1, 2, 3])
    assert [r.hit for r in results] == [True, True, False]
    assert results[0].encoding is Encoding.COUNT
