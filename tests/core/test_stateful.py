"""Model-based stateful testing: the CAM vs the golden reference.

A hypothesis ``RuleBasedStateMachine`` drives an arbitrary interleaving
of updates, searches, deletes and resets against both the
cycle-accurate :class:`CamSession` and the list-backed
:class:`ReferenceCam`, asserting bit-identical results after every
step. This covers interaction sequences the example-based tests cannot
enumerate: delete-then-refill, reset mid-stream, duplicate churn, and
occupancy bookkeeping across all of it.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core import (
    CamSession,
    ReferenceCam,
    binary_entry,
    collect_stats,
    unit_for_entries,
)

WIDTH = 12
CAPACITY = 32  # per group: 2 blocks of 16

values = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


class CamMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.session = CamSession(unit_for_entries(
            64, block_size=16, data_width=WIDTH, bus_width=64,
            default_groups=2,
        ))
        self.reference = ReferenceCam(CAPACITY)

    # ------------------------------------------------------------------
    @property
    def free(self) -> int:
        return CAPACITY - self.reference.occupancy

    @precondition(lambda self: self.free > 0)
    @rule(data=st.data())
    def update(self, data):
        batch = data.draw(
            st.lists(values, min_size=1, max_size=min(4, self.free)),
            label="batch",
        )
        entries = [binary_entry(v, WIDTH) for v in batch]
        self.session.update(entries)
        self.reference.update(entries)

    @rule(key=values)
    def search(self, key):
        hw = self.session.search_one(key)
        gold = self.reference.search(key)
        assert hw.hit == gold.hit
        assert hw.address == gold.address
        assert hw.match_vector == gold.match_vector
        assert hw.match_count == gold.match_count

    @rule(key=values)
    def delete(self, key):
        hw = self.session.delete(key)
        gold = self.reference.delete(key)
        assert hw.match_vector == gold.match_vector

    @rule()
    def reset(self):
        self.session.reset()
        self.reference.reset()

    @rule(keys=st.lists(values, min_size=2, max_size=2))
    def multi_query(self, keys):
        first, second = self.session.search(keys)
        assert first.match_vector == self.reference.search(keys[0]).match_vector
        assert second.match_vector == self.reference.search(keys[1]).match_vector

    # ------------------------------------------------------------------
    @invariant()
    def occupancy_consistent(self):
        assert self.session.occupancy == self.reference.occupancy

    @invariant()
    def replicas_balanced(self):
        stats = collect_stats(self.session.unit)
        assert stats.balanced
        assert stats.consumed_cells == 2 * self.reference.occupancy

    @invariant()
    def live_cells_match_reference(self):
        stats = collect_stats(self.session.unit)
        live_reference = sum(
            1 for entry in self.reference.entries() if entry is not None
        )
        assert stats.live_cells == 2 * live_reference


CamMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=20, deadline=None
)
TestCamMachine = CamMachine.TestCase
