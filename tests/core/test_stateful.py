"""Model-based stateful testing: the CAM vs the golden reference.

A hypothesis ``RuleBasedStateMachine`` drives an arbitrary interleaving
of updates, searches, deletes and resets against both the
cycle-accurate :class:`CamSession` and the list-backed
:class:`ReferenceCam`, asserting bit-identical results after every
step. This covers interaction sequences the example-based tests cannot
enumerate: delete-then-refill, reset mid-stream, duplicate churn, and
occupancy bookkeeping across all of it.

:class:`TriEngineMachine` extends the fuzz to the vectorized batch
engine (:mod:`repro.core.batch`): the cycle simulator, the batch
engine and the reference run the same interleaving in lockstep --
including delete-by-content holes (dead cells that are never
reclaimed) and runtime group reconfiguration, the two state
transitions with the trickiest bookkeeping.
"""

import os

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core import (
    BatchSession,
    CamSession,
    ReferenceCam,
    binary_entry,
    collect_stats,
    unit_for_entries,
)
from repro.dsp.primitives import mask_for

WIDTH = 12
CAPACITY = 32  # per group: 2 blocks of 16

values = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


class CamMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.session = CamSession(unit_for_entries(
            64, block_size=16, data_width=WIDTH, bus_width=64,
            default_groups=2,
        ))
        self.reference = ReferenceCam(CAPACITY)

    # ------------------------------------------------------------------
    @property
    def free(self) -> int:
        return CAPACITY - self.reference.occupancy

    @precondition(lambda self: self.free > 0)
    @rule(data=st.data())
    def update(self, data):
        batch = data.draw(
            st.lists(values, min_size=1, max_size=min(4, self.free)),
            label="batch",
        )
        entries = [binary_entry(v, WIDTH) for v in batch]
        self.session.update(entries)
        self.reference.update(entries)

    @rule(key=values)
    def search(self, key):
        hw = self.session.search_one(key)
        gold = self.reference.search(key)
        assert hw.hit == gold.hit
        assert hw.address == gold.address
        assert hw.match_vector == gold.match_vector
        assert hw.match_count == gold.match_count

    @rule(key=values)
    def delete(self, key):
        hw = self.session.delete(key)
        gold = self.reference.delete(key)
        assert hw.match_vector == gold.match_vector

    @rule()
    def reset(self):
        self.session.reset()
        self.reference.reset()

    @rule(keys=st.lists(values, min_size=2, max_size=2))
    def multi_query(self, keys):
        first, second = self.session.search(keys)
        assert first.match_vector == self.reference.search(keys[0]).match_vector
        assert second.match_vector == self.reference.search(keys[1]).match_vector

    # ------------------------------------------------------------------
    @invariant()
    def occupancy_consistent(self):
        assert self.session.occupancy == self.reference.occupancy

    @invariant()
    def replicas_balanced(self):
        stats = collect_stats(self.session.unit)
        assert stats.balanced
        assert stats.consumed_cells == 2 * self.reference.occupancy

    @invariant()
    def live_cells_match_reference(self):
        stats = collect_stats(self.session.unit)
        live_reference = sum(
            1 for entry in self.reference.entries() if entry is not None
        )
        assert stats.live_cells == 2 * live_reference


CamMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=20, deadline=None
)
TestCamMachine = CamMachine.TestCase


class TriEngineMachine(RuleBasedStateMachine):
    """Cycle engine, batch engine and golden reference in lockstep.

    Beyond :class:`CamMachine`, this machine exercises delete-by-content
    *holes* (searches and refills over dead cells) and runtime group
    reconfiguration (``set_groups``), asserting result, occupancy and
    cycle-counter agreement between the two engines after every rule.
    """

    def __init__(self):
        super().__init__()
        config = unit_for_entries(
            64, block_size=16, data_width=WIDTH, bus_width=64,
            default_groups=2,
        )
        self.cycle = CamSession(config)
        self.batch = BatchSession(config)
        self.reference = ReferenceCam(self.cycle.capacity)
        self.num_blocks = config.num_blocks

    @property
    def free(self) -> int:
        return self.reference.capacity - self.reference.occupancy

    # ------------------------------------------------------------------
    @precondition(lambda self: self.free > 0)
    @rule(data=st.data())
    def update(self, data):
        batch = data.draw(
            st.lists(values, min_size=1, max_size=min(4, self.free)),
            label="batch",
        )
        entries = [binary_entry(v, WIDTH) for v in batch]
        assert self.cycle.update(entries) == self.batch.update(entries)
        self.reference.update(entries)

    @rule(key=values)
    def search(self, key):
        hw = self.cycle.search_one(key)
        fast = self.batch.search_one(key)
        gold = self.reference.search(key)
        assert (hw.hit, hw.address, hw.match_vector, hw.match_count) \
            == (fast.hit, fast.address, fast.match_vector, fast.match_count)
        assert hw.match_vector == gold.match_vector

    @precondition(lambda self: self.reference.occupancy > 0)
    @rule(key=values)
    def delete_makes_holes(self, key):
        hw = self.cycle.delete(key)
        fast = self.batch.delete(key)
        gold = self.reference.delete(key)
        assert hw.match_vector == fast.match_vector == gold.match_vector
        # The hole is permanent: the key no longer matches anywhere.
        assert not self.batch.search_one(key).hit
        assert not self.cycle.search_one(key).hit

    @rule(divisor_index=st.integers(0, 2))
    def regroup(self, divisor_index):
        divisors = [d for d in (1, 2, 4) if self.num_blocks % d == 0]
        target = divisors[divisor_index % len(divisors)]
        self.cycle.set_groups(target)
        self.batch.set_groups(target)
        # Regrouping flushes content; the reference starts over at the
        # new per-group capacity.
        self.reference = ReferenceCam(self.cycle.capacity)

    @rule()
    def reset(self):
        self.cycle.reset()
        self.batch.reset()
        self.reference.reset()

    @rule(keys=st.lists(values, min_size=2, max_size=2))
    def multi_query(self, keys):
        for hw, fast in zip(self.cycle.search(keys), self.batch.search(keys)):
            assert hw.match_vector == fast.match_vector
            assert hw.address == fast.address

    # ------------------------------------------------------------------
    @invariant()
    def engines_agree_on_state(self):
        assert self.cycle.occupancy == self.batch.occupancy \
            == self.reference.occupancy
        assert self.cycle.num_groups == self.batch.num_groups
        assert self.cycle.capacity == self.batch.capacity

    @invariant()
    def cycle_counters_lockstep(self):
        assert self.cycle.cycle == self.batch.cycle

    @invariant()
    def holes_stay_dead(self):
        # The batch store's content (holes as None, in address order)
        # must mirror the reference exactly, and the cycle engine must
        # hold one live replica per group of every live entry.
        data_mask = mask_for(WIDTH)
        ref_entries = self.reference.entries()
        fast_entries = self.batch.stored_entries(0)
        assert len(fast_entries) == len(ref_entries)
        for ref, fast in zip(ref_entries, fast_entries):
            if ref is None:
                assert fast is None
                continue
            assert fast is not None
            assert fast.value == ref.value
            assert (~fast.mask & data_mask) == (~ref.mask & data_mask)
        live_reference = sum(1 for e in ref_entries if e is not None)
        stats = collect_stats(self.cycle.unit)
        assert stats.live_cells == self.cycle.num_groups * live_reference


_DEEP = os.environ.get("HYPOTHESIS_PROFILE", "") == "deep"

TriEngineMachine.TestCase.settings = settings(
    max_examples=40 if _DEEP else 10,
    stateful_step_count=30 if _DEEP else 15,
    deadline=None,
)
TestTriEngineMachine = TriEngineMachine.TestCase
