"""Unit tests for the occupancy introspection layer."""

import pytest

from repro.core import CamSession, collect_stats, unit_for_entries


def make_session(groups=2):
    return CamSession(unit_for_entries(
        64, block_size=16, data_width=32, bus_width=128,
        default_groups=groups,
    ))


def test_empty_unit_stats():
    session = make_session()
    stats = collect_stats(session.unit)
    assert stats.total_cells == 64
    assert stats.consumed_cells == 0
    assert stats.live_cells == 0
    assert stats.utilisation == 0.0
    assert stats.balanced
    assert len(stats.blocks) == 4


def test_replicated_fill_is_balanced():
    session = make_session(groups=2)
    session.update(list(range(10)))
    stats = collect_stats(session.unit)
    assert stats.consumed_cells == 20  # 10 words x 2 replicas
    assert stats.group_fill() == {0: 10, 1: 10}
    assert stats.balanced


def test_round_robin_shows_in_per_block_fill():
    session = make_session(groups=2)
    session.update(list(range(20)))  # spills into each group's 2nd block
    stats = collect_stats(session.unit)
    fills = {block.block_id: block.fill for block in stats.blocks}
    assert fills[0] == 16 and fills[1] == 4  # group 0
    assert fills[2] == 16 and fills[3] == 4  # group 1


def test_holes_after_delete():
    session = make_session()
    session.update([1, 2, 3, 2])
    session.delete(2)
    stats = collect_stats(session.unit)
    assert stats.holes == 4  # two matches x two replicas
    assert stats.live_cells == stats.consumed_cells - 4
    block0 = stats.blocks[0]
    assert block0.holes == 2


def test_block_utilisation():
    session = make_session()
    session.update(list(range(8)))
    stats = collect_stats(session.unit)
    assert stats.blocks[0].utilisation == pytest.approx(0.5)


def test_render_report():
    session = make_session()
    session.update(list(range(5)))
    session.delete(3)
    text = collect_stats(session.unit).render()
    assert "cells consumed" in text
    assert "balanced" in text
    assert "block   0" in text
    assert "holes" in text


def test_independent_mode_can_be_unbalanced():
    from dataclasses import replace

    config = replace(
        unit_for_entries(64, block_size=16, data_width=32, bus_width=128,
                         default_groups=2),
        replicate_updates=False,
    )
    session = CamSession(config)
    session.update([1, 2, 3], group=0)
    stats = collect_stats(session.unit)
    assert not stats.balanced
    assert stats.group_fill() == {0: 3, 1: 0}
