"""Unit tests for the CAM block (figure 3, Table VI behaviour)."""

import pytest

from repro.core import (
    BlockConfig,
    CamBlock,
    CamType,
    CellConfig,
    Encoding,
    binary_entry,
    ternary_entry,
)
from repro.errors import CapacityError, ConfigError
from repro.sim import Simulator


def make_block(block_size=16, data_width=32, bus_width=128, **kwargs):
    config = BlockConfig(
        cell=CellConfig(cam_type=kwargs.pop("cam_type", CamType.BINARY),
                        data_width=data_width),
        block_size=block_size,
        bus_width=bus_width,
        encoding=kwargs.pop("encoding", Encoding.PRIORITY),
        output_buffer=kwargs.pop("output_buffer", None),
    )
    block = CamBlock(config, **kwargs)
    return block, Simulator(block)


def entries(values, width=32):
    return [binary_entry(v, width) for v in values]


def search_block(block, sim, key, budget=10):
    block.issue_search(key)
    sim.run_until(lambda: block.result_valid and block.result.key == key, budget)
    return block.result


# ----------------------------------------------------------------------
# update path
# ----------------------------------------------------------------------
def test_single_cycle_parallel_update():
    block, sim = make_block()
    block.issue_update(entries([1, 2, 3, 4]))
    sim.step()
    assert block.occupancy == 4
    assert [e.value for e in block.stored_entries()] == [1, 2, 3, 4]


def test_update_done_pulses_once():
    block, sim = make_block()
    block.issue_update(entries([9]))
    sim.step()
    assert block.update_done
    sim.step()
    assert not block.update_done


def test_sequential_fill_order():
    block, sim = make_block()
    block.issue_update(entries([1, 2]))
    sim.step()
    block.issue_update(entries([3]))
    sim.step()
    assert [e.value for e in block.stored_entries()] == [1, 2, 3]


def test_update_beat_wider_than_bus_rejected():
    block, sim = make_block(bus_width=64)  # 2 words/beat
    block.issue_update(entries([1, 2, 3]))
    with pytest.raises(CapacityError, match="bus fits"):
        sim.step()


def test_update_overflow_raises():
    block, sim = make_block(block_size=4)
    block.issue_update(entries([1, 2, 3, 4]))
    sim.step()
    block.issue_update(entries([5]))
    with pytest.raises(CapacityError, match="overflows"):
        sim.step()


def test_empty_update_rejected():
    block, sim = make_block()
    block.issue_update([])
    with pytest.raises(ConfigError, match="empty update"):
        sim.step()


def test_update_rejects_non_entries():
    block, sim = make_block()
    block.issue_update([42])
    with pytest.raises(ConfigError, match="CamEntry"):
        sim.step()


# ----------------------------------------------------------------------
# search path
# ----------------------------------------------------------------------
def test_search_latency_unbuffered_is_three():
    block, sim = make_block(block_size=16)
    block.issue_update(entries([7]))
    sim.step()
    block.issue_search(7)
    latency = sim.run_until(lambda: block.result_valid, 10)
    assert latency == 3
    assert block.result.hit and block.result.address == 0


def test_search_latency_buffered_is_four():
    block, sim = make_block(block_size=16, output_buffer=True)
    block.issue_update(entries([7]))
    sim.step()
    block.issue_search(7)
    assert sim.run_until(lambda: block.result_valid, 10) == 4


def test_large_block_buffers_automatically():
    block, _ = make_block(block_size=256)
    assert block.buffered
    assert block.search_latency == 4


def test_search_miss():
    block, sim = make_block()
    block.issue_update(entries([1, 2, 3]))
    sim.step()
    result = search_block(block, sim, 99)
    assert not result.hit
    assert result.address is None


def test_search_priority_lowest_address():
    block, sim = make_block(cam_type=CamType.TERNARY)
    dup = ternary_entry(5, 0, 32)
    block.issue_update([dup, dup, dup])
    sim.step()
    result = search_block(block, sim, 5)
    assert result.address == 0
    assert result.match_count == 3


def test_search_pipelined_ii_one():
    block, sim = make_block()
    block.issue_update(entries(list(range(1, 5))))
    sim.step()
    block.issue_update(entries(list(range(5, 9))))
    sim.step()
    keys = [3, 99, 5, 1, 42]
    got = []
    for cycle in range(12):
        if cycle < len(keys):
            block.issue_search(keys[cycle])
        sim.step()
        if block.result_valid:
            got.append((block.result.key, block.result.hit))
    assert got == [(3, True), (99, False), (5, True), (1, True), (42, False)]


def test_update_and_search_same_cycle():
    """Figure 3: separate update/search paths into the cells."""
    block, sim = make_block()
    block.issue_update(entries([11]))
    sim.step()
    block.issue_update(entries([22]))
    block.issue_search(11)
    sim.step()
    assert block.occupancy == 2
    sim.run_until(lambda: block.result_valid, 5)
    assert block.result.hit


# ----------------------------------------------------------------------
# reset
# ----------------------------------------------------------------------
def test_reset_clears_content():
    block, sim = make_block()
    block.issue_update(entries([1, 2]))
    sim.step()
    block.issue_reset()
    sim.step()
    assert block.occupancy == 0
    result = search_block(block, sim, 1)
    assert not result.hit


def test_reset_collides_with_update():
    block, sim = make_block()
    block.issue_reset()
    block.issue_update(entries([1]))
    with pytest.raises(ConfigError, match="collide"):
        sim.step()


def test_refill_after_reset():
    block, sim = make_block()
    block.issue_update(entries([1]))
    sim.step()
    block.issue_reset()
    sim.step()
    block.issue_update(entries([5]))
    sim.step()
    assert search_block(block, sim, 5).address == 0


# ----------------------------------------------------------------------
# bookkeeping
# ----------------------------------------------------------------------
def test_full_and_free_cells():
    block, sim = make_block(block_size=4)
    assert block.free_cells == 4 and not block.full
    block.issue_update(entries([1, 2, 3, 4]))
    sim.step()
    assert block.full and block.free_cells == 0


def test_resources_report():
    block, _ = make_block(block_size=16, bus_width=512)
    vec = block.resources()
    assert vec.dsp == 16
    assert vec.lut > 0
    assert vec.bram == 0


def test_encoding_schemes_through_block():
    block, sim = make_block(encoding=Encoding.COUNT, cam_type=CamType.TERNARY)
    dup = ternary_entry(9, 0, 32)
    block.issue_update([dup, dup])
    sim.step()
    result = search_block(block, sim, 9)
    assert result.encoding is Encoding.COUNT
    assert block.encoder.bus_value(result) == 2
