"""CamService: micro-batching, backpressure, timeouts, degradation.

No pytest-asyncio in the toolchain: every scenario is a coroutine run
to completion with ``asyncio.run`` inside a plain sync test.
"""

import asyncio

import pytest

from repro.core import unit_for_entries
from repro.core.batch import open_session
from repro.errors import ConfigError, ServiceError, ServiceOverloadError
from repro.service import (
    CamService,
    FaultyBackend,
    ShardedCam,
    WorkloadSpec,
    demo_cam,
    drive_service,
)

WIDTH = 16


def make_cam(shards=4, policy="hash", entries=32):
    config = unit_for_entries(entries, block_size=16, data_width=WIDTH,
                              bus_width=128)
    return ShardedCam(config, shards=shards, policy=policy, engine="batch")


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# configuration and lifecycle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    {"max_batch": 0},
    {"max_delay_s": -1},
    {"queue_depth": 0},
    {"request_timeout_s": 0},
    {"overflow": "panic"},
])
def test_rejects_bad_parameters(kwargs):
    with pytest.raises(ConfigError):
        CamService(make_cam(shards=1), **kwargs)


def test_requests_require_running_service():
    service = CamService(make_cam(shards=1))

    async def scenario():
        with pytest.raises(ServiceError):
            await service.lookup(1)

    run(scenario())


def test_double_start_rejected():
    async def scenario():
        async with CamService(make_cam(shards=1)) as service:
            with pytest.raises(ServiceError):
                await service.start()

    run(scenario())


def test_stop_drains_in_flight_requests():
    async def scenario():
        service = CamService(make_cam(shards=2), max_delay_s=0.05,
                             max_batch=64)
        await service.start()
        inserted = asyncio.ensure_future(service.insert([1, 2, 3, 4]))
        await asyncio.sleep(0)  # admitted, probably not yet flushed
        await service.stop()
        response = await inserted
        assert response.ok and response.stats.words == 4

    run(scenario())


# ----------------------------------------------------------------------
# request semantics
# ----------------------------------------------------------------------
def test_basic_lookup_insert_delete_cycle():
    async def scenario():
        async with CamService(make_cam()) as service:
            miss = await service.lookup(42)
            assert miss.ok and not miss.result.hit
            ins = await service.insert([42, 7, 42])
            assert ins.ok and ins.stats.words == 3
            assert ins.shards  # routed somewhere real
            hit = await service.lookup(42)
            assert hit.ok and hit.result.hit and hit.result.address == 0
            dele = await service.delete(42)
            assert dele.ok and dele.result.hit
            assert not (await service.lookup(42)).result.hit
            assert (await service.lookup(7)).result.hit

    run(scenario())


def test_concurrent_lookups_are_batched():
    async def scenario():
        cam = make_cam(shards=2)
        async with CamService(cam, max_batch=64, max_delay_s=0.02) as svc:
            await svc.insert(list(range(32)))
            responses = await asyncio.gather(
                *[svc.lookup(k) for k in range(32)]
            )
            assert all(r.ok and r.result.hit for r in responses)
        # far fewer flushes than requests proves coalescing happened
        assert svc.stats.dispatches < svc.stats.dispatched_requests
        assert svc.stats.mean_batch_occupancy > 1.0

    run(scenario())


def test_insert_is_split_and_merged_across_shards():
    async def scenario():
        cam = make_cam(shards=4)
        async with CamService(cam) as service:
            response = await service.insert(list(range(16)))
            assert response.ok
            assert response.stats.words == 16
            assert len(response.shards) > 1  # hash spread the batch

    run(scenario())


def test_broadcast_policy_merges_cross_shard_tie():
    async def scenario():
        cam = make_cam(shards=4, policy="round_robin")
        async with CamService(cam) as service:
            await service.insert([9, 1, 9, 2, 9])  # 9 on shards 0, 2, 0
            response = await service.lookup(9)
            assert response.ok
            assert response.result.address == 0  # globally first copy
            assert bin(response.result.match_vector).count("1") == 3
            assert len(response.shards) == 4  # every shard was asked

    run(scenario())


# ----------------------------------------------------------------------
# backpressure
# ----------------------------------------------------------------------
def test_reject_mode_raises_overload():
    async def scenario():
        service = CamService(make_cam(shards=1), queue_depth=2,
                             overflow="reject", max_delay_s=0.0)
        async with service:
            # 40 clients admit in one scheduling burst before the router
            # task gets a turn: only queue_depth fit, the rest must fail
            # fast with ServiceOverloadError.
            results = await asyncio.gather(
                *[service.lookup(key) for key in range(40)],
                return_exceptions=True,
            )
        overloaded = [r for r in results
                      if isinstance(r, ServiceOverloadError)]
        served = [r for r in results if not isinstance(r, Exception)]
        assert overloaded, "queue never overflowed"
        assert service.stats.rejected == len(overloaded)
        assert served and all(r.ok for r in served)

    run(scenario())


def test_block_mode_applies_backpressure_not_errors():
    async def scenario():
        service = CamService(make_cam(shards=1), queue_depth=2,
                             overflow="block", max_delay_s=0.0)
        async with service:
            responses = await asyncio.gather(
                *[service.lookup(k) for k in range(40)]
            )
            assert all(r.ok for r in responses)
            assert service.stats.rejected == 0
            assert service.stats.max_queue_depth <= 2

    run(scenario())


# ----------------------------------------------------------------------
# timeouts
# ----------------------------------------------------------------------
class SlowBackend:
    """Session proxy that blocks the loop long enough to expire peers."""

    def __init__(self, session, stall_s):
        self._session = session
        self._stall_s = stall_s

    def search(self, keys, groups=None):
        import time as _time

        _time.sleep(self._stall_s)
        return self._session.search(keys, groups=groups)

    def __getattr__(self, name):
        return getattr(self._session, name)


def test_request_timeout_resolves_as_miss():
    async def scenario():
        config = unit_for_entries(32, block_size=16, data_width=WIDTH,
                                  bus_width=128)

        def factory(index, cfg):
            session = open_session(cfg, engine="batch",
                                   name=f"slow.shard{index}")
            return SlowBackend(session, stall_s=0.08)

        cam = ShardedCam(config, shards=1, session_factory=factory)
        service = CamService(cam, request_timeout_s=0.05, max_delay_s=0.0,
                             max_batch=1)
        async with service:
            first = asyncio.ensure_future(service.lookup(1))
            second = asyncio.ensure_future(service.lookup(2))
            responses = await asyncio.gather(first, second)
        # the first stalls past the second's deadline; the second must
        # resolve as a timeout miss, not hang or error
        statuses = sorted(r.status for r in responses)
        assert "timeout" in statuses
        timed_out = next(r for r in responses if r.status == "timeout")
        assert timed_out.result is not None and not timed_out.result.hit
        assert service.stats.timeouts >= 1

    run(scenario())


# ----------------------------------------------------------------------
# failure isolation
# ----------------------------------------------------------------------
def faulty_cam(bad_shard=0, fail_after=0, shards=2, policy="hash"):
    config = unit_for_entries(32, block_size=16, data_width=WIDTH,
                              bus_width=128)

    def factory(index, cfg):
        session = open_session(cfg, engine="batch", name=f"f.shard{index}")
        if index == bad_shard:
            return FaultyBackend(session, fail_after)
        return session

    return ShardedCam(config, shards=shards, policy=policy,
                      session_factory=factory)


def test_poisoned_shard_degrades_to_miss_with_error():
    async def scenario():
        cam = faulty_cam(bad_shard=0, shards=2)
        async with CamService(cam) as service:
            saw_failure = saw_ok = False
            for key in range(32):
                response = await service.lookup(key)
                if response.status == "shard_failed":
                    saw_failure = True
                    assert response.result is not None
                    assert not response.result.hit
                    assert response.error
                else:
                    assert response.ok
                    saw_ok = True
            assert saw_failure, "no key routed to the poisoned shard"
            assert saw_ok, "healthy shard stopped serving"
            assert cam.poisoned_shards == (0,)
        assert service.stats.shard_failures >= 1

    run(scenario())


def test_broadcast_lookup_survives_one_poisoned_shard():
    async def scenario():
        cam = faulty_cam(bad_shard=1, shards=3, policy="round_robin")
        async with CamService(cam) as service:
            # striping sends index 1 to the bad shard; 10 and 12 survive
            response = await service.insert([10, 11, 12])
            assert response.status == "shard_failed"
            found = await service.lookup(10)
            # degraded but answered from the healthy shards
            assert found.result.hit
            assert found.status == "shard_failed"

    run(scenario())


# ----------------------------------------------------------------------
# workload driver (the serve-demo/CI entry point)
# ----------------------------------------------------------------------
def test_workload_driver_reports_clean_run():
    async def scenario():
        cam = demo_cam(entries_per_shard=128, shards=4, block_size=32)
        async with CamService(cam, max_batch=32,
                              request_timeout_s=5.0) as service:
            report = await drive_service(
                service, WorkloadSpec(requests=200, clients=4, seed=7)
            )
        assert report.requests == 200
        assert report.ok == 200
        assert report.timeouts == report.shard_failures == 0
        assert report.lookups + report.inserts + report.deletes == 200
        assert report.simulated_cycles > 0
        assert len(report.latencies_s) == 200
        text = report.render()
        assert "requests" in text and "shards" in text

    run(scenario())


def test_workload_driver_with_poisoned_shard():
    async def scenario():
        cam = demo_cam(entries_per_shard=128, shards=4, block_size=32,
                       poison_shard=2, poison_after=3)
        async with CamService(cam, request_timeout_s=5.0) as service:
            report = await drive_service(
                service, WorkloadSpec(requests=200, clients=2, seed=11)
            )
        assert report.poisoned_shards == [2]
        assert report.shard_failures > 0
        assert report.ok > 0  # healthy shards kept serving

    run(scenario())
