"""Unit tests for the shard routing policies."""

import pytest

from repro.errors import ConfigError
from repro.service import (
    POLICIES,
    HashShardPolicy,
    RangeShardPolicy,
    RoundRobinShardPolicy,
    policy_for,
)


def test_registry_covers_builtin_policies():
    assert set(POLICIES) == {"hash", "range", "round_robin"}


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_policy_for_resolves_names(name):
    policy = policy_for(name, 4, 16)
    assert policy.name == name
    assert policy.num_shards == 4


def test_policy_for_accepts_instances():
    policy = HashShardPolicy(4, 16, seed=7)
    assert policy_for(policy, 4, 16) is policy


def test_policy_for_rejects_shard_count_mismatch():
    with pytest.raises(ConfigError):
        policy_for(HashShardPolicy(2, 16), 4, 16)


def test_policy_for_rejects_unknown_name():
    with pytest.raises(ConfigError):
        policy_for("modulo", 4, 16)


def test_policy_validates_parameters():
    with pytest.raises(ConfigError):
        HashShardPolicy(0, 16)
    with pytest.raises(ConfigError):
        HashShardPolicy(4, 0)


def test_hash_routing_is_deterministic_and_in_range():
    policy = HashShardPolicy(5, 20)
    for key in list(range(64)) + [1 << 19, (1 << 20) - 1]:
        shard = policy.shard_for_key(key)
        assert 0 <= shard < 5
        assert shard == policy.shard_for_key(key)
        # inserts and lookups must agree for pinned policies
        assert shard == policy.shard_for_insert(key, index=123)


def test_hash_routing_masks_key_width():
    policy = HashShardPolicy(4, 8)
    assert policy.shard_for_key(0x101) == policy.shard_for_key(0x01)


def test_hash_spreads_sequential_keys():
    policy = HashShardPolicy(4, 32)
    shards = {policy.shard_for_key(key) for key in range(64)}
    assert shards == {0, 1, 2, 3}


def test_hash_seed_changes_routing():
    base = HashShardPolicy(16, 32, seed=0)
    other = HashShardPolicy(16, 32, seed=1)
    assert any(
        base.shard_for_key(k) != other.shard_for_key(k) for k in range(64)
    )


def test_range_policy_is_monotone_and_covers_all_shards():
    policy = RangeShardPolicy(4, 8)
    shards = [policy.shard_for_key(key) for key in range(256)]
    assert shards == sorted(shards)
    assert set(shards) == {0, 1, 2, 3}
    # equal-width slices: 256 keys over 4 shards = 64 each
    assert shards.count(0) == shards.count(3) == 64


def test_round_robin_stripes_by_insertion_order():
    policy = RoundRobinShardPolicy(3, 16)
    assert [policy.shard_for_insert(999, i) for i in range(6)] \
        == [0, 1, 2, 0, 1, 2]
    assert policy.broadcast_lookups
    assert policy.shard_for_key(999) is None


def test_pinned_policies_do_not_broadcast():
    assert not HashShardPolicy(4, 16).broadcast_lookups
    assert not RangeShardPolicy(4, 16).broadcast_lookups
    assert HashShardPolicy(4, 16).shard_for_key(3) is not None
