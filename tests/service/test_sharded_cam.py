"""ShardedCam façade: session protocol, merging, failure isolation."""

import pytest

from repro.core import CamType, ReferenceCam, binary_entry, unit_for_entries
from repro.core.batch import BatchSession
from repro.errors import (
    CapacityError,
    ConfigError,
    RoutingError,
    ShardFailedError,
    SimulationError,
)
from repro.service import FaultyBackend, ShardedCam, merge_results

WIDTH = 16


@pytest.fixture
def shard_config():
    """One shard: 32 entries (2 blocks of 16), 16-bit binary."""
    return unit_for_entries(32, block_size=16, data_width=WIDTH,
                            bus_width=128)


def reference_for(cam: ShardedCam) -> ReferenceCam:
    return ReferenceCam(cam.capacity)


def entries(values):
    return [binary_entry(v, WIDTH) for v in values]


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def test_capacity_and_engine_name_aggregate(shard_config):
    cam = ShardedCam(shard_config, shards=4, engine="batch")
    assert cam.capacity == 128
    assert cam.num_shards == 4
    assert cam.engine_name == "sharded[4xbatch]"
    assert all(isinstance(s, BatchSession) for s in cam.sessions)
    assert [s.name for s in cam.sessions] \
        == [f"sharded_cam.shard{i}" for i in range(4)]


def test_rejects_invalid_shard_count(shard_config):
    with pytest.raises(ConfigError):
        ShardedCam(shard_config, shards=0)


def test_pinned_policy_requires_binary_cam():
    ternary = unit_for_entries(32, block_size=16, data_width=WIDTH,
                               bus_width=128, cam_type=CamType.TERNARY)
    with pytest.raises(ConfigError):
        ShardedCam(ternary, shards=2, policy="hash")
    # broadcast policy is fine with ternary cells
    ShardedCam(ternary, shards=2, policy="round_robin")


def test_resources_aggregate_over_shards(shard_config):
    one = ShardedCam(shard_config, shards=1, engine="batch").resources()
    four = ShardedCam(shard_config, shards=4, engine="batch").resources()
    assert four.dsp == 4 * one.dsp


# ----------------------------------------------------------------------
# result equivalence with the golden reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["hash", "range", "round_robin"])
def test_matches_reference_across_shards(shard_config, policy):
    cam = ShardedCam(shard_config, shards=4, policy=policy, engine="batch")
    ref = reference_for(cam)
    words = [3, 77, 3, 9000, 512, 77, 3, 65535, 0]
    cam.update(words)
    ref.update(entries(words))
    for key in [3, 77, 9000, 512, 65535, 0, 1234]:
        ours, gold = cam.search_one(key), ref.search(key)
        assert (ours.hit, ours.address, ours.match_vector) \
            == (gold.hit, gold.address, gold.match_vector), key


def test_cross_shard_priority_tie_resolves_globally(shard_config):
    """Duplicate keys striped across shards: the merged address must be
    the *globally* first-inserted copy, like one big CAM."""
    cam = ShardedCam(shard_config, shards=4, policy="round_robin",
                     engine="batch")
    ref = reference_for(cam)
    words = [42, 1, 42, 2, 42, 3]  # copies of 42 land on shards 0, 2, 0
    cam.update(words)
    ref.update(entries(words))
    ours, gold = cam.search_one(42), ref.search(42)
    assert ours.address == gold.address == 0
    assert ours.match_vector == gold.match_vector
    # delete invalidates every copy on every shard
    assert cam.delete(42).match_vector == ref.delete(42).match_vector
    assert not cam.contains(42)


def test_interleaved_updates_keep_insertion_order(shard_config):
    cam = ShardedCam(shard_config, shards=2, policy="round_robin",
                     engine="batch")
    ref = reference_for(cam)
    for chunk in ([10, 11], [12], [13, 14, 15]):
        cam.update(chunk)
        ref.update(entries(chunk))
    for key in range(10, 16):
        assert cam.search_one(key).address == ref.search(key).address


def test_search_many_preserves_input_positions(shard_config):
    cam = ShardedCam(shard_config, shards=4, policy="hash", engine="batch")
    cam.update([5, 6, 7])
    results = cam.search([7, 99, 5])
    assert [r.key for r in results] == [7, 99, 5]
    assert [r.hit for r in results] == [True, False, True]


def test_reset_restarts_global_addressing(shard_config):
    cam = ShardedCam(shard_config, shards=2, engine="batch")
    cam.update([1, 2, 3])
    cam.reset()
    assert cam.occupancy == 0
    cam.update([9])
    assert cam.search_one(9).address == 0


def test_reset_is_result_identical_to_fresh(shard_config):
    """Regression: reset() must clear poisoned-shard state and the
    address-translation tables -- a reset CAM behaves exactly like a
    freshly constructed one, including after a shard fault."""
    def poisoning_factory(index, cfg):
        session = BatchSession(cfg, name=f"sharded_cam.shard{index}")
        if index == 1:
            return FaultyBackend(session, fail_after=4)
        return session

    used = ShardedCam(shard_config, shards=2, engine="batch",
                      session_factory=poisoning_factory)
    used.update([1, 2, 3, 4, 5, 6])
    used.delete(3)
    with pytest.raises(ShardFailedError):
        for value in range(10, 30):
            used.update([value])
    assert used.poisoned_shards == (1,)

    # swap in a healthy node, then reset: a fresh episode begins with
    # every shard revived and the address map empty
    used.sessions[1].heal()
    used.reset()
    assert used.poisoned_shards == ()
    assert used.occupancy == 0

    fresh = ShardedCam(shard_config, shards=2, engine="batch")
    workload = [40, 41, 42, 43, 44]
    used.update(workload)
    fresh.update(workload)
    used.delete(41)
    fresh.delete(41)
    for key in workload + [1, 3, 99]:
        ours, gold = used.search_one(key), fresh.search_one(key)
        assert (ours.hit, ours.address, ours.match_vector) \
            == (gold.hit, gold.address, gold.match_vector), key
    assert used.snapshot().content_hash() == fresh.snapshot().content_hash()


# ----------------------------------------------------------------------
# protocol guard rails
# ----------------------------------------------------------------------
def test_group_targeting_is_rejected(shard_config):
    cam = ShardedCam(shard_config, shards=2, engine="batch")
    with pytest.raises(RoutingError):
        cam.update([1], group=0)
    with pytest.raises(RoutingError):
        cam.search([1], groups=[0])
    with pytest.raises(RoutingError):
        cam.search_one(1, group=0)


def test_aggregate_capacity_enforced(shard_config):
    cam = ShardedCam(shard_config, shards=2, engine="batch")
    with pytest.raises(CapacityError):
        cam.update(list(range(cam.capacity + 1)))


def test_cycle_counter_is_max_over_shards(shard_config):
    cam = ShardedCam(shard_config, shards=4, engine="batch")
    cam.update(list(range(16)))
    cam.search(list(range(16)))
    assert cam.cycle == max(s.cycle for s in cam.sessions)
    stats = cam.last_search_stats
    assert stats is not None and stats.keys == 16


# ----------------------------------------------------------------------
# failure isolation
# ----------------------------------------------------------------------
def poisoned_cam(shard_config, bad_shard=1, fail_after=0, shards=4,
                 policy="hash"):
    from repro.core.batch import open_session

    def factory(index, cfg):
        session = open_session(cfg, engine="batch", name=f"t.shard{index}")
        if index == bad_shard:
            return FaultyBackend(session, fail_after)
        return session

    return ShardedCam(shard_config, shards=shards, policy=policy,
                      session_factory=factory)


def test_backend_fault_poisons_only_that_shard(shard_config):
    cam = poisoned_cam(shard_config, bad_shard=1)
    with pytest.raises(ShardFailedError) as excinfo:
        cam.update_shard(1, [123])
    assert excinfo.value.shard == 1
    assert isinstance(excinfo.value.__cause__, SimulationError)
    assert cam.poisoned_shards == (1,)
    assert not cam.shard_healthy(1) and cam.shard_healthy(0)
    # healthy shards still serve
    cam.update_shard(0, [55])
    assert cam.search_shard(0, [55])[0].hit


def test_poisoned_shard_fails_fast_without_backend_call(shard_config):
    cam = poisoned_cam(shard_config, bad_shard=2)
    with pytest.raises(ShardFailedError):
        cam.search_shard(2, [1])
    # fenced: the wrapped backend is not called again, the error repeats
    with pytest.raises(ShardFailedError):
        cam.delete_shard(2, 1)


def test_client_errors_do_not_poison(shard_config):
    cam = ShardedCam(shard_config, shards=2, engine="batch")
    with pytest.raises(CapacityError):
        cam.update_shard(0, list(range(cam.sessions[0].capacity + 1)))
    assert cam.poisoned_shards == ()


def test_partial_landing_keeps_address_map_consistent(shard_config):
    """A capacity overflow lands the beats that fit; the global address
    map must stay aligned with what actually landed."""
    cam = ShardedCam(shard_config, shards=2, engine="batch")
    per_shard = cam.sessions[0].capacity
    with pytest.raises(CapacityError):
        cam.update_shard(0, list(range(1000, 1000 + per_shard + 4)))
    landed = cam.sessions[0].occupancy
    assert len(cam._global_addrs[0]) == landed
    # the landed words still answer correctly through the global map
    result = cam.search_shard(0, [1000])[0]
    assert result.hit and result.address == 0


def test_merge_results_ors_global_vectors():
    from repro.core.types import SearchResult

    merged = merge_results(7, [
        SearchResult.from_vector(7, 0b0100),
        SearchResult.from_vector(7, 0b1000),
    ])
    assert merged.match_vector == 0b1100
    assert merged.address == 2
    empty = merge_results(7, [])
    assert not empty.hit and empty.match_vector == 0
