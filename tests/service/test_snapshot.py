"""Snapshot/restore protocol: versioned capture of CAM content.

The restore guarantee is *architectural*, not just content equality: a
restored CAM must reproduce bit-identical match vectors and priority
encoding AND land future inserts on the same addresses -- which means
deleted-slot holes (the fill pointer never rewinds) must survive the
round trip.  Property suites drive arbitrary insert/delete
interleavings through every engine; codec tests pin the JSON and
binary framings; a golden fixture under ``goldens/`` freezes the v1
format against accidental change.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    CamSession,
    ReferenceCam,
    WideCamSession,
    binary_entry,
    open_session,
    unit_for_entries,
)
from repro.errors import SnapshotError
from repro.service import CamSnapshot, ShardedCam, SnapshotEntry
from repro.service.snapshot import SNAPSHOT_MAGIC, SNAPSHOT_VERSION

WIDTH = 12
KEYSPACE = 64
GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

keys = st.integers(min_value=0, max_value=KEYSPACE - 1)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.lists(keys, min_size=1, max_size=5)),
        st.tuples(st.just("delete"), keys),
    ),
    min_size=1,
    max_size=24,
)

_DEEP = os.environ.get("HYPOTHESIS_PROFILE", "") == "deep"
EXAMPLES = 30 if _DEEP else 10

common_settings = settings(
    max_examples=EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def small_config(**kwargs):
    return unit_for_entries(32, block_size=16, data_width=WIDTH,
                            bus_width=64, **kwargs)


def apply(session, workload, budget):
    """Drive a workload, respecting the capacity bound."""
    live = 0
    for op, payload in workload:
        if op == "insert":
            if live + len(payload) > budget:
                continue
            session.update(payload)
            live += len(payload)
        else:
            session.delete(payload)


def assert_equivalent(restored, original, *, insert_probe=True):
    """Bit-identical search behaviour now AND after future inserts."""
    for key in range(KEYSPACE):
        ours, gold = restored.search_one(key), original.search_one(key)
        assert (ours.hit, ours.address, ours.match_vector, ours.match_count) \
            == (gold.hit, gold.address, gold.match_vector,
                gold.match_count), key
    if not insert_probe:
        return
    # The architectural part: both CAMs must place the next insert on
    # the same address (deleted-slot holes and fill pointers agree).
    if original.occupancy < original.capacity:
        probe = KEYSPACE - 1
        restored.update([probe])
        original.update([probe])
        ours, gold = restored.search_one(probe), original.search_one(probe)
        assert (ours.hit, ours.address, ours.match_vector) \
            == (gold.hit, gold.address, gold.match_vector)


# ----------------------------------------------------------------------
# round trips per engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["cycle", "batch", "audit"])
@given(workload=ops)
@common_settings
def test_unit_roundtrip_is_bit_identical(engine, workload):
    original = open_session(small_config(), engine)
    apply(original, workload, original.capacity - 1)
    snap = original.snapshot()
    restored = open_session(small_config(), engine)
    restored.restore(snap)
    assert restored.snapshot().content_hash() == snap.content_hash()
    assert_equivalent(restored, original)


@given(workload=ops)
@common_settings
def test_roundtrip_across_engines(workload):
    """A cycle-engine snapshot restored into the batch engine (and
    vice versa) serves identical results: the format is canonical."""
    cycle = open_session(small_config(), "cycle")
    batch = open_session(small_config(), "batch")
    apply(cycle, workload, cycle.capacity - 1)
    apply(batch, workload, batch.capacity - 1)
    assert cycle.snapshot().content_hash() == batch.snapshot().content_hash()
    crossed = open_session(small_config(), "batch")
    crossed.restore(cycle.snapshot())
    assert_equivalent(crossed, cycle)


def test_deleted_slot_reuse_order_survives_restore():
    """Holes are state: a restored CAM reuses (or rather, refuses to
    reuse) deleted slots exactly like the original."""
    original = open_session(small_config(), "batch")
    original.update([1, 2, 3, 4, 5])
    original.delete(2)
    original.delete(4)

    restored = open_session(small_config(), "batch")
    restored.restore(original.snapshot())

    # Fill pointers never rewind: the next insert goes to address 5 on
    # both, not into the address-1 or address-3 holes.
    for cam in (original, restored):
        cam.update([50])
        assert cam.search_one(50).address == 5
    assert_equivalent(restored, original)


@given(workload=ops)
@common_settings
def test_restore_cycle_cost_is_engine_independent(workload):
    sessions = {}
    for engine in ("cycle", "batch"):
        original = open_session(small_config(), engine)
        apply(original, workload, original.capacity - 1)
        restored = open_session(small_config(), engine)
        restored.restore(original.snapshot())
        sessions[engine] = restored.cycle
    assert sessions["cycle"] == sessions["batch"]


# ----------------------------------------------------------------------
# composite backends: sharded, replicated, wide, reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("replicas", [1, 2])
@given(workload=ops)
@common_settings
def test_sharded_roundtrip(replicas, workload):
    def build():
        return ShardedCam(small_config(), shards=2, engine="batch",
                          replicas=replicas)

    original = build()
    apply(original, workload, original.sessions[0].capacity - 1)
    snap = original.snapshot()
    assert snap.kind == "sharded"
    restored = build()
    restored.restore(snap)
    assert restored.snapshot().content_hash() == snap.content_hash()
    assert_equivalent(restored, original)


def test_wide_key_roundtrip():
    def build():
        return WideCamSession(capacity=32, key_width=96, block_size=16,
                              bus_width=128)

    original = build()
    probes = [(1 << 90) | 0xABC, (1 << 64) | 7, 0xDEAD]
    original.update(probes)
    snap = original.snapshot()
    assert snap.kind == "wide" and len(snap.children) == 2
    restored = build()
    restored.restore(snap)
    assert restored.snapshot().content_hash() == snap.content_hash()
    for probe in probes:
        ours, gold = restored.search_one(probe), original.search_one(probe)
        assert (ours.hit, ours.address) == (gold.hit, gold.address), probe
    # A key differing only in a high lane must still miss after restore.
    assert not restored.contains(probes[0] ^ (1 << 90))


def test_reference_cam_roundtrip():
    original = ReferenceCam(16)
    original.update([binary_entry(v, WIDTH) for v in (3, 5, 7)])
    original.delete(5)
    restored = ReferenceCam(16)
    restored.restore(original.snapshot(), data_width=WIDTH)
    for key in (3, 5, 7, 9):
        ours, gold = restored.search(key), original.search(key)
        assert (ours.hit, ours.address, ours.match_vector) \
            == (gold.hit, gold.address, gold.match_vector), key


def test_intersector_state_survives_restore():
    """An app-level consumer: the triangle-counting intersector's CAM
    can be checkpointed between intersections."""
    from repro.apps.tc.intersect import CamIntersector

    stored = list(range(0, 96, 3))
    stream = list(range(0, 96, 2))
    expected = len(set(stored) & set(stream))

    first = CamIntersector(total_entries=128, block_size=32,
                           engine="batch")
    common, _ = first.intersect(stored, stream)
    assert common == expected

    second = CamIntersector(total_entries=128, block_size=32,
                            engine="batch")
    second.session.restore(first.session.snapshot())
    # The restored session holds the stored list (replicated groups
    # included); streaming the keys again finds the same matches.
    again, _ = second.intersect(stored, stream)
    assert again == expected


# ----------------------------------------------------------------------
# codecs
# ----------------------------------------------------------------------
@given(workload=ops)
@common_settings
def test_json_and_binary_codecs_roundtrip(workload):
    session = open_session(small_config(), "batch")
    apply(session, workload, session.capacity)
    snap = session.snapshot()
    assert CamSnapshot.from_json(snap.to_json()).content_hash() \
        == snap.content_hash()
    assert CamSnapshot.from_binary(snap.to_binary()).content_hash() \
        == snap.content_hash()


def test_save_load_both_formats(tmp_path):
    session = open_session(small_config(), "batch")
    session.update([1, 2, 3])
    session.delete(2)
    snap = session.snapshot()
    for name in ("snap.json", "snap.bin"):
        path = tmp_path / name
        snap.save(str(path))
        loaded = CamSnapshot.load(str(path))
        assert loaded.content_hash() == snap.content_hash()
        assert loaded.version == SNAPSHOT_VERSION


def test_corrupt_binary_is_rejected(tmp_path):
    with pytest.raises(SnapshotError):
        CamSnapshot.from_binary(b"NOTASNAP" + b"\x00" * 16)
    snap = open_session(small_config(), "batch").snapshot()
    with pytest.raises(SnapshotError):
        CamSnapshot.from_binary(snap.to_binary() + b"junk")


def test_truncated_binary_raises_typed_error_at_every_cut():
    """Any strict prefix of a valid blob must raise SnapshotError --
    never a bare ``struct.error`` -- no matter where the cut lands
    (mid-magic, mid-version, mid-header, mid-entry, mid-child)."""
    session = open_session(small_config(), "batch")
    session.update([1, 2, 3, 4])
    session.delete(2)
    blob = session.snapshot().to_binary()
    for cut in range(len(blob)):
        with pytest.raises(SnapshotError):
            CamSnapshot.from_binary(blob[:cut])


def test_future_version_binary_rejected_with_typed_error():
    blob = open_session(small_config(), "batch").snapshot().to_binary()
    magic_len = len(SNAPSHOT_MAGIC)
    future = (blob[:magic_len]
              + (SNAPSHOT_VERSION + 1).to_bytes(2, "little")
              + blob[magic_len + 2:])
    with pytest.raises(SnapshotError, match="version"):
        CamSnapshot.from_binary(future)


def test_hostile_length_prefix_fails_fast():
    """A forged 4-billion-entry count must raise the typed error
    immediately (bounds check), not iterate until struct.error."""
    header = b'{"kind":"unit","meta":{}}'
    blob = (SNAPSHOT_MAGIC
            + SNAPSHOT_VERSION.to_bytes(2, "little")
            + len(header).to_bytes(4, "little") + header
            + (1).to_bytes(4, "little")            # one group ...
            + (0xFFFFFFFF).to_bytes(4, "little"))  # ... of 4G entries
    with pytest.raises(SnapshotError, match="truncated"):
        CamSnapshot.from_binary(blob)


slot_entries = st.one_of(
    st.just(SnapshotEntry.dead()),
    st.builds(
        SnapshotEntry.from_value_care,
        st.integers(min_value=0, max_value=(1 << 48) - 1),
        st.integers(min_value=0, max_value=(1 << 48) - 1),
    ),
)


@given(groups=st.lists(st.lists(slot_entries, max_size=6), max_size=4),
       shards=st.integers(min_value=0, max_value=3))
@common_settings
def test_binary_codec_structural_roundtrip_with_holes(groups, shards):
    """Both codecs must reproduce the exact node structure -- group
    shapes, child order, and every slot triple including dead holes --
    not just the content hash."""
    child = CamSnapshot(kind="unit", meta={"engine": "batch"},
                        groups=groups)
    if shards:
        snap = CamSnapshot(kind="sharded",
                           meta={"shards": shards, "policy": "hash"},
                           children=[child] * shards)
    else:
        snap = child
    for decoded in (CamSnapshot.from_binary(snap.to_binary()),
                    CamSnapshot.from_json(snap.to_json())):
        assert decoded == snap
        assert decoded.live_entries == snap.live_entries
        assert decoded.total_entries == snap.total_entries


def test_incompatible_restore_is_rejected():
    snap = open_session(small_config(), "batch").snapshot()
    wider = open_session(
        unit_for_entries(32, block_size=16, data_width=16, bus_width=64),
        "batch")
    with pytest.raises(SnapshotError):
        wider.restore(snap)
    sharded = ShardedCam(small_config(), shards=2, engine="batch")
    with pytest.raises(SnapshotError):
        sharded.restore(snap)  # unit snapshot into a sharded facade


def test_snapshot_entry_canonicalisation():
    entry = binary_entry(0x0F, WIDTH)
    slot = SnapshotEntry.from_entry(entry)
    assert slot.live and slot.value == 0x0F
    assert SnapshotEntry.from_entry(None) == SnapshotEntry.dead()
    round_tripped = slot.to_entry(WIDTH)
    assert round_tripped.value == entry.value


# ----------------------------------------------------------------------
# golden fixture: the v1 format is frozen
# ----------------------------------------------------------------------
def golden_backend():
    session = open_session(small_config(), "batch")
    session.update([0x001, 0x00F, 0x030, 0x03F, 0x015])
    session.delete(0x00F)
    session.update([0x020])
    return session


def test_golden_snapshot_matches_fixture():
    """Regenerating the golden workload must reproduce the committed
    fixture byte-for-byte; a mismatch means the snapshot format or the
    engine's placement semantics changed (bump SNAPSHOT_VERSION)."""
    path = os.path.join(GOLDEN_DIR, "unit_batch_v1.json")
    with open(path, "r", encoding="utf-8") as handle:
        frozen = handle.read()
    snap = golden_backend().snapshot()
    assert snap.to_json() == frozen
    loaded = CamSnapshot.from_json(frozen)
    assert loaded.content_hash() == snap.content_hash()
    restored = open_session(small_config(), "batch")
    restored.restore(loaded)
    assert restored.search_one(0x020).address == 5
    assert not restored.contains(0x00F)
