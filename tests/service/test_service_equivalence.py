"""Property-based equivalence: sharded service vs the golden reference.

Randomized mixed insert/lookup/delete workloads run against a
:class:`ShardedCam` (every policy) and, through the async
:class:`CamService` front door under deliberately tight admission
settings (queue_depth smaller than the client count, so the
backpressure path is exercised on every example), while a single
:class:`ReferenceCam` plays the same tape. Hit/address/match-vector
answers must be bit-identical -- including cross-shard priority ties
from duplicate keys striped over shards by the round-robin policy.
"""

import asyncio
import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ReferenceCam, binary_entry, unit_for_entries
from repro.service import CamService, ShardedCam

WIDTH = 12
#: Tiny key space so duplicates (priority ties) are common.
keys = st.integers(min_value=0, max_value=63)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"),
                  st.lists(keys, min_size=1, max_size=6)),
        st.tuples(st.just("lookup"), keys),
        st.tuples(st.just("delete"), keys),
    ),
    min_size=1,
    max_size=30,
)

_DEEP = os.environ.get("HYPOTHESIS_PROFILE", "") == "deep"
EXAMPLES = 40 if _DEEP else 12

common_settings = settings(
    max_examples=EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def shard_config():
    """One shard: 32 entries (2 blocks of 16), 12-bit keys."""
    return unit_for_entries(32, block_size=16, data_width=WIDTH,
                            bus_width=64)


def insert_budget(cam: ShardedCam) -> int:
    """Bound live words so no workload can overflow any single shard
    (hash/range skew could otherwise fill one shard while the
    aggregate still has room)."""
    if cam.policy.broadcast_lookups:
        return cam.capacity  # striping is perfectly balanced
    return cam.sessions[0].capacity


def assert_same(ours, gold, context):
    assert (ours.hit, ours.address, ours.match_vector) \
        == (gold.hit, gold.address, gold.match_vector), context


@pytest.mark.parametrize("policy", ["hash", "range", "round_robin"])
@given(workload=ops)
@common_settings
def test_sharded_cam_matches_reference(policy, workload):
    cam = ShardedCam(shard_config(), shards=4, policy=policy,
                     engine="batch")
    reference = ReferenceCam(cam.capacity)
    budget = insert_budget(cam)
    for op, payload in workload:
        if op == "insert":
            if reference.occupancy + len(payload) > budget:
                continue
            cam.update(payload)
            reference.update([binary_entry(v, WIDTH) for v in payload])
        elif op == "lookup":
            assert_same(cam.search_one(payload),
                        reference.search(payload), (op, payload))
        else:
            assert_same(cam.delete(payload),
                        reference.delete(payload), (op, payload))
    # closing sweep: every key answers identically
    for key in range(64):
        assert_same(cam.search_one(key), reference.search(key), key)


@pytest.mark.parametrize("policy", ["hash", "round_robin"])
@given(workload=ops)
@common_settings
def test_async_service_matches_reference(policy, workload):
    """The full async path (admission -> router -> micro-batch ->
    merge) under backpressure-inducing settings."""

    async def scenario():
        cam = ShardedCam(shard_config(), shards=4, policy=policy,
                         engine="batch")
        reference = ReferenceCam(cam.capacity)
        budget = insert_budget(cam)
        async with CamService(cam, max_batch=8, max_delay_s=0.001,
                              queue_depth=2, overflow="block",
                              request_timeout_s=30.0) as service:
            for op, payload in workload:
                if op == "insert":
                    if reference.occupancy + len(payload) > budget:
                        continue
                    response = await service.insert(payload)
                    assert response.ok
                    assert response.stats.words == len(payload)
                    reference.update(
                        [binary_entry(v, WIDTH) for v in payload]
                    )
                elif op == "lookup":
                    response = await service.lookup(payload)
                    assert response.ok
                    assert_same(response.result, reference.search(payload),
                                (op, payload))
                else:
                    response = await service.delete(payload)
                    assert response.ok
                    assert_same(response.result, reference.delete(payload),
                                (op, payload))
            # concurrent read-only burst: real coalescing, same answers
            probes = list(range(0, 64, 3))
            responses = await asyncio.gather(
                *[service.lookup(key) for key in probes]
            )
            for key, response in zip(probes, responses):
                assert response.ok
                assert_same(response.result, reference.search(key), key)

    asyncio.run(scenario())
