"""ReplicaSet: fan-out writes, failover reads, divergence fencing,
and live recovery (snapshot + bounded catch-up log).

The headline guarantees, proven property-style against the golden
:class:`ReferenceCam`:

- killing the preferred replica mid-workload causes **zero**
  miss-with-error -- every read is still bit-identical to the
  reference, served by the surviving peer;
- a replica rebuilt mid-workload (donor snapshot + catch-up log
  replay) serves bit-identical results once reinstated, even for
  writes that landed while it was down.
"""

from __future__ import annotations

import asyncio
import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ReferenceCam, binary_entry, open_session, unit_for_entries
from repro.errors import (
    CapacityError,
    ReplicaExhaustedError,
    ServiceError,
    SimulationError,
)
from repro.service import (
    CamService,
    FaultyBackend,
    ReplicaSet,
    ShardedCam,
    WorkloadSpec,
    demo_cam,
    run_demo_workload,
)

WIDTH = 12
KEYSPACE = 64

keys = st.integers(min_value=0, max_value=KEYSPACE - 1)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.lists(keys, min_size=1, max_size=4)),
        st.tuples(st.just("lookup"), keys),
        st.tuples(st.just("delete"), keys),
    ),
    min_size=2,
    max_size=24,
)

_DEEP = os.environ.get("HYPOTHESIS_PROFILE", "") == "deep"
EXAMPLES = 30 if _DEEP else 10

common_settings = settings(
    max_examples=EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def small_config():
    return unit_for_entries(32, block_size=16, data_width=WIDTH,
                            bus_width=64)


def session():
    return open_session(small_config(), "batch")


def replica_set(replicas=2, *, wrap=None, **kwargs):
    members = []
    for index in range(replicas):
        member = session()
        if wrap and index in wrap:
            member = wrap[index](member)
        members.append(member)
    return ReplicaSet(members, **kwargs)


def assert_same(ours, gold, context):
    assert (ours.hit, ours.address, ours.match_vector) \
        == (gold.hit, gold.address, gold.match_vector), context


# ----------------------------------------------------------------------
# fan-out writes keep replicas identical
# ----------------------------------------------------------------------
def test_writes_fan_out_to_every_replica():
    rset = replica_set(3)
    rset.update([1, 2, 3])
    rset.delete(2)
    hashes = {r.snapshot().content_hash() for r in rset.replicas}
    assert len(hashes) == 1
    assert rset.occupancy == 3  # fill pointer, holes included
    assert rset.engine_name == "replicated[3xbatch]"
    assert rset.failed_replicas == ()


def test_client_errors_do_not_fence_replicas():
    rset = replica_set(2)
    with pytest.raises(CapacityError):
        rset.update(list(range(KEYSPACE)))  # overflows every replica alike
    assert rset.failed_replicas == ()
    # deterministic partial landings keep the replicas identical
    assert len({r.snapshot().content_hash() for r in rset.replicas}) == 1


def test_write_exhaustion_when_no_replica_is_healthy():
    rset = replica_set(2, wrap={
        0: lambda s: FaultyBackend(s, fail_after=0),
        1: lambda s: FaultyBackend(s, fail_after=0),
    })
    with pytest.raises(ReplicaExhaustedError):
        rset.update([1])


# ----------------------------------------------------------------------
# failover reads: zero miss-with-error
# ----------------------------------------------------------------------
@given(workload=ops, fail_after=st.integers(min_value=0, max_value=12))
@common_settings
def test_killed_preferred_replica_causes_zero_miss_with_error(
        workload, fail_after):
    """Every read is bit-identical to the reference even while the
    preferred replica dies mid-stream: the peer serves seamlessly."""
    rset = replica_set(2, wrap={
        0: lambda s: FaultyBackend(s, fail_after=fail_after)})
    reference = ReferenceCam(rset.capacity)
    assert rset.preferred == 0
    live = 0
    for op, payload in workload:
        if op == "insert":
            if live + len(payload) > rset.capacity:
                continue
            rset.update(payload)
            reference.update([binary_entry(v, WIDTH) for v in payload])
            live += len(payload)
        elif op == "delete":
            rset.delete(payload)
            reference.delete(payload)
        else:
            assert_same(rset.search_one(payload), reference.search(payload),
                        (op, payload))
    for key in range(KEYSPACE):
        assert_same(rset.search_one(key), reference.search(key), key)
    if rset.failed_replicas:
        assert rset.stats.failures >= 1


def test_failover_increments_metrics_and_keeps_serving():
    rset = replica_set(2, wrap={
        0: lambda s: FaultyBackend(s, fail_after=1)})
    rset.update([7])          # op 1: lands on both
    result = rset.search_one(7)   # faults replica 0, served by replica 1
    assert result.hit
    assert rset.failed_replicas == (0,)
    assert rset.stats.failovers == 1
    assert not rset.replica_healthy(0) and rset.replica_healthy(1)


# ----------------------------------------------------------------------
# live recovery: donor snapshot + catch-up log
# ----------------------------------------------------------------------
@given(workload=ops, fail_after=st.integers(min_value=1, max_value=8))
@common_settings
def test_replica_rebuilt_mid_workload_is_bit_identical(workload, fail_after):
    """The tentpole guarantee: a replica that died, missed writes, and
    was rebuilt from a peer's snapshot plus the catch-up log serves
    bit-identical results to the golden reference."""
    faulty = {}

    def wrap(s):
        backend = FaultyBackend(s, fail_after=fail_after)
        faulty[0] = backend
        return backend

    rset = replica_set(2, wrap={0: wrap})
    reference = ReferenceCam(rset.capacity)
    live = 0
    mid = max(1, len(workload) // 2)
    for step, (op, payload) in enumerate(workload):
        if step == mid and rset.failed_replicas:
            # begin recovery mid-stream; later writes go to the log
            faulty[0].heal()  # fault cleared (node replaced)
            rset.begin_rebuild(0)
        if op == "insert":
            if live + len(payload) > rset.capacity:
                continue
            rset.update(payload)
            reference.update([binary_entry(v, WIDTH) for v in payload])
            live += len(payload)
        elif op == "delete":
            rset.delete(payload)
            reference.delete(payload)
        else:
            assert_same(rset.search_one(payload), reference.search(payload),
                        (op, payload))
    if rset.failed_replicas:
        faulty[0].heal()
        rset.repair()
    assert rset.failed_replicas == ()
    # force every future read through the recovered replica
    rset.set_preferred(0)
    for key in range(KEYSPACE):
        assert_same(rset.search_one(key), reference.search(key), key)
    # and it is content-identical to its peer
    assert len({r.snapshot().content_hash() for r in rset.replicas}) == 1


def test_catchup_log_overflow_fails_the_rebuild():
    rset = replica_set(2, catchup_limit=2, wrap={
        0: lambda s: FaultyBackend(s, fail_after=1)})
    rset.update([1])
    rset.search_one(1)  # fence replica 0
    rset.replicas[0].heal()
    rset.begin_rebuild(0)
    for value in (2, 3, 4):  # three logged writes > catchup_limit
        rset.update([value])
    with pytest.raises(ServiceError):
        rset.finish_rebuild(0)
    assert rset.stats.repairs_failed == 1
    assert 0 in rset.failed_replicas
    # a fresh rebuild (new snapshot, short log) succeeds
    assert rset.rebuild(0) == 0
    assert rset.failed_replicas == ()
    rset.set_preferred(0)
    assert rset.search_one(4).hit


def test_divergent_replica_is_fenced_by_hash_beat():
    rset = replica_set(2, beat_every=4, wrap={
        1: lambda s: FaultyBackend(s, fail_after=2, mode="diverge")})
    for value in range(6):  # beat fires after 4 writes
        rset.update([value])
    assert rset.failed_replicas == (1,)
    assert rset.stats.divergences == 1
    # the surviving majority (the preferred replica) kept every write
    assert all(rset.search_one(v).hit for v in range(6))


def test_crashed_replica_recovers_after_its_window():
    rset = replica_set(2, wrap={
        0: lambda s: FaultyBackend(s, fail_after=2, mode="crash",
                                   fail_ops=3)})
    for value in range(8):
        rset.update([value])
    assert 0 in rset.failed_replicas
    # the crash window has passed: rebuild brings it back for good
    rset.repair()
    assert rset.failed_replicas == ()
    rset.set_preferred(0)
    assert all(rset.search_one(v).hit for v in range(8))


# ----------------------------------------------------------------------
# as a shard backend behind the service
# ----------------------------------------------------------------------
def test_sharded_cam_with_replicas_reports_degraded_shards():
    cam = demo_cam(entries_per_shard=32, shards=2, replicas=2,
                   poison_shard=1, poison_after=3, fault_mode="wedge")
    assert cam.num_replicas == 2
    assert cam.engine_name == "sharded[2x2xbatch]"
    for value in range(20):
        cam.update([value])
    assert cam.poisoned_shards == ()  # peers absorbed the faults
    assert 1 in cam.degraded_shards


def test_service_repair_shard_reinstates_replicas():
    cam = demo_cam(entries_per_shard=32, shards=2, replicas=2,
                   poison_shard=0, poison_after=3, fault_mode="crash")

    async def run():
        async with CamService(cam, max_delay_s=0.001) as service:
            for value in range(40):
                await service.insert([value])
            degraded = cam.degraded_shards
            assert degraded, "fault never triggered"
            repaired = await service.repair_shard(degraded[0])
            return repaired, service.stats

    repaired, stats = asyncio.run(run())
    assert repaired
    assert stats.repairs_completed >= 1
    assert cam.degraded_shards == ()


def test_auto_repair_workload_has_zero_failures():
    cam = demo_cam(entries_per_shard=64, shards=4, replicas=2,
                   poison_shard=1)  # default fault mode: crash
    report = run_demo_workload(
        cam, WorkloadSpec(requests=300, clients=4, seed=7),
        max_delay_s=0.001, auto_repair=True)
    assert report.ok == 300
    assert report.shard_failures == 0
    assert report.replicas == 2
    assert report.repairs_completed >= 1


def test_replica_set_rejects_mismatched_members():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        ReplicaSet([])
    mismatched = [
        session(),
        open_session(unit_for_entries(64, block_size=16, data_width=WIDTH,
                                      bus_width=64), "batch"),
    ]
    with pytest.raises(ConfigError):
        ReplicaSet(mismatched)
